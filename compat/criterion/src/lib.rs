#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace patches `criterion` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It is a real wall-clock benchmark harness
//! implementing the API subset the workspace uses — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`,
//! [`criterion_group!`], [`criterion_main!`] and [`black_box`] — without
//! criterion's statistical machinery: each benchmark is warmed up, then
//! timed over enough iterations to fill the measurement window, and the
//! mean time per iteration is printed.
//!
//! CLI behaviour (matching what `cargo bench`/`cargo test` pass to
//! `harness = false` targets): `--test` runs every benchmark exactly once
//! as a smoke test; `--list` lists names; the first free argument is a
//! substring filter. `MTASC_BENCH_WARMUP_MS` / `MTASC_BENCH_MEASURE_MS`
//! override the default windows (100 / 400).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default))
}

/// How the harness was invoked (parsed from `std::env::args`).
#[derive(Debug, Clone)]
struct Mode {
    /// Run each benchmark once, no timing (`--test`).
    smoke: bool,
    /// Print names and exit (`--list`).
    list: bool,
    /// Substring filter on benchmark names.
    filter: Option<String>,
}

impl Mode {
    fn from_args() -> Mode {
        let mut smoke = false;
        let mut list = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--list" => list = true,
                "--bench" | "--nocapture" | "--quiet" | "--exact" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Mode { smoke, list, filter }
    }

    fn selects(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Identifier for one parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (the group name provides the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher<'m> {
    mode: &'m Mode,
    /// Mean time per iteration, filled in by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time the routine: warm up, then run enough iterations to fill the
    /// measurement window, recording the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode.smoke {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        let warmup = env_ms("MTASC_BENCH_WARMUP_MS", 100);
        let measure = env_ms("MTASC_BENCH_MEASURE_MS", 400);

        // Warm-up: run until the window elapses, estimating per-iter cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let iters = (measure.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_one(mode: &Mode, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if !mode.selects(name) {
        return;
    }
    if mode.list {
        println!("{name}: bench");
        return;
    }
    let mut b = Bencher { mode, measured: None };
    f(&mut b);
    match b.measured {
        _ if mode.smoke => println!("{name}: ok (smoke)"),
        Some((total, iters)) => {
            let mean = total.as_secs_f64() / iters as f64;
            println!("{name:<40} time: {:>12} ({iters} iters)", fmt_time(mean));
        }
        None => println!("{name}: no measurement (Bencher::iter never called)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { mode: Mode::from_args() }
    }
}

impl Criterion {
    /// Register and run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&self.mode, name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { mode: &self.mode, name: name.into() }
    }
}

/// A named group of benchmarks; names print as `group/bench`.
pub struct BenchmarkGroup<'c> {
    mode: &'c Mode,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(self.mode, &format!("{}/{}", self.name, id.full), &mut f);
        self
    }

    /// Benchmark within the group, with an input value passed through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(self.mode, &format!("{}/{}", self.name, id.full), &mut |b| f(b, input));
        self
    }

    /// End the group (no-op here; criterion finalizes reports).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { full: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { full: name }
    }
}

/// Bundle benchmark functions into a group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("reduce", 1024).full, "reduce/1024");
        assert_eq!(BenchmarkId::from_parameter(64).full, "64");
    }

    #[test]
    fn bencher_measures() {
        std::env::set_var("MTASC_BENCH_WARMUP_MS", "1");
        std::env::set_var("MTASC_BENCH_MEASURE_MS", "2");
        let mode = Mode { smoke: false, list: false, filter: None };
        let mut b = Bencher { mode: &mode, measured: None };
        let mut n = 0u64;
        b.iter(|| n = n.wrapping_add(1));
        let (total, iters) = b.measured.expect("measured");
        assert!(iters >= 1);
        assert!(total > Duration::ZERO);
    }

    #[test]
    fn filter_selects_substrings() {
        let mode = Mode { smoke: false, list: false, filter: Some("kernel".into()) };
        assert!(mode.selects("kernel_search_256"));
        assert!(!mode.selects("network_mrr"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
