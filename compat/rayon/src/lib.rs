#![warn(missing_docs)]

//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace patches `rayon` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). The `par_iter`/`par_iter_mut` entry points return
//! **serial** std iterators — semantically identical (rayon guarantees the
//! same results as the sequential computation for the combinators the
//! workspace uses: `enumerate`, `for_each`, `filter_map`, `min_by_key`),
//! just without the parallel speedup. Restoring real data parallelism when
//! a registry is available is tracked in the ROADMAP.
//!
//! The `Sync + Send` closure bounds at call sites stay meaningful: they
//! keep the code ready for the real rayon.

/// The glob import (`use rayon::prelude::*`) real rayon users reach for.
pub mod prelude {
    /// `par_iter()` on slices (serial stand-in).
    pub trait IntoParallelRefIterator<T> {
        /// Shared-reference iteration; serial `std::slice::Iter` here.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `par_iter_mut()` on slices (serial stand-in).
    pub trait IntoParallelRefMutIterator<T> {
        /// Mutable iteration; serial `std::slice::IterMut` here.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `par_chunks_mut()` on slices (serial stand-in). Real rayon yields
    /// the same chunks in the same order (its `ChunksMut` is an
    /// `IndexedParallelIterator`), so `enumerate` keeps chunk index `i`
    /// aligned with element range `i*size..(i+1)*size` on both
    /// implementations.
    pub trait ParallelSliceMut<T> {
        /// Mutable fixed-size chunks; serial `std::slice::ChunksMut` here.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `into_par_iter()` on owned collections/ranges (serial stand-in).
    /// Real rayon implements this for `Range<usize>`; the block-fusion
    /// engine drives its tile loop through it.
    pub trait IntoParallelIterator {
        /// The serial iterator standing in for the parallel one.
        type Iter;
        /// By-value iteration; the std iterator here.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> std::ops::Range<usize> {
            self
        }
    }
}

/// Number of worker threads in the global pool. The stand-in executes
/// everything on the calling thread, so the pool size is 1 — callers use
/// this (as they would with real rayon) to skip parallel dispatch when it
/// cannot win.
pub fn current_num_threads() -> usize {
    1
}

/// Serial stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_matches_serial() {
        let mut v = vec![1u32, 2, 3, 4];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as u32);
        assert_eq!(v, [1, 3, 5, 7]);
    }

    #[test]
    fn par_iter_combinators() {
        let v = [10u32, 25, 7, 99];
        let min_odd = v.par_iter().filter_map(|x| (x % 2 == 1).then_some(*x)).min();
        assert_eq!(min_odd, Some(7));
    }

    #[test]
    fn par_chunks_mut_covers_slice_in_order() {
        let mut v: Vec<u32> = (0..10).collect();
        v.par_chunks_mut(4).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x += 100 * ci as u32;
            }
        });
        assert_eq!(v, [0, 1, 2, 3, 104, 105, 106, 107, 208, 209]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
