#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). It implements exactly the API subset the workspace
//! uses — [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — with the same
//! shapes as rand 0.9, backed by a xoshiro256++ generator.
//!
//! Determinism note: streams differ from the real `rand` crate's `StdRng`
//! (ChaCha12). All in-tree users seed explicitly and assert properties
//! rather than exact streams, so this is observable only as different
//! (still deterministic) test inputs.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded, as rand does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random-value methods, provided for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type (full range; `bool`
    /// is a fair coin).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given (half-open or inclusive) range.
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform f64 in [0, 1)
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// As in the real rand crate: `&mut R` is itself an RngCore, which is what
// lets `rng.random()` (whose receiver must be `Sized`) be called through
// `&mut R` bindings where `R: Rng + ?Sized`.
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly over their whole domain by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to i128 (for span arithmetic that cannot overflow).
    fn to_i128(self) -> i128;
    /// Narrow from i128 (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_span<R: RngCore + ?Sized>(rng: &mut R, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    // Modulo draw over a 128-bit value: bias is < 2^-64 for every span the
    // workspace uses — irrelevant for test-input generation.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    lo + (wide % span) as i128
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(uniform_span(rng, lo, (hi - lo) as u128))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(uniform_span(rng, lo, (hi - lo) as u128 + 1))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not the real
    /// rand crate's ChaCha12 — streams differ, determinism is preserved).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v: i64 = rng.random_range(-500..500);
            assert!((-500..500).contains(&v));
            let u: usize = rng.random_range(0..16);
            assert!(u < 16);
            let w: u8 = rng.random_range(b' '..=b'~');
            assert!((b' '..=b'~').contains(&w));
            let x: i64 = rng.random_range(-30..=30);
            assert!((-30..=30).contains(&x));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 drawn: {seen:?}");
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "fair-ish coin: {heads}");
    }

    #[test]
    fn primitive_draws() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: (u8, u16, u32, u64, i8, i16, i32, i64, bool, f64) = (
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
            rng.random(),
        );
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
