#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace patches `proptest` to this crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It is a real — if small — property-testing
//! engine implementing the subset the workspace uses:
//!
//! * the [`proptest!`] macro (`#[test] fn name(pat in strategy, ...)`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * strategies: integer ranges (`0u32..=u32::MAX`), [`any`],
//!   [`collection::vec`], tuples of strategies, string "regex" literals
//!   (interpreted as "arbitrary text up to the pattern's repetition
//!   bound"), and [`Just`].
//!
//! Differences from real proptest, stated: cases are generated from a
//! deterministic per-test seed (no persisted failure files), there is no
//! shrinking (the failing case's inputs are printed in full instead), and
//! string strategies do not implement real regex semantics — the one
//! in-tree pattern (`\PC{0,200}`) wants "arbitrary printable-ish text",
//! which is what they generate.

use std::fmt::Write as _;

/// Number of cases per property when `PROPTEST_CASES` is not set.
pub const DEFAULT_CASES: u32 = 64;

// ------------------------------------------------------------------ rng

/// The generator driving value generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic generator for the given test-name/case pair.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next() | 1];
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        (wide % n as u128) as u64
    }
}

// ------------------------------------------------------------- strategy

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo + (wide % (hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo + (wide % ((hi - lo) as u128 + 1)) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the whole domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Tuple strategies, as in proptest.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// String "regex" strategies. Real regex semantics are not implemented;
/// the repetition bound `{m,n}` (if present) caps the length, and the
/// generated text mixes printable ASCII with occasional newlines, tabs
/// and non-ASCII code points — the shape fuzz targets want.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let max_len = parse_repeat_bound(self).unwrap_or(64);
        let len = rng.below(max_len as u64 + 1) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2 => char::from_u32(0xA1 + rng.below(0x200) as u32).unwrap_or('¡'),
                _ => (b' ' + rng.below(95) as u8) as char,
            };
            s.push(c);
        }
        s
    }
}

/// Extract `n` from a trailing `{m,n}` repetition in a pattern.
fn parse_repeat_bound(pattern: &str) -> Option<usize> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let upper = body.split(',').next_back()?;
    upper.trim().parse().ok()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`](fn@vec): an exact `usize`, `a..b`, or
    /// `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------- running

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run: `PROPTEST_CASES` or [`DEFAULT_CASES`].
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// Drive one property: generate up to [`cases`] inputs, run the body on
/// each, panic with the inputs on the first failure. Used by the
/// [`proptest!`] expansion — not part of the real proptest API surface.
pub fn run_property<F>(test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, TestCaseResult),
{
    let target = cases();
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut case_index = 0u64;
    while accepted < target {
        let mut rng = TestRng::for_case(test_name, case_index);
        case_index += 1;
        let (inputs, result) = case(&mut rng);
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > 16 * target as u64 {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}) for {target} cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest property `{test_name}` falsified (case #{}):\n  \
                     inputs: {inputs}\n  {msg}",
                    case_index - 1
                );
            }
        }
    }
}

/// Render `name = value` pairs for the failure report.
pub fn describe_input(buf: &mut String, name: &str, value: &dyn std::fmt::Debug) {
    if !buf.is_empty() {
        buf.push_str(", ");
    }
    let _ = write!(buf, "{name} = {value:?}");
}

/// The property-test macro. Supports the `pat in strategy` argument form
/// with any number of arguments and doc comments/attributes on each test.
/// As in real proptest, the user-written `#[test]` is captured along with
/// the other attributes and re-emitted on the generated zero-argument fn.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __rng);
                        $crate::describe_input(&mut __inputs, stringify!($arg), &$arg);
                    )+
                    let __result = (|| -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (__inputs, __result)
                });
            }
        )+
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)*), l
        );
    }};
}

/// Reject the current case (skip without failing) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// The glob import real proptest users reach for.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds and the harness accepts
        /// multiple arguments.
        #[test]
        fn ranges_in_bounds(a in -128i64..128, b in 0u32..=7, c in any::<bool>()) {
            prop_assert!((-128..128).contains(&a));
            prop_assert!(b <= 7);
            let _ = c;
        }

        /// Vec strategies respect the size range; tuple elements are in
        /// bounds.
        #[test]
        fn vec_and_tuples(v in collection::vec((0u8..5, -40i64..40), 1..12)) {
            prop_assert!((1..12).contains(&v.len()));
            for (x, y) in &v {
                prop_assert!(*x < 5);
                prop_assert!((-40..40).contains(y), "y = {}", y);
            }
        }

        /// String strategies honour the repetition cap.
        #[test]
        fn string_cap(s in "\\PC{0,200}") {
            prop_assert!(s.chars().count() <= 200);
        }

        /// prop_assume rejections are retried, not failed.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn falsified_properties_panic_with_inputs() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_property("always_fails", |rng| {
                let v = crate::Strategy::generate(&(0u32..10), rng);
                let mut inputs = String::new();
                crate::describe_input(&mut inputs, "v", &v);
                (inputs, Err(crate::TestCaseError::fail("nope")))
            });
        });
        let err = caught.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("v = "), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
