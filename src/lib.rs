#![warn(missing_docs)]

//! # asc — the Multithreaded Associative SIMD Processor, in Rust
//!
//! A full reproduction of *"A Prototype Multithreaded Associative SIMD
//! Processor"* (Schaffer & Walker, IPDPS/MPP 2007): a cycle-accurate
//! simulator of an associative SIMD processor whose broadcast/reduction
//! networks are fully pipelined and whose control unit is fine-grain
//! multithreaded, plus the assembler, kernel library, FPGA resource model
//! and experiment harness around it.
//!
//! ```
//! use asc::core::{Machine, MachineConfig};
//!
//! // Find the maximum of the PE indices and which PE holds it.
//! let program = asc::asm::assemble(
//!     "        pidx   p1
//!              rmax   s1, p1       ; global maximum
//!              pceqs  pf1, p1, s1  ; associative search
//!              pfirst pf2, pf1     ; multiple response resolution
//!              rget   s2, p1, pf2  ; read out the responder
//!              halt
//!     ",
//! ).unwrap();
//!
//! let mut m = Machine::with_program(MachineConfig::prototype(), &program).unwrap();
//! let stats = m.run(10_000).unwrap();
//! assert_eq!(m.sreg(0, 1).to_u32(), 15);
//! assert_eq!(m.sreg(0, 2).to_u32(), 15);
//! assert!(stats.ipc() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! * [`isa`] — instruction set: encodings, operand introspection.
//! * [`asm`] — two-pass assembler and disassembler.
//! * [`network`] — pipelined broadcast tree and the five reduction units.
//! * [`pe`] — the PE array: local memories, per-thread register files,
//!   ALU, multiplier/divider.
//! * [`core`] — the machine: control unit, split pipeline, hazards,
//!   fine-grain multithreading, baselines, figure renderers.
//! * [`fpga`] — calibrated Cyclone II resource/clock model (Table 1).
//! * [`kernels`] — associative algorithms: search, selection, responder
//!   iteration, MST, string matching, image statistics, sorting, convex
//!   hull, prefix sums.
//! * [`lang`] — ASCL, a small associative language (`where`/`elsewhere`
//!   masking, reductions) compiling to MTASC assembly.
//! * [`verify`] — static analyzer and lint pipeline (`mtasc lint`):
//!   uninitialized reads, memory bounds, thread lifecycle, dead stores,
//!   stall and fusion-cut diagnostics.
//! * [`obs_store`] — persistent run registry behind `mtasc runs`:
//!   per-run manifests, artifacts, heartbeats, Prometheus export.
//! * [`serve`] — `mtasc serve`, the zero-dependency HTTP observability
//!   daemon over the registry: status API, SSE progress streams,
//!   Prometheus scrape endpoint, embedded dashboard.
//!
//! See `DESIGN.md` for the architecture inventory and `EXPERIMENTS.md`
//! for the paper-versus-measured record of every table and figure.

pub use asc_asm as asm;
pub use asc_core as core;
pub use asc_fpga as fpga;
pub use asc_isa as isa;
pub use asc_kernels as kernels;
pub use asc_lang as lang;
pub use asc_network as network;
pub use asc_obs_store as obs_store;
pub use asc_pe as pe;
pub use asc_serve as serve;
pub use asc_verify as verify;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
