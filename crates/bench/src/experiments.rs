//! Experiment implementations E1–E12. Each returns structured data and a
//! rendered table so `tablegen`, the tests, and `EXPERIMENTS.md` share one
//! source of truth.

use asc_asm::assemble;
use asc_core::baseline::run_nonpipelined;
use asc_core::pipeline::{control_unit_organization, hazard_diagram, pipeline_organization};
use asc_core::{Machine, MachineConfig, StallReason, Stats};
use asc_fpga::{max_pes_on, ClockModel, Device, FpgaConfig, ResourceReport};
use asc_kernels::micro;

const MAX: u64 = 200_000_000;

/// Machine used by the micro-experiments at PE count `p`: tiny local
/// memory (microkernels don't touch it) so multi-thousand-PE arrays stay
/// cheap to allocate.
fn micro_cfg(p: usize) -> MachineConfig {
    let mut cfg = MachineConfig::new(p);
    cfg.lmem_words = 8;
    cfg
}

fn run(cfg: MachineConfig, src: &str) -> Stats {
    let program = assemble(src).unwrap_or_else(|e| panic!("{e:?}"));
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.run(MAX).unwrap()
}

// ===================================================================== E1

/// E1 — Table 1: resource usage of the prototype on the EP2C35, from the
/// calibrated analytical model, plus the clock estimate.
pub fn table1() -> String {
    let cfg = FpgaConfig::prototype();
    let report = ResourceReport::model(&cfg);
    let clock = ClockModel::default().pipelined_mhz(&cfg);
    format!(
        "{}\nEstimated clock: {:.1} MHz (paper: ~75 MHz)\n",
        report.render_table(&Device::ep2c35()),
        clock
    )
}

// ===================================================================== E2

/// E2 — Figure 1: the split pipeline organization of the prototype
/// (two broadcast stages, four reduction stages at p=16, k=4).
pub fn fig1() -> String {
    pipeline_organization(&MachineConfig::prototype().timing())
}

// ===================================================================== E3

/// E3 — Figure 2: the three hazard cases, as stage-by-cycle diagrams of
/// real traces from the timing simulator.
pub fn fig2() -> String {
    let cases = [
        ("broadcast hazard (forwarded, no stall)", "sub s1, s2, s3\npadds p1, p2, s1\nhalt\n"),
        ("reduction hazard (stalls b+r)", "rmax s1, p2\nsub s3, s1, s1\nhalt\n"),
        ("broadcast-reduction hazard (stalls b+r)", "rmax s1, p2\npadds p1, p2, s1\nhalt\n"),
    ];
    let mut out = String::new();
    for (title, src) in cases {
        let cfg = MachineConfig::prototype();
        let program = assemble(src).unwrap();
        let mut m = Machine::with_program(cfg, &program).unwrap();
        m.enable_trace();
        m.run(MAX).unwrap();
        let records: Vec<_> = m.trace().unwrap()[..2].to_vec();
        out.push_str(&format!("--- {title} ---\n"));
        out.push_str(&hazard_diagram(&records, &m.timing()));
        out.push('\n');
    }
    out
}

// ===================================================================== E4

/// E4 — Figure 3: control unit organization.
pub fn fig3() -> String {
    control_unit_organization(&MachineConfig::prototype())
}

// ===================================================================== E5

/// One row of the stall-scaling experiment.
#[derive(Debug, Clone, Copy)]
pub struct StallRow {
    /// PE count.
    pub p: usize,
    /// Broadcast latency.
    pub b: u64,
    /// Reduction latency.
    pub r: u64,
    /// Measured cycles per dependent reduce/consume iteration,
    /// single-threaded.
    pub cycles_per_iter: f64,
    /// Fraction of cycles lost to reduction-class hazards.
    pub stall_fraction: f64,
}

/// E5 — reduction-hazard stalls grow with the PE count (§4/§5): a single
/// thread running dependent reductions pays ~b+r cycles each.
pub fn stall_scaling() -> Vec<StallRow> {
    [4usize, 16, 64, 256, 1024, 4096, 16384]
        .iter()
        .map(|&p| {
            let cfg = micro_cfg(p).single_threaded();
            let t = cfg.timing();
            let iters = 200;
            let stats = run(cfg, &micro::reduction_chain(iters));
            let red = stats.stalls_for(StallReason::ReductionHazard)
                + stats.stalls_for(StallReason::BroadcastReductionHazard);
            StallRow {
                p,
                b: t.b,
                r: t.r,
                cycles_per_iter: stats.cycles as f64 / iters as f64,
                stall_fraction: red as f64 / stats.cycles as f64,
            }
        })
        .collect()
}

/// Render E5.
pub fn render_stall_scaling(rows: &[StallRow]) -> String {
    let mut s = String::from("  PEs      b    r   cyc/iter   reduction-stall %\n");
    for r in rows {
        s.push_str(&format!(
            "{:>6} {:>4} {:>4} {:>9.1} {:>15.1}%\n",
            r.p,
            r.b,
            r.r,
            r.cycles_per_iter,
            100.0 * r.stall_fraction
        ));
    }
    s
}

// ===================================================================== E6

/// One row of the IPC-vs-threads experiment.
#[derive(Debug, Clone, Copy)]
pub struct IpcRow {
    /// PE count.
    pub p: usize,
    /// Hardware threads doing work.
    pub threads: usize,
    /// Issue-slot utilization (instructions per cycle).
    pub ipc: f64,
    /// Total cycles for the (fixed-total-work) run.
    pub cycles: u64,
}

/// E6 — fine-grain multithreading fills the reduction stalls: IPC rises
/// with thread count toward 1.0. Total work is held constant across
/// rows.
pub fn ipc_vs_threads() -> Vec<IpcRow> {
    let mut rows = Vec::new();
    for &p in &[16usize, 4096] {
        let total_iters = 960;
        for &t in &[1usize, 2, 4, 8, 15] {
            let cfg = micro_cfg(p);
            let stats = run(cfg, &micro::unrolled_fleet(t as u32, (total_iters / t) as u32, 8));
            rows.push(IpcRow { p, threads: t, ipc: stats.ipc(), cycles: stats.cycles });
        }
    }
    rows
}

/// Render E6.
pub fn render_ipc(rows: &[IpcRow]) -> String {
    let mut s = String::from("  PEs   threads      IPC       cycles\n");
    for r in rows {
        s.push_str(&format!("{:>6} {:>8} {:>8.3} {:>12}\n", r.p, r.threads, r.ipc, r.cycles));
    }
    s
}

// ===================================================================== E7

/// One row of the throughput-scaling comparison.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// PE count.
    pub p: usize,
    /// Non-pipelined clock (MHz).
    pub np_mhz: f64,
    /// Pipelined clock (MHz).
    pub pl_mhz: f64,
    /// Non-pipelined, single-stream: million instructions/second.
    pub np_mips: f64,
    /// Pipelined, single thread.
    pub st_mips: f64,
    /// Pipelined, fine-grain multithreaded (15 workers).
    pub mt_mips: f64,
}

/// E7 — the headline claim: pipelining + multithreading "maintain high
/// performance as the number of PEs increases". Instruction throughput =
/// IPC × clock, on the mixed associative workload.
pub fn throughput_scaling() -> Vec<ScalingRow> {
    let model = ClockModel::default();
    [16usize, 64, 256, 1024, 4096]
        .iter()
        .map(|&p| {
            let cfg = micro_cfg(p);
            let fcfg = FpgaConfig { num_pes: p as u64, ..FpgaConfig::prototype() };
            let np_mhz = model.nonpipelined_mhz(&fcfg);
            let pl_mhz = model.pipelined_mhz(&fcfg);

            let program = assemble(&micro::mixed_workload(200)).unwrap();
            let np = run_nonpipelined(cfg, &program, MAX).unwrap();
            let np_mips = np.instructions as f64 / np.cycles as f64 * np_mhz;

            let st = run(cfg.single_threaded(), &micro::mixed_workload(200));
            let st_mips = st.ipc() * pl_mhz;

            let mt = run(cfg, &micro::mixed_fleet(15, 40));
            let mt_mips = mt.ipc() * pl_mhz;

            ScalingRow { p, np_mhz, pl_mhz, np_mips, st_mips, mt_mips }
        })
        .collect()
}

/// Render E7.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut s = String::from(
        "  PEs   np-clk  pl-clk | non-pipelined  pipelined-ST  pipelined-MT  (M instr/s)\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>6} {:>7.1} {:>7.1} | {:>13.1} {:>13.1} {:>13.1}\n",
            r.p, r.np_mhz, r.pl_mhz, r.np_mips, r.st_mips, r.mt_mips
        ));
    }
    s
}

// ===================================================================== E8

/// One row of the broadcast-arity sweep.
#[derive(Debug, Clone, Copy)]
pub struct ArityRow {
    /// Tree arity k.
    pub k: usize,
    /// Broadcast latency b = ⌈log_k p⌉.
    pub b: u64,
    /// Pipelined clock (MHz) — wide nodes are slower.
    pub mhz: f64,
    /// Multithreaded IPC on the reduction fleet.
    pub ipc: f64,
    /// Effective throughput (M instr/s).
    pub mips: f64,
    /// Network LEs (wider trees need fewer registers).
    pub network_les: u64,
}

/// E8 — "the arity (k) of the tree used in the broadcast network is
/// variable and is chosen so as to maximize system performance": sweep k
/// at p = 1024 and find the sweet spot between hazard length (favours
/// large k) and node fanout delay (favours small k).
pub fn arity_sweep() -> Vec<ArityRow> {
    let model = ClockModel::default();
    let p = 1024usize;
    [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&k| {
            let cfg = micro_cfg(p).with_arity(k);
            let fcfg = FpgaConfig {
                num_pes: p as u64,
                broadcast_arity: k as u64,
                ..FpgaConfig::prototype()
            };
            let mhz = model.pipelined_mhz(&fcfg);
            let stats = run(cfg, &micro::unrolled_fleet(8, 60, 8));
            let les = ResourceReport::model(&fcfg).network.les;
            ArityRow {
                k,
                b: cfg.timing().b,
                mhz,
                ipc: stats.ipc(),
                mips: stats.ipc() * mhz,
                network_les: les,
            }
        })
        .collect()
}

/// Render E8.
pub fn render_arity(rows: &[ArityRow]) -> String {
    let mut s = String::from("   k    b    clock(MHz)    IPC    M instr/s   network LEs\n");
    for r in rows {
        s.push_str(&format!(
            "{:>4} {:>4} {:>11.1} {:>7.3} {:>10.1} {:>12}\n",
            r.k, r.b, r.mhz, r.ipc, r.mips, r.network_les
        ));
    }
    s
}

// ===================================================================== E9

/// E9 — the RAM-block limit (§7/§9): maximum PEs per device as a function
/// of local-memory size and flag-file sharing.
pub fn ram_limit() -> String {
    let mut s = String::from(
        "max PEs fitting each device (16 threads, 16-bit, 3 GPR-file copies)\n\
         device     | lmem=128 lmem=256 lmem=512 | lmem=512+flagshare8\n",
    );
    for d in asc_fpga::CYCLONE_II {
        let base = FpgaConfig::prototype();
        let row: Vec<u64> = [128u64, 256, 512]
            .iter()
            .map(|&l| max_pes_on(&FpgaConfig { lmem_words: l, ..base }, d))
            .collect();
        let shared = max_pes_on(&FpgaConfig { lmem_words: 512, pes_per_flag_block: 8, ..base }, d);
        s.push_str(&format!(
            "{:<10} | {:>8} {:>8} {:>8} | {:>19}\n",
            d.name, row[0], row[1], row[2], shared
        ));
    }
    s.push_str("\nAt 16 PEs on the EP2C35 the design uses 104/105 RAM blocks but only\n9,672/33,216 LEs — RAM blocks are the binding constraint, as §7 states.\n");
    s
}

// ===================================================================== E10

/// One row of the scheduling-policy comparison.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: String,
    /// Total cycles on the fixed fleet workload.
    pub cycles: u64,
    /// IPC.
    pub ipc: f64,
    /// Thread switches (coarse-grain only).
    pub switches: u64,
}

/// E10 — §5's argument that coarse-grain multithreading cannot hide
/// frequent short reduction stalls: compare fine-grain against
/// coarse-grain with several switch penalties, at p = 256.
pub fn coarse_vs_fine() -> Vec<PolicyRow> {
    let p = 256;
    let src = micro::unrolled_fleet(8, 60, 8);
    let mut rows = Vec::new();
    let fine = run(micro_cfg(p), &src);
    rows.push(PolicyRow {
        policy: "fine-grain".into(),
        cycles: fine.cycles,
        ipc: fine.ipc(),
        switches: fine.thread_switches,
    });
    for penalty in [2u64, 4, 8] {
        let stats = run(micro_cfg(p).coarse_grain(penalty), &src);
        rows.push(PolicyRow {
            policy: format!("coarse (penalty {penalty})"),
            cycles: stats.cycles,
            ipc: stats.ipc(),
            switches: stats.thread_switches,
        });
    }
    let st = run(micro_cfg(p).single_threaded(), &micro::unrolled_chain(8 * 60, 8));
    rows.push(PolicyRow {
        policy: "single thread".into(),
        cycles: st.cycles,
        ipc: st.ipc(),
        switches: 0,
    });
    rows
}

/// Render E10.
pub fn render_policy(rows: &[PolicyRow]) -> String {
    let mut s = String::from("policy               cycles      IPC   switches\n");
    for r in rows {
        s.push_str(&format!(
            "{:<18} {:>8} {:>8.3} {:>10}\n",
            r.policy, r.cycles, r.ipc, r.switches
        ));
    }
    s
}

// ===================================================================== E11

/// E11 — multiplier/divider organizations (§6.2): pipelined vs sequential
/// multiplier under multithreading, and the claim that an uncommon
/// division does not suffer from the shared sequential divider.
pub fn muldiv() -> String {
    use asc_pe::{DividerConfig, MultiplierKind};
    let p = 64;
    // multiplier-heavy fleet
    let mul_fleet = "
main:   li   s1, worker
        li   s2, 0
        li   s3, 4
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 32(s2)
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 32(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
worker: li   s6, 60
        pidx p1
wloop:  pmuli p2, p1, 3
        pmuli p3, p2, 5
        addi s6, s6, -1
        ceqi f1, s6, 0
        bf   f1, wloop
        texit
";
    let mut cfg_pipe = micro_cfg(p);
    cfg_pipe.multiplier = MultiplierKind::Pipelined { latency: 3 };
    let pipe = run(cfg_pipe, mul_fleet);
    let mut cfg_seq = micro_cfg(p);
    cfg_seq.multiplier = MultiplierKind::Sequential { cycles: 16 };
    let seq = run(cfg_seq, mul_fleet);

    // division frequency sweep on 4 threads
    let div_prog = |stride: u32| {
        format!(
            "
main:   li   s1, worker
        li   s2, 0
        li   s3, 4
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 32(s2)
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 32(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
worker: li   s6, 40
        pidx p1
wloop:  pdivi p2, p1, 3
{filler}        addi s6, s6, -1
        ceqi f1, s6, 0
        bf   f1, wloop
        texit
",
            filler = "        paddi p3, p3, 1\n".repeat(stride as usize),
        )
    };
    let mut cfg_div = micro_cfg(p);
    cfg_div.divider = DividerConfig::Sequential { cycles: 18 };
    let rare = run(cfg_div, &div_prog(16));
    let frequent = run(cfg_div, &div_prog(0));

    format!(
        "multiplier (4 threads, mul-heavy): pipelined {} cycles (IPC {:.3}) vs sequential {} cycles (IPC {:.3})\n\
         divider contention (4 threads): rare division {:.1}% structural stalls, back-to-back division {:.1}%\n",
        pipe.cycles,
        pipe.ipc(),
        seq.cycles,
        seq.ipc(),
        100.0 * rare.stalls_for(StallReason::Structural) as f64 / rare.cycles as f64,
        100.0 * frequent.stalls_for(StallReason::Structural) as f64 / frequent.cycles as f64,
    )
}

// ===================================================================== E12

/// One row of the kernel-suite report.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Validated against the host reference?
    pub ok: bool,
    /// Cycles.
    pub cycles: u64,
    /// IPC.
    pub ipc: f64,
    /// Fraction of cycles in reduction-class stalls.
    pub reduction_stall_pct: f64,
}

/// E12 — the application kernels (§9 future work): cycles, IPC, stall
/// profile, each validated against a host reference.
pub fn kernel_suite() -> Vec<KernelRow> {
    use asc_kernels::{image, iterate, mst, search, select, string_match};
    let mut rows = Vec::new();
    let pct = |s: &Stats| {
        100.0
            * (s.stalls_for(StallReason::ReductionHazard)
                + s.stalls_for(StallReason::BroadcastReductionHazard)) as f64
            / s.cycles as f64
    };

    let cfg = MachineConfig::new(256);
    let records: Vec<(i64, i64)> = (0..256).map(|i| ((i * 7) % 32, i)).collect();
    let r = search::run(cfg, &records, 3).unwrap();
    let (m, fv, fi) = search::reference(&records, 3);
    rows.push(KernelRow {
        name: "search (256 records)",
        ok: (r.matches, r.first_value, r.first_index) == (m, fv, fi),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let values: Vec<i64> = (0..256).map(|i| ((i * 37) % 199) - 99).collect();
    let r = select::run(cfg, &values).unwrap();
    let (mx, am, mn, an) = select::reference(&values);
    rows.push(KernelRow {
        name: "max/min select (256)",
        ok: (r.max, r.argmax, r.min, r.argmin) == (mx, am, mn, an),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let recs: Vec<(i64, i64)> = (0..64).map(|i| (i % 2, i)).collect();
    let r = iterate::run(MachineConfig::new(64), &recs, 1).unwrap();
    let (cnt, fold) = iterate::reference(&recs, 1, MachineConfig::new(64).width);
    rows.push(KernelRow {
        name: "responder iteration (32)",
        ok: (r.processed, r.fold) == (cnt, fold),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let g = mst::random_graph(48, 100, 7);
    let r = mst::run(MachineConfig::new(64), &g).unwrap();
    rows.push(KernelRow {
        name: "MST (48 vertices)",
        ok: r.total_weight == mst::reference(&g),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let text: Vec<u8> = (0..256).map(|i| b"abcab"[i % 5]).collect();
    let r = string_match::run(cfg, &text, b"abc").unwrap();
    let (c, f) = string_match::reference(&text, b"abc");
    rows.push(KernelRow {
        name: "string match (n=256,m=3)",
        ok: (r.count, r.first) == (c, f),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    // pixel values kept small enough that the saturating sum stays exact
    let pixels: Vec<i64> = (0..1024).map(|i| (i * 13) % 31).collect();
    let r = image::run(cfg, &pixels, 15).unwrap();
    let (s, mn, mx, ab) = image::reference(&pixels, 15, 256);
    rows.push(KernelRow {
        name: "image stats (1024 px)",
        ok: (r.sum, r.min, r.max, r.above_threshold) == (s, mn, mx, ab),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let vals: Vec<i64> = (0..256).map(|i| (i * 31) % 64).collect();
    let (hist, stats) = image::histogram::run(cfg, &vals, 8, 64).unwrap();
    rows.push(KernelRow {
        name: "histogram (256, 8 bins)",
        ok: hist == image::histogram::reference(&vals, 8, 64),
        cycles: stats.cycles,
        ipc: stats.ipc(),
        reduction_stall_pct: pct(&stats),
    });

    use asc_kernels::{hull, sort, tracker};
    let sv: Vec<i64> = (0..128).map(|i| ((i * 73) % 251) - 125).collect();
    let r = sort::run(cfg, &sv).unwrap();
    rows.push(KernelRow {
        name: "associative sort (128)",
        ok: r.sorted == sort::reference(&sv),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let pts: Vec<(i64, i64)> =
        (0..48).map(|i| (((i * 17) % 91) as i64 - 45, ((i * 29) % 83) as i64 - 41)).collect();
    let r = hull::run(MachineConfig::new(64), &pts).unwrap();
    rows.push(KernelRow {
        name: "convex hull (48 points)",
        ok: r.on_hull == hull::reference(&pts),
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    let reports: Vec<(i64, i64)> =
        (0..40).map(|i| ((i * 13) % 101 - 50, (i * 7) % 99 - 49)).collect();
    let r = tracker::run(MachineConfig::new(64), &reports).unwrap();
    let (tref, dref) = tracker::reference(&reports, 64);
    rows.push(KernelRow {
        name: "ATC tracker (40 reports)",
        ok: r.tracks == tref && r.dropped == dref,
        cycles: r.stats.cycles,
        ipc: r.stats.ipc(),
        reduction_stall_pct: pct(&r.stats),
    });

    rows
}

/// Render E12.
pub fn render_kernels(rows: &[KernelRow]) -> String {
    let mut s =
        String::from("kernel                      ok     cycles      IPC   reduction-stall %\n");
    for r in rows {
        s.push_str(&format!(
            "{:<26} {:>3} {:>9} {:>8.3} {:>14.1}%\n",
            r.name,
            if r.ok { "yes" } else { "NO" },
            r.cycles,
            r.ipc,
            r.reduction_stall_pct
        ));
    }
    s
}

// ===================================================================== E13

/// E13 — forwarding ablation: how much the EX→B1 / EX→EX forwarding paths
/// buy (§4.2 presents forwarding as the fix for broadcast hazards; here
/// we quantify it by removing it).
pub fn forwarding_ablation() -> String {
    let p = 256;
    let src = micro::mixed_workload(150);
    let with_fwd = run(micro_cfg(p).single_threaded(), &src);
    let without = run(micro_cfg(p).single_threaded().without_forwarding(), &src);
    let mt_with = run(micro_cfg(p), &micro::mixed_fleet(15, 30));
    let mt_without = run(micro_cfg(p).without_forwarding(), &micro::mixed_fleet(15, 30));
    // the paper's Figure-2 (top) pair as a direct probe
    let probe = "sub s1, s2, s3\npadds p1, p2, s1\nhalt\n";
    let probe_with = run(micro_cfg(p).single_threaded(), probe);
    let probe_without = run(micro_cfg(p).single_threaded().without_forwarding(), probe);
    format!(
        "single thread: forwarding {} cycles (IPC {:.3})  |  no forwarding {} cycles (IPC {:.3})  → {:.2}x slower\n\
         16 threads:    forwarding {} cycles (IPC {:.3})  |  no forwarding {} cycles (IPC {:.3})  → {:.2}x slower\n\
         Figure-2 broadcast-hazard pair (sub; padds): {} stall cycles with forwarding, {} without\n",
        with_fwd.cycles,
        with_fwd.ipc(),
        without.cycles,
        without.ipc(),
        without.cycles as f64 / with_fwd.cycles as f64,
        mt_with.cycles,
        mt_with.ipc(),
        mt_without.cycles,
        mt_without.ipc(),
        mt_without.cycles as f64 / mt_with.cycles as f64,
        probe_with.stalls_for(StallReason::BroadcastHazard),
        probe_without.stalls_for(StallReason::BroadcastHazard),
    )
}

// ===================================================================== E14

/// E14 — the PE interconnection network extension (\[7\] in the paper's
/// lineage): kernels impossible (or memory-hungry) on the base machine.
pub fn interconnect() -> String {
    use asc_kernels::{prefix, stencil, string_match};
    let cfg = MachineConfig::new(256);

    let values: Vec<i64> = (0..256).map(|i| (i % 13) - 6).collect();
    let scan = prefix::run(cfg, &values).unwrap();
    let scan_ok = scan.sums == prefix::reference(&values);

    let samples: Vec<i64> = (0..256).map(|i| (i % 17) - 8).collect();
    let st = stencil::run(cfg, &samples, 2).unwrap();
    let st_ok = st.output == stencil::reference(&samples, 2);

    let text: Vec<u8> = (0..256).map(|i| b"abcab"[i % 5]).collect();
    let windowed = string_match::run(cfg, &text, b"abcab").unwrap();
    let shifted = string_match::run_shift(cfg, &text, b"abcab").unwrap();
    let sm_ok = (windowed.count, windowed.first) == (shifted.count, shifted.first);

    format!(
        "prefix sum (n=256):      {} in {} cycles ({} instructions — log-step scan)\n\
         3-pt stencil (n=256,x2): {} in {} cycles\n\
         string match n=256 m=5:  windowed {} cycles / {} lmem words per PE vs shifted {} cycles / 1 word per PE ({})\n",
        if scan_ok { "ok" } else { "MISMATCH" },
        scan.stats.cycles,
        scan.stats.issued,
        if st_ok { "ok" } else { "MISMATCH" },
        st.stats.cycles,
        windowed.stats.cycles,
        5,
        shifted.stats.cycles,
        if sm_ok { "agree" } else { "DISAGREE" },
    )
}

// ===================================================================== E15

/// E15 — multithreaded batch queries: end-to-end speedup on a real kernel
/// (not a microbenchmark), across worker counts.
pub fn batch_speedup() -> String {
    use asc_kernels::batch;
    let cfg = MachineConfig::new(256);
    let keys: Vec<i64> = (0..256).map(|i| (i * 13) % 32).collect();
    let queries: Vec<i64> = (0..240).map(|i| i % 32).collect();
    let base = batch::run(cfg, &keys, &queries, 0).unwrap();
    let mut s = format!(
        "240 queries over 256 records (p = 256, b+r = {}):\n  workers  cycles   speedup   IPC\n        0 {:>7}      1.00  {:.3}\n",
        cfg.timing().b + cfg.timing().r,
        base.stats.cycles,
        base.stats.ipc()
    );
    for workers in [2usize, 4, 8, 12, 15] {
        let r = batch::run(cfg, &keys, &queries, workers).unwrap();
        assert_eq!(r.counts, base.counts, "results must not depend on threading");
        s.push_str(&format!(
            "{:>9} {:>7} {:>9.2}  {:.3}\n",
            workers,
            r.stats.cycles,
            base.stats.cycles as f64 / r.stats.cycles as f64,
            r.stats.ipc()
        ));
    }
    s
}

// ===================================================================== E16

/// E16 — fetch-unit sensitivity: the explicit fetch model (Figure 3's
/// per-thread instruction buffers, one fetch per cycle) versus the ideal
/// front end, across buffer depths. Single-issue machines are fetch-issue
/// balanced, so the paper's simple fetch unit suffices — shown here.
pub fn fetch_model() -> String {
    let p = 256;
    let src = micro::unrolled_fleet(8, 40, 8);
    let ideal = run(micro_cfg(p), &src);
    let mut s = format!(
        "8-worker reduction fleet at p = 256\n  front end        cycles      IPC   fetch-empty stalls\n  ideal          {:>8} {:>8.3} {:>12}\n",
        ideal.cycles,
        ideal.ipc(),
        0
    );
    for depth in [1usize, 2, 4] {
        let st = run(micro_cfg(p).with_fetch_buffers(depth), &src);
        s.push_str(&format!(
            "  buffers({depth})     {:>8} {:>8.3} {:>12}\n",
            st.cycles,
            st.ipc(),
            st.stalls_for(StallReason::FetchEmpty)
        ));
    }
    s.push_str("\nOne fetch per cycle matches one issue per cycle, so even depth-1\nbuffers track the ideal front end closely — the architectural reason\nthe paper's fetch unit can stay simple.\n");
    s
}

// ===================================================================== E17

/// E17 — datapath width sweep: the prototype's width is ambiguous in the
/// OCR'd text (we argue 16-bit in DESIGN.md); model all three widths.
pub fn width_sweep() -> String {
    use asc_isa::Width;
    let model = ClockModel::default();
    let mut s = String::from(
        "width | LEs/PE  RAM/PE  max PEs on EP2C35 | clock (MHz) | rmax cyc (falkoff np)\n",
    );
    for width in Width::ALL {
        let fc = FpgaConfig { width, ..FpgaConfig::prototype() };
        let report = ResourceReport::model(&fc);
        let per_pe_les = report.pe_array.les / fc.num_pes;
        let per_pe_rams = (report.pe_array.rams as f64) / fc.num_pes as f64;
        let maxp = max_pes_on(&fc, &Device::ep2c35());
        let mhz = model.pipelined_mhz(&fc);
        s.push_str(&format!(
            "{:>5} | {:>6} {:>7.1} {:>18} | {:>11.1} | {:>10}\n",
            width.bits(),
            per_pe_les,
            per_pe_rams,
            maxp,
            mhz,
            width.bits(),
        ));
    }
    s.push_str("\n16-bit PEs fit Table 1's 374 LEs/PE and 6 RAM blocks/PE exactly;\n8-bit PEs could not address the 1 KB local memory (see DESIGN.md §1.8).\n");
    s
}

// ===================================================================== E18

/// E18 — ASCL compiler overhead: the same associative computation written
/// by hand in assembly vs compiled from the ASCL language (§9's
/// "implementing software for the architecture").
pub fn lang_overhead() -> String {
    let cfg = MachineConfig::new(64);

    // hand-written: max + holder + responder count
    let hand = "
        pidx   p1
        pmuli  p2, p1, 3
        premi  p2, p2, 7
        rmax   s1, p2
        pfclr  pf1
        pceqs  pf1, p2, s1
        pfirst pf2, pf1
        rget   s2, p1, pf2
        rcount s3, pf1
        halt
    ";
    let hand_stats = run(cfg, hand);

    let ascl = "
        par v;
        v = index() * 3 % 7;
        sca m = max(v);
        out(m);
        where (v == m) {
            out(first(index()));
            out(count(v == m));
        }
    ";
    let program = asc_lang::compile_program(ascl).expect("ascl compiles");
    let mut m = Machine::with_program(cfg, &program).unwrap();
    let lang_stats = m.run(MAX).unwrap();

    format!(
        "max+holder+count kernel (p = 64):\n  hand-written assembly: {:>3} instructions, {:>3} cycles\n  compiled from ASCL:    {:>3} instructions, {:>3} cycles ({:.2}x)\n\nThe compiler spends extra instructions on out() bookkeeping and\nregister moves; the associative operations themselves lower 1:1.\n",
        hand_stats.issued,
        hand_stats.cycles,
        lang_stats.issued,
        lang_stats.cycles,
        lang_stats.cycles as f64 / hand_stats.cycles as f64,
    )
}

// ===================================================================== E19

/// E19 — §6.2's configuration tradeoff: "a larger memory will reduce
/// off-chip memory traffic, but reduce the number of PEs that can fit on
/// a single FPGA." Tiled 8-pass workload over 64K words on the EP2C70.
pub fn offchip() -> String {
    use asc_fpga::{offchip_sweep, Workload};
    let base = FpgaConfig::prototype();
    let dev = asc_fpga::Device::by_name("EP2C70").unwrap();
    let w = Workload { data_words: 16_384, passes: 8, bus_words_per_cycle: 1 };
    let sizes = [64u64, 128, 256, 512, 1024, 2048, 4096];
    let costs = offchip_sweep(&base, &dev, &w, &sizes);
    let best = costs.iter().map(|c| c.total_cycles).min().unwrap();
    let mut s = String::from(
        "16K words, 8 passes, 1 word/cycle off-chip bus, EP2C70:\n lmem   PEs  resident  compute   transfer(words)   total cycles\n",
    );
    for c in &costs {
        s.push_str(&format!(
            "{:>5} {:>5} {:>9} {:>8} {:>17} {:>14}{}\n",
            c.lmem_words,
            c.pes,
            if c.resident { "yes" } else { "no" },
            c.compute_cycles,
            c.transfer_words,
            c.total_cycles,
            if c.total_cycles == best { "  <- best" } else { "" },
        ));
    }
    s.push_str("\nSmaller memories buy PEs (compute shrinks) until the working set\nspills and traffic multiplies by the pass count — §6.2's tradeoff.\n");
    s
}

// ===================================================================== E20

/// E20 — reduction-network occupancy: §6.4 pipelines every unit so
/// "threads never contend for its use". Measure how many reduction
/// operations are simultaneously in flight in the tree, single-threaded
/// vs multithreaded — the pipelining is *useless* without MT and *full*
/// with it.
pub fn occupancy() -> String {
    let mut s = String::from(
        "reduction operations in flight in the pipelined tree (p = 1024, r = 10):\n  config            avg occupancy   peak   cycles\n",
    );
    for (name, cfg, src) in [
        ("1 thread", micro_cfg(1024).single_threaded(), micro::unrolled_chain(15 * 60, 8)),
        ("15 threads", micro_cfg(1024), micro::unrolled_fleet(15, 60, 8)),
    ] {
        let program = assemble(&src).unwrap();
        let mut m = Machine::with_program(cfg, &program).unwrap();
        m.enable_trace();
        m.run(MAX).unwrap();
        let t = m.timing();
        // a reduction occupies the tree during its R stages:
        // cycles [issue+b+2, issue+b+r+1]
        let mut deltas: Vec<(u64, i64)> = Vec::new();
        for rec in m.trace().unwrap() {
            if rec.instr.class() == asc_isa::InstrClass::Reduction {
                deltas.push((rec.cycle + t.b + 2, 1));
                deltas.push((rec.cycle + t.b + t.r + 2, -1));
            }
        }
        deltas.sort_unstable();
        let mut inflight = 0i64;
        let mut peak = 0i64;
        let mut area = 0i64;
        let mut last = 0u64;
        for (c, d) in deltas {
            area += inflight * (c - last) as i64;
            last = c;
            inflight += d;
            peak = peak.max(inflight);
        }
        let cycles = m.stats().cycles;
        s.push_str(&format!(
            "  {:<16} {:>13.2} {:>6} {:>8}\n",
            name,
            area as f64 / cycles as f64,
            peak,
            cycles
        ));
    }
    s.push_str("\nOne thread keeps well under one operation in the 10-stage tree; the\nfleet fills it — the structural payoff of combining pipelining with\nfine-grain multithreading.\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_paper_numbers() {
        let t = table1();
        for n in ["1897", "5984", "1791", "9672", "104", "33216", "105", "75.0 MHz"] {
            assert!(t.contains(n), "missing {n}:\n{t}");
        }
    }

    #[test]
    fn stall_scaling_monotone() {
        let rows = stall_scaling();
        for w in rows.windows(2) {
            assert!(w[1].cycles_per_iter > w[0].cycles_per_iter);
        }
        // at large p the machine is mostly stalled
        assert!(rows.last().unwrap().stall_fraction > 0.5);
    }

    #[test]
    fn ipc_rises_with_threads() {
        let rows = ipc_vs_threads();
        for chunk in rows.chunks(5) {
            assert!(chunk[4].ipc > 2.0 * chunk[0].ipc, "{chunk:?}");
            for w in chunk.windows(2) {
                assert!(w[1].ipc > w[0].ipc * 0.95, "{w:?}");
            }
        }
    }

    #[test]
    fn multithreaded_pipelined_wins_at_scale() {
        let rows = throughput_scaling();
        let last = rows.last().unwrap();
        assert!(last.mt_mips > last.st_mips);
        assert!(last.mt_mips > 3.0 * last.np_mips, "{last:?}");
        // crossover structure: the non-pipelined clock degrades with p
        assert!(rows[0].np_mhz > last.np_mhz * 1.5);
        // pipelined MT throughput holds up (within 40%) across a 256x scale-up
        assert!(last.mt_mips > 0.6 * rows[0].mt_mips);
    }

    #[test]
    fn arity_sweep_has_interior_optimum() {
        let rows = arity_sweep();
        let best = rows.iter().max_by(|a, b| a.mips.partial_cmp(&b.mips).unwrap()).unwrap();
        assert!(best.k > 2 && best.k < 32, "optimum should be interior, got k={}", best.k);
    }

    #[test]
    fn kernels_all_validate() {
        for row in kernel_suite() {
            assert!(row.ok, "{} failed validation", row.name);
        }
    }

    #[test]
    fn forwarding_matters() {
        let out = forwarding_ablation();
        assert!(out.contains("x slower"));
    }

    #[test]
    fn interconnect_kernels_validate() {
        let out = interconnect();
        assert!(out.contains("ok"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        assert!(out.contains("agree"), "{out}");
    }

    #[test]
    fn batch_scales_with_workers() {
        let out = batch_speedup();
        assert!(out.contains("12"));
    }

    #[test]
    fn fetch_model_close_to_ideal() {
        let out = fetch_model();
        assert!(out.contains("buffers(2)"));
    }

    #[test]
    fn width_sweep_renders() {
        let out = width_sweep();
        assert!(out.contains("374"));
    }

    #[test]
    fn lang_overhead_is_bounded() {
        let out = lang_overhead();
        assert!(out.contains("compiled from ASCL"));
    }

    #[test]
    fn offchip_tradeoff_renders() {
        let out = offchip();
        assert!(out.contains("<- best"));
    }

    #[test]
    fn occupancy_rises_with_threads() {
        let out = occupancy();
        assert!(out.contains("15 threads"));
    }

    #[test]
    fn coarse_is_slower_than_fine() {
        let rows = coarse_vs_fine();
        let fine = rows[0].cycles;
        for r in &rows[1..4] {
            assert!(r.cycles > fine, "{}: {} <= {fine}", r.policy, r.cycles);
        }
        // and every MT policy beats single-thread
        let st = rows.last().unwrap().cycles;
        for r in &rows[..4] {
            assert!(r.cycles < st);
        }
    }
}
