//! # asc-bench — experiment harness
//!
//! One function per experiment in `DESIGN.md`'s index (E1–E12), each
//! returning structured rows plus a rendered table. The `tablegen` binary
//! prints them; the integration tests assert the *shapes* the paper
//! claims (who wins, how things scale); `EXPERIMENTS.md` records the
//! outputs next to the paper's numbers.

pub mod experiments;

pub use experiments::*;
