//! Regenerate every table and figure of the paper (and the derived
//! experiments in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p asc-bench --bin tablegen            # everything
//! cargo run --release -p asc-bench --bin tablegen -- table1  # one artifact
//! ```

use asc_bench::experiments as e;

/// Name, heading, generator for one artifact.
type Section = (&'static str, &'static str, Box<dyn Fn() -> String>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    let sections: Vec<Section> = vec![
        ("table1", "E1 — Table 1: FPGA resource usage (calibrated model)", Box::new(e::table1)),
        ("fig1", "E2 — Figure 1: pipeline organization", Box::new(e::fig1)),
        ("fig2", "E3 — Figure 2: pipeline hazards (simulated traces)", Box::new(e::fig2)),
        ("fig3", "E4 — Figure 3: control unit organization", Box::new(e::fig3)),
        (
            "stalls",
            "E5 — reduction-hazard stalls vs PE count (single thread)",
            Box::new(|| e::render_stall_scaling(&e::stall_scaling())),
        ),
        (
            "ipc",
            "E6 — IPC vs hardware threads (fixed total work)",
            Box::new(|| e::render_ipc(&e::ipc_vs_threads())),
        ),
        (
            "scaling",
            "E7 — throughput vs PE count: non-pipelined / pipelined-ST / pipelined-MT",
            Box::new(|| e::render_scaling(&e::throughput_scaling())),
        ),
        (
            "arity",
            "E8 — broadcast tree arity sweep (p = 1024)",
            Box::new(|| e::render_arity(&e::arity_sweep())),
        ),
        ("ramlimit", "E9 — RAM blocks limit the PE count", Box::new(e::ram_limit)),
        (
            "coarse",
            "E10 — fine-grain vs coarse-grain multithreading (p = 256)",
            Box::new(|| e::render_policy(&e::coarse_vs_fine())),
        ),
        ("muldiv", "E11 — multiplier/divider organizations", Box::new(e::muldiv)),
        (
            "kernels",
            "E12 — associative kernel suite (validated against host references)",
            Box::new(|| e::render_kernels(&e::kernel_suite())),
        ),
        (
            "forwarding",
            "E13 — forwarding ablation (EX->B1 / EX->EX paths removed)",
            Box::new(e::forwarding_ablation),
        ),
        (
            "interconnect",
            "E14 — PE interconnection network extension (pshift)",
            Box::new(e::interconnect),
        ),
        (
            "batch",
            "E15 — multithreaded batch queries: worker-count sweep",
            Box::new(e::batch_speedup),
        ),
        ("fetch", "E16 — fetch-unit model: buffer-depth sensitivity", Box::new(e::fetch_model)),
        ("width", "E17 — datapath width sweep (8/16/32-bit PEs)", Box::new(e::width_sweep)),
        (
            "lang",
            "E18 — ASCL compiler overhead vs hand-written assembly",
            Box::new(e::lang_overhead),
        ),
        (
            "offchip",
            "E19 — local memory size vs off-chip traffic vs PE count",
            Box::new(e::offchip),
        ),
        (
            "occupancy",
            "E20 — reduction-network occupancy: pipelining needs multithreading",
            Box::new(e::occupancy),
        ),
    ];

    let mut ran = false;
    for (name, title, f) in &sections {
        if want(name) {
            ran = true;
            println!("==================================================================");
            println!("{title}   [{name}]");
            println!("==================================================================");
            println!("{}", f());
        }
    }
    if !ran {
        eprintln!("unknown experiment; available:");
        for (name, title, _) in &sections {
            eprintln!("  {name:<10} {title}");
        }
        std::process::exit(2);
    }
}
