//! PE-count scaling sweep: run the associative-search kernel at every
//! power-of-two array size from 2⁴ to 2¹⁶ and record simulator throughput
//! (simulated instructions per wall-clock second) for each size.
//!
//! Unlike the criterion benches this target writes a machine-readable
//! report, `BENCH_pe_scaling.json` at the repository root, so successive
//! PRs accumulate a perf trajectory (see `docs/performance.md` for the
//! schema). Run with `cargo bench --bench pe_scaling`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use asc_core::MachineConfig;
use asc_kernels::search;

/// One measured point of the sweep.
struct Point {
    num_pes: usize,
    /// Simulated instructions issued per kernel run.
    instructions: u64,
    /// Simulated cycles per kernel run.
    cycles: u64,
    /// Wall-clock seconds per kernel run (best of the measured runs).
    seconds: f64,
}

impl Point {
    fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / self.seconds
    }
}

/// Time one full `search::run` (assemble + distribute + simulate) at the
/// given array size, returning the best-of-`runs` wall time.
fn measure(num_pes: usize, runs: usize) -> Point {
    let records: Vec<(i64, i64)> = (0..num_pes as i64).map(|i| ((i * 7) % 1024, i)).collect();
    let cfg = MachineConfig::new(num_pes).single_threaded();
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = search::run(cfg, &records, 3).unwrap();
        let dt = t.elapsed().as_secs_f64();
        black_box(r.matches);
        if dt < best {
            best = dt;
        }
        stats = Some((r.stats.issued, r.stats.cycles));
    }
    let (instructions, cycles) = stats.unwrap();
    Point { num_pes, instructions, cycles, seconds: best }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("pe_scaling: bench");
        return;
    }
    let smoke = args.iter().any(|a| a == "--test");
    let sizes: Vec<usize> =
        if smoke { vec![16, 64] } else { (4..=16).map(|e| 1usize << e).collect() };

    let mut points = Vec::new();
    println!("{:>8} {:>14} {:>12} {:>16}", "num_pes", "instr/run", "wall (ms)", "instr/sec");
    for &p in &sizes {
        // more repeats at small sizes where a single run is microseconds
        let runs = (1 << 22) / p.max(1);
        let pt = measure(p, runs.clamp(3, 2048));
        println!(
            "{:>8} {:>14} {:>12.3} {:>16.0}",
            pt.num_pes,
            pt.instructions,
            pt.seconds * 1e3,
            pt.instr_per_sec()
        );
        points.push(pt);
    }

    if smoke {
        println!("pe_scaling: ok (smoke, report not written)");
        return;
    }

    // versioned, machine-readable report at the repository root
    let mut json = String::from("{\n  \"schema\": \"mtasc.pe_scaling.v1\",\n");
    json.push_str("  \"kernel\": \"associative_search\",\n  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"num_pes\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"wall_seconds\": {:.9}, \"instr_per_sec\": {:.1}}}{}\n",
            pt.num_pes,
            pt.instructions,
            pt.cycles,
            pt.seconds,
            pt.instr_per_sec(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pe_scaling.json");
    std::fs::write(&out, json).expect("write BENCH_pe_scaling.json");
    println!("wrote {}", out.display());
}
