//! PE-count scaling sweep: run the associative-search kernel at every
//! power-of-two array size from 2⁴ to 2¹⁸ and record simulator throughput
//! (simulated instructions per wall-clock second) for each size.
//!
//! Unlike the criterion benches this target writes a machine-readable
//! report, `BENCH_pe_scaling.json` at the repository root, so successive
//! PRs accumulate a perf trajectory (see `docs/performance.md` for the
//! schema). Run with `cargo bench --bench pe_scaling`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use asc_core::MachineConfig;
use asc_kernels::search;

/// One measured point of the sweep.
struct Point {
    num_pes: usize,
    /// Simulated instructions issued per kernel run.
    instructions: u64,
    /// Simulated cycles per kernel run.
    cycles: u64,
    /// Wall-clock seconds per kernel run (median of the measured runs).
    seconds: f64,
}

impl Point {
    fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / self.seconds
    }
}

/// Median of the collected wall times (non-empty; even counts take the
/// mean of the two middle samples).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Time one full `search::run` (assemble + distribute + simulate) at the
/// given array size, returning the median-of-`runs` wall time.
fn measure(num_pes: usize, runs: usize) -> Point {
    // The value payload wraps at the 16-bit datapath width so the sweep
    // can grow past 2^16 PEs (the payload is opaque to the kernel — only
    // the keys drive the search).
    let records: Vec<(i64, i64)> =
        (0..num_pes as i64).map(|i| ((i * 7) % 1024, i & 0xffff)).collect();
    let cfg = MachineConfig::new(num_pes).single_threaded();
    let mut samples = Vec::with_capacity(runs);
    let mut stats = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = search::run(cfg, &records, 3).unwrap();
        samples.push(t.elapsed().as_secs_f64());
        black_box(r.matches);
        stats = Some((r.stats.issued, r.stats.cycles));
    }
    let (instructions, cycles) = stats.unwrap();
    Point { num_pes, instructions, cycles, seconds: median(samples) }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("pe_scaling: bench");
        return;
    }
    let smoke = args.iter().any(|a| a == "--test");
    let sizes: Vec<usize> =
        if smoke { vec![16, 64] } else { (4..=18).map(|e| 1usize << e).collect() };

    let mut points = Vec::new();
    println!("{:>8} {:>14} {:>12} {:>16}", "num_pes", "instr/run", "wall (ms)", "instr/sec");
    for &p in &sizes {
        // more repeats at small sizes where a single run is microseconds;
        // never fewer than 5, so the median has something to work with
        let runs = (1 << 22) / p.max(1);
        let pt = measure(p, runs.clamp(5, 2048));
        println!(
            "{:>8} {:>14} {:>12.3} {:>16.0}",
            pt.num_pes,
            pt.instructions,
            pt.seconds * 1e3,
            pt.instr_per_sec()
        );
        points.push(pt);
    }

    if smoke {
        println!("pe_scaling: ok (smoke, report not written)");
        return;
    }

    // versioned, machine-readable report at the repository root
    let mut json = String::from("{\n  \"schema\": \"mtasc.pe_scaling.v1\",\n");
    json.push_str("  \"kernel\": \"associative_search\",\n  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"num_pes\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"wall_seconds\": {:.9}, \"instr_per_sec\": {:.1}}}{}\n",
            pt.num_pes,
            pt.instructions,
            pt.cycles,
            pt.seconds,
            pt.instr_per_sec(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pe_scaling.json");
    std::fs::write(&out, json).expect("write BENCH_pe_scaling.json");
    println!("wrote {}", out.display());
}
