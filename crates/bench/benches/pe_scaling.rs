//! PE-count scaling sweep: measure associative **query latency** on a
//! preloaded database at every power-of-two array size from 2⁴ to 2²⁰,
//! with the core-affine segmentation both enabled (the default automatic
//! slicing) and forced off (`--segments 1`), so the committed table
//! proves the two-level reduction win point by point.
//!
//! The database holds one record per PE with keys sorted into contiguous
//! clusters (all PEs sharing a key are adjacent), the layout an
//! associative batch loader produces and the one that makes responder
//! sets segment-local. Each timed run answers a fixed batch of queries —
//! compare, count, resolve, and three masked reductions per query — on an
//! already-loaded machine; construction and scatter are outside the
//! timer, so `wall_seconds` is the per-query latency.
//!
//! Unlike the criterion benches this target writes a machine-readable
//! report, `BENCH_pe_scaling.json` at the repository root, so successive
//! PRs accumulate a perf trajectory (see `docs/performance.md` for the
//! schema). Run with `cargo bench --bench pe_scaling`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use asc_core::{Machine, MachineConfig, Stats};
use asc_isa::{Width, Word};

/// Queries per timed run: enough to amortize the three prologue sweeps,
/// few enough that every unrolled run fits the default instruction
/// memory.
const QUERIES: usize = 32;

/// One measured point of the sweep.
struct Point {
    num_pes: usize,
    /// Resolved segment count of the default (automatic) slicing.
    segments: usize,
    /// Simulated instructions issued per timed run.
    instructions: u64,
    /// Simulated cycles per timed run.
    cycles: u64,
    /// Wall-clock seconds per query, automatic segmentation (median).
    seconds: f64,
    /// Wall-clock seconds per query, forced monolithic (median).
    seconds_1seg: f64,
    /// Bytes of register/flag/local-memory backing actually committed
    /// after the run (the lazily-materialized footprint).
    committed_bytes: u64,
}

impl Point {
    fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.seconds * QUERIES as f64)
    }

    fn bytes_per_pe(&self) -> f64 {
        self.committed_bytes as f64 / self.num_pes as f64
    }
}

/// Median of the collected wall times (non-empty; even counts take the
/// mean of the two middle samples).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// The clustered database: `num_pes` records, keys sorted so all records
/// sharing a key occupy adjacent PEs (at most 1024 distinct keys, so the
/// cluster width grows with the array). Returns (keys, values, queries).
fn build_db(num_pes: usize) -> (Vec<Word>, Vec<Word>, Vec<i64>) {
    let w = Width::W16;
    let cluster = (num_pes / 1024).max(1);
    let num_keys = num_pes.div_ceil(cluster);
    let keys: Vec<Word> = (0..num_pes).map(|i| Word::from_i64((i / cluster) as i64, w)).collect();
    let values: Vec<Word> = (0..num_pes).map(|i| Word::from_i64((i % 1000) as i64, w)).collect();
    // a fixed LCG spreads the query keys across the clusters
    let queries: Vec<i64> = (0..QUERIES).map(|q| ((q * 389 + 57) % num_keys) as i64).collect();
    (keys, values, queries)
}

/// The query program: keys preloaded in `lmem[0]`, values in `lmem[1]`,
/// query keys in scalar memory slots `0..QUERIES`. Each query is one
/// associative compare followed by count, resolve, first-value get, and
/// three masked reductions over the responder set.
fn build_program() -> String {
    let mut src = String::from(
        "        plw    p2, 0(p0)      ; keys
        plw    p3, 1(p0)      ; values
        pidx   p1
",
    );
    for q in 0..QUERIES {
        let _ = write!(
            src,
            "        lw     s1, {q}(s0)
        pceqs  pf1, p2, s1
        rcount s2, pf1
        pfirst pf2, pf1
        rget   s3, p3, pf2
        rsum   s4, p3 ?pf1
        rmax   s5, p3 ?pf1
        rmin   s6, p3 ?pf1
"
        );
    }
    src.push_str("        halt\n");
    src
}

struct Measured {
    stats: Stats,
    seconds_per_run: f64,
    committed_bytes: u64,
    segments: usize,
    /// Final scalar registers of the last query, for the cross-config
    /// identity check.
    finals: [Word; 5],
}

/// One timed run of the query batch at one (size, segment-count)
/// configuration. Construction and preload happen outside the timer; the
/// timed region is `Machine::run` alone.
fn run_once(
    cfg: MachineConfig,
    program: &asc_asm::Program,
    keys: &[Word],
    values: &[Word],
    queries: &[i64],
) -> Measured {
    let w = cfg.width;
    let mut m = Machine::with_program(cfg, program).expect("construct");
    m.array_mut().scatter_column(0, keys).expect("scatter keys");
    m.array_mut().scatter_column(1, values).expect("scatter values");
    for (slot, &q) in queries.iter().enumerate() {
        m.smem_mut().write(slot as u32, Word::from_i64(q, w)).expect("preload query");
    }
    let t = Instant::now();
    m.run(100_000_000).expect("run");
    let seconds_per_run = t.elapsed().as_secs_f64();
    black_box(m.sreg(0, 4));
    Measured {
        stats: m.stats().clone(),
        seconds_per_run,
        committed_bytes: m.array().committed_bytes() as u64,
        segments: cfg.segment_geometry().count(),
        finals: [m.sreg(0, 2), m.sreg(0, 3), m.sreg(0, 4), m.sreg(0, 5), m.sreg(0, 6)],
    }
}

/// Measure one sweep point: automatic segmentation and the forced
/// monolithic build, asserting the two are architecturally identical.
/// The two configurations alternate within the repeat loop (segmented
/// first on even repeats, monolithic first on odd) so clock drift and
/// cache warm-up land on both sides equally.
fn point(num_pes: usize, runs: usize) -> Point {
    let (keys, values, queries) = build_db(num_pes);
    let program = asc_asm::assemble(&build_program()).expect("assemble query program");
    let base = MachineConfig::new(num_pes).single_threaded();
    let (mut auto_s, mut mono_s) = (Vec::with_capacity(runs), Vec::with_capacity(runs));
    let mut pair = None;
    for r in 0..runs {
        let auto_first = r % 2 == 0;
        let first = run_once(
            base.with_segments(if auto_first { 0 } else { 1 }),
            &program,
            &keys,
            &values,
            &queries,
        );
        let second = run_once(
            base.with_segments(if auto_first { 1 } else { 0 }),
            &program,
            &keys,
            &values,
            &queries,
        );
        let (auto, mono) = if auto_first { (first, second) } else { (second, first) };
        auto_s.push(auto.seconds_per_run);
        mono_s.push(mono.seconds_per_run);
        assert_eq!(auto.stats, mono.stats, "segmented run diverged at {num_pes} PEs");
        assert_eq!(auto.finals, mono.finals, "segmented results diverged at {num_pes} PEs");
        pair = Some((auto, mono));
    }
    let (auto, _) = pair.expect("at least one run");
    Point {
        num_pes,
        segments: auto.segments,
        instructions: auto.stats.issued,
        cycles: auto.stats.cycles,
        seconds: median(auto_s) / QUERIES as f64,
        seconds_1seg: median(mono_s) / QUERIES as f64,
        committed_bytes: auto.committed_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("pe_scaling: bench");
        return;
    }
    let smoke = args.iter().any(|a| a == "--test");
    // undocumented: `--sizes 65536,1048576` runs a subset without writing
    // the report (tuning aid)
    let subset: Option<Vec<usize>> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|t| t.parse().expect("--sizes")).collect());
    let sizes: Vec<usize> = match &subset {
        Some(s) => s.clone(),
        None if smoke => vec![16, 8192],
        None => (4..=20).map(|e| 1usize << e).collect(),
    };

    let mut points = Vec::new();
    println!(
        "{:>8} {:>4} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "num_pes", "seg", "instr/run", "query (us)", "1seg (us)", "instr/sec", "bytes/pe"
    );
    for &p in &sizes {
        // more repeats at small sizes where a single run is microseconds;
        // never fewer than 3, so the median has something to work with
        let runs = ((1 << 23) / p.max(1)).clamp(3, 256);
        let pt = point(p, runs);
        println!(
            "{:>8} {:>4} {:>10} {:>12.2} {:>12.2} {:>14.0} {:>10.1}",
            pt.num_pes,
            pt.segments,
            pt.instructions,
            pt.seconds * 1e6,
            pt.seconds_1seg * 1e6,
            pt.instr_per_sec(),
            pt.bytes_per_pe()
        );
        points.push(pt);
    }

    if smoke || subset.is_some() {
        println!("pe_scaling: ok (smoke, report not written)");
        return;
    }

    // versioned, machine-readable report at the repository root
    let mut json = String::from("{\n  \"schema\": \"mtasc.pe_scaling.v1\",\n");
    json.push_str("  \"kernel\": \"clustered_query\",\n  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"num_pes\": {}, \"instructions\": {}, \"cycles\": {}, \
             \"wall_seconds\": {:.9}, \"instr_per_sec\": {:.1}, \
             \"segments\": {}, \"queries\": {}, \"wall_seconds_1seg\": {:.9}, \
             \"committed_bytes\": {}, \"bytes_per_pe\": {:.2}}}{}\n",
            pt.num_pes,
            pt.instructions,
            pt.cycles,
            pt.seconds,
            pt.instr_per_sec(),
            pt.segments,
            QUERIES,
            pt.seconds_1seg,
            pt.committed_bytes,
            pt.bytes_per_pe(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pe_scaling.json");
    std::fs::write(&out, json).expect("write BENCH_pe_scaling.json");
    println!("wrote {}", out.display());
}
