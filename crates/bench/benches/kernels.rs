//! Criterion benchmarks of the associative kernel suite (experiment E12's
//! workloads): end-to-end assemble + distribute + simulate.
//!
//! Besides the criterion micro-benches, this target maintains the
//! committed wall-time baseline `BENCH_kernels.json` (schema
//! `mtasc.kernels.v1`): five representative kernels at p = 4096 PEs,
//! which is exactly the default `parallel_threshold`, so the baseline
//! exercises the tiled + rayon execution path.
//!
//! - `cargo bench --bench kernels -- --save-baseline` re-measures and
//!   rewrites `BENCH_kernels.json` at the repository root.
//! - `cargo bench --bench kernels -- --compare-baseline` re-measures and
//!   fails (non-zero exit) if any kernel regressed by more than
//!   `MTASC_BENCH_TOLERANCE` percent (default 25) against the committed
//!   file. CI runs this as a smoke gate; `MTASC_BENCH_RUNS` trims the
//!   median-of-N repeat count for quick runs.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use asc_core::{MachineConfig, Stats};
use asc_kernels::{hull, image, iterate, mst, search, select, sort, string_match, tracker};

fn bench_search(c: &mut Criterion) {
    let records: Vec<(i64, i64)> = (0..256).map(|i| ((i * 7) % 32, i)).collect();
    c.bench_function("kernel_search_256", |b| {
        b.iter(|| black_box(search::run(MachineConfig::new(256), &records, 3).unwrap().matches))
    });
}

fn bench_select(c: &mut Criterion) {
    let values: Vec<i64> = (0..256).map(|i| ((i * 37) % 199) - 99).collect();
    c.bench_function("kernel_select_256", |b| {
        b.iter(|| black_box(select::run(MachineConfig::new(256), &values).unwrap().max))
    });
}

fn bench_iterate(c: &mut Criterion) {
    let recs: Vec<(i64, i64)> = (0..64).map(|i| (i % 2, i)).collect();
    c.bench_function("kernel_iterate_32", |b| {
        b.iter(|| black_box(iterate::run(MachineConfig::new(64), &recs, 1).unwrap().fold))
    });
}

fn bench_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_mst");
    for n in [16usize, 48] {
        let graph = mst::random_graph(n, 100, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mst::run(MachineConfig::new(64), &graph).unwrap().total_weight))
        });
    }
    g.finish();
}

fn bench_string_match(c: &mut Criterion) {
    let text: Vec<u8> = (0..256).map(|i| b"abcab"[i % 5]).collect();
    c.bench_function("kernel_string_match_256", |b| {
        b.iter(|| {
            black_box(string_match::run(MachineConfig::new(256), &text, b"abc").unwrap().count)
        })
    });
}

fn bench_image(c: &mut Criterion) {
    let pixels: Vec<i64> = (0..1024).map(|i| (i * 13) % 31).collect();
    c.bench_function("kernel_image_1024px", |b| {
        b.iter(|| black_box(image::run(MachineConfig::new(256), &pixels, 15).unwrap().sum))
    });
}

fn bench_hull(c: &mut Criterion) {
    let pts: Vec<(i64, i64)> =
        (0..48).map(|i| (((i * 17) % 91) as i64 - 45, ((i * 29) % 83) as i64 - 41)).collect();
    c.bench_function("kernel_hull_48", |b| {
        b.iter(|| black_box(hull::run(MachineConfig::new(64), &pts).unwrap().count))
    });
}

fn bench_tracker(c: &mut Criterion) {
    let reports: Vec<(i64, i64)> =
        (0..40).map(|i| ((i * 13) % 101 - 50, (i * 7) % 99 - 49)).collect();
    c.bench_function("kernel_tracker_40", |b| {
        b.iter(|| black_box(tracker::run(MachineConfig::new(64), &reports).unwrap().dropped))
    });
}

criterion_group!(
    benches,
    bench_search,
    bench_select,
    bench_iterate,
    bench_mst,
    bench_string_match,
    bench_image,
    bench_hull,
    bench_tracker
);

// ------------------------------------------------------------- baseline

/// PE count of every baseline kernel: the paper's "large array" point and
/// the default `parallel_threshold`, so the tiled rayon path is on.
const BASELINE_PES: usize = 4096;

/// Schema tag written into (and expected from) `BENCH_kernels.json`.
const BASELINE_SCHEMA: &str = "mtasc.kernels.v1";

/// A named baseline workload: one end-to-end kernel run at p = 4096.
type Workload = (&'static str, Box<dyn Fn() -> Stats>);

/// The committed baseline report at the repository root.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
}

/// Repeats per kernel (`MTASC_BENCH_RUNS`, default 5); the reported wall
/// time is the median of the repeats, so one scheduler hiccup cannot
/// shift a baseline or trip the regression gate.
fn baseline_runs() -> usize {
    std::env::var("MTASC_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(5).max(1)
}

/// Median of the collected wall times (non-empty; even counts take the
/// mean of the two middle samples).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Allowed slowdown in percent before `--compare-baseline` fails
/// (`MTASC_BENCH_TOLERANCE`, default 25).
fn baseline_tolerance() -> f64 {
    std::env::var("MTASC_BENCH_TOLERANCE").ok().and_then(|v| v.parse().ok()).unwrap_or(25.0)
}

/// The five baseline workloads, sized so every kernel spends its time in
/// the PE array (sort and mst are bounded by their O(n) scalar loops, so
/// their inputs are smaller than the full array).
fn baseline_suite() -> Vec<Workload> {
    let cfg = MachineConfig::new(BASELINE_PES);
    let values: Vec<i64> = (0..512).map(|i| (i * 37 + 11) % 1000 - 500).collect();
    let records: Vec<(i64, i64)> = (0..BASELINE_PES as i64).map(|i| ((i * 7) % 1024, i)).collect();
    let pixels: Vec<i64> = (0..BASELINE_PES as i64 * 8).map(|i| (i * 13) % 256).collect();
    let graph = mst::random_graph(192, 100, 7);
    let text: Vec<u8> = (0..BASELINE_PES).map(|i| b"abcab"[i % 5]).collect();
    vec![
        ("sort", Box::new(move || sort::run(cfg, &values).unwrap().stats)),
        ("search", Box::new(move || search::run(cfg, &records, 3).unwrap().stats)),
        ("image", Box::new(move || image::run(cfg, &pixels, 128).unwrap().stats)),
        ("mst", Box::new(move || mst::run(cfg, &graph).unwrap().stats)),
        ("string_match", Box::new(move || string_match::run(cfg, &text, b"abcab").unwrap().stats)),
    ]
}

/// One measured baseline point.
struct Measured {
    name: &'static str,
    instructions: u64,
    cycles: u64,
    /// Median wall time over the repeats.
    seconds: f64,
}

/// Run the whole suite, median-of-`runs` wall time per kernel.
fn measure_suite(runs: usize) -> Vec<Measured> {
    baseline_suite()
        .into_iter()
        .map(|(name, f)| {
            let mut samples = Vec::with_capacity(runs);
            let mut stats = Stats::default();
            for _ in 0..runs {
                let t = Instant::now();
                stats = black_box(f());
                samples.push(t.elapsed().as_secs_f64());
            }
            let med = median(samples);
            println!(
                "{name:<14} {:>10} instr {:>10} cycles {:>10.3} ms",
                stats.issued,
                stats.cycles,
                med * 1e3
            );
            Measured { name, instructions: stats.issued, cycles: stats.cycles, seconds: med }
        })
        .collect()
}

/// Rewrite `BENCH_kernels.json` from a fresh measurement.
fn save_baseline() {
    let points = measure_suite(baseline_runs());
    let mut json = format!("{{\n  \"schema\": \"{BASELINE_SCHEMA}\",\n");
    json.push_str(&format!("  \"num_pes\": {BASELINE_PES},\n  \"kernels\": [\n"));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"cycles\": {}, \
             \"wall_seconds\": {:.9}, \"instr_per_sec\": {:.1}}}{}\n",
            p.name,
            p.instructions,
            p.cycles,
            p.seconds,
            p.instructions as f64 / p.seconds,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = baseline_path();
    std::fs::write(&out, json).expect("write BENCH_kernels.json");
    println!("wrote {}", out.display());
}

/// Pull `(name, wall_seconds)` pairs out of the committed baseline. The
/// file is written one kernel per line by `save_baseline`, so a line
/// scanner is enough — no JSON dependency needed.
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    assert!(json.contains(BASELINE_SCHEMA), "BENCH_kernels.json has an unexpected schema");
    json.lines()
        .filter_map(|line| {
            let name = line.split("\"name\": \"").nth(1)?.split('"').next()?.to_string();
            let secs = line.split("\"wall_seconds\": ").nth(1)?;
            let end = secs
                .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
                .unwrap_or(secs.len());
            Some((name, secs[..end].parse().ok()?))
        })
        .collect()
}

/// Re-measure and fail loudly on any per-kernel slowdown beyond the
/// tolerance. Speedups are reported but never fail.
fn compare_baseline() {
    let path = baseline_path();
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run --save-baseline first)", path.display()));
    let baseline = parse_baseline(&json);
    assert!(!baseline.is_empty(), "no kernels parsed from {}", path.display());

    let tolerance = baseline_tolerance();
    let points = measure_suite(baseline_runs());
    let mut failures = Vec::new();
    for p in &points {
        let Some((_, old)) = baseline.iter().find(|(n, _)| n == p.name) else {
            println!("{:<14} not in baseline (new kernel?), skipping", p.name);
            continue;
        };
        let ratio = p.seconds / old;
        let verdict = if ratio > 1.0 + tolerance / 100.0 { "REGRESSED" } else { "ok" };
        println!(
            "{:<14} baseline {:>9.3} ms, now {:>9.3} ms ({:+.1}%) {verdict}",
            p.name,
            old * 1e3,
            p.seconds * 1e3,
            (ratio - 1.0) * 100.0
        );
        if verdict == "REGRESSED" {
            failures.push(p.name);
        }
    }
    if !failures.is_empty() {
        eprintln!("kernel bench regression (>{tolerance}% slower): {failures:?}");
        std::process::exit(1);
    }
    println!("kernel baseline comparison passed (tolerance {tolerance}%)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--save-baseline") {
        save_baseline();
    } else if args.iter().any(|a| a == "--compare-baseline") {
        compare_baseline();
    } else {
        benches();
    }
}
