//! Criterion benchmarks of the associative kernel suite (experiment E12's
//! workloads): end-to-end assemble + distribute + simulate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asc_core::MachineConfig;
use asc_kernels::{hull, image, iterate, mst, search, select, string_match, tracker};

fn bench_search(c: &mut Criterion) {
    let records: Vec<(i64, i64)> = (0..256).map(|i| ((i * 7) % 32, i)).collect();
    c.bench_function("kernel_search_256", |b| {
        b.iter(|| black_box(search::run(MachineConfig::new(256), &records, 3).unwrap().matches))
    });
}

fn bench_select(c: &mut Criterion) {
    let values: Vec<i64> = (0..256).map(|i| ((i * 37) % 199) - 99).collect();
    c.bench_function("kernel_select_256", |b| {
        b.iter(|| black_box(select::run(MachineConfig::new(256), &values).unwrap().max))
    });
}

fn bench_iterate(c: &mut Criterion) {
    let recs: Vec<(i64, i64)> = (0..64).map(|i| (i % 2, i)).collect();
    c.bench_function("kernel_iterate_32", |b| {
        b.iter(|| black_box(iterate::run(MachineConfig::new(64), &recs, 1).unwrap().fold))
    });
}

fn bench_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_mst");
    for n in [16usize, 48] {
        let graph = mst::random_graph(n, 100, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mst::run(MachineConfig::new(64), &graph).unwrap().total_weight))
        });
    }
    g.finish();
}

fn bench_string_match(c: &mut Criterion) {
    let text: Vec<u8> = (0..256).map(|i| b"abcab"[i % 5]).collect();
    c.bench_function("kernel_string_match_256", |b| {
        b.iter(|| {
            black_box(string_match::run(MachineConfig::new(256), &text, b"abc").unwrap().count)
        })
    });
}

fn bench_image(c: &mut Criterion) {
    let pixels: Vec<i64> = (0..1024).map(|i| (i * 13) % 31).collect();
    c.bench_function("kernel_image_1024px", |b| {
        b.iter(|| black_box(image::run(MachineConfig::new(256), &pixels, 15).unwrap().sum))
    });
}

fn bench_hull(c: &mut Criterion) {
    let pts: Vec<(i64, i64)> =
        (0..48).map(|i| (((i * 17) % 91) as i64 - 45, ((i * 29) % 83) as i64 - 41)).collect();
    c.bench_function("kernel_hull_48", |b| {
        b.iter(|| black_box(hull::run(MachineConfig::new(64), &pts).unwrap().count))
    });
}

fn bench_tracker(c: &mut Criterion) {
    let reports: Vec<(i64, i64)> =
        (0..40).map(|i| ((i * 13) % 101 - 50, (i * 7) % 99 - 49)).collect();
    c.bench_function("kernel_tracker_40", |b| {
        b.iter(|| black_box(tracker::run(MachineConfig::new(64), &reports).unwrap().dropped))
    });
}

criterion_group!(
    benches,
    bench_search,
    bench_select,
    bench_iterate,
    bench_mst,
    bench_string_match,
    bench_image,
    bench_hull,
    bench_tracker
);
criterion_main!(benches);
