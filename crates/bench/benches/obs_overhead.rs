//! Trace-emission overhead benchmark: the associative selection sort
//! kernel run bare versus with a ring-buffer trace sink attached.
//!
//! The observability layer's contract is "near-zero cost when no sink is
//! attached" — every emit site is gated on `sink.is_some()` so events are
//! never even constructed on the bare path. This benchmark makes the
//! contract measurable: `obs_overhead/no_sink` is the baseline and
//! `obs_overhead/ring_sink` the fully-traced run; the acceptance target
//! is the no-sink path staying within 3% of the seed simulator (i.e. the
//! per-iteration times printed for `no_sink` should be indistinguishable
//! from the pre-observability simulator, and attaching a ring sink should
//! cost only the event construction itself).
//!
//! Beyond timing, the binary *asserts* the stronger form of the contract
//! before benchmarking: with no sink attached, the steady-state issue
//! path performs **zero heap allocations**. A counting global allocator
//! watches `alloc`/`realloc`/`alloc_zeroed` while the sort kernel is
//! stepped to completion; any allocation fails the run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, BenchmarkId, Criterion};

use asc_asm::{assemble, Program};
use asc_core::obs::{ProgressSampler, RingBufferSink, SinkHandle};
use asc_core::{Machine, MachineConfig};
use asc_isa::Word;

/// Global allocator that counts every allocation so the no-sink issue
/// path can be checked for allocation-freedom, not just speed.
struct CountingAlloc;

/// Number of `alloc`/`realloc`/`alloc_zeroed` calls since program start.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Problem size: values to sort, one per PE.
const N: usize = 64;

/// Ring capacity comfortably above the event count of one sorted run.
const RING_CAPACITY: usize = 1 << 16;

/// The same associative selection sort as `asc_kernels::sort`: repeatedly
/// RMIN the remaining set, store the minimum, retire one responder.
fn sort_source(n: usize) -> String {
    format!(
        "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6
        plw    p2, 0(p0) ?pf1
        li     s3, 0
        li     s4, {n}
step:   ceq    f1, s3, s4
        bt     f1, done
        rmin   s1, p2 ?pf1
        sw     s1, 32(s3)
        pfclr  pf2
        pceqs  pf2, p2, s1 ?pf1
        pfirst pf3, pf2
        pfandn pf1, pf1, pf3
        addi   s3, s3, 1
        j      step
done:   halt
        ",
        last = n as i64 - 1,
    )
}

/// What observability is attached to a benchmarked run.
#[derive(Clone, Copy)]
enum Mode {
    /// Nothing attached: the baseline issue path.
    Bare,
    /// Ring-buffer trace sink (event construction + ring push).
    RingSink,
    /// Cycle-attribution profiler (pre-sized counter rows, no events).
    Profiler,
    /// Progress sampler snapshotting every cycle into its bounded ring
    /// (the `mtasc run --progress` machinery, minus the I/O sink).
    Progress,
}

/// One full simulated run under the given observability mode.
fn run_sort(program: &Program, values: &[Word], mode: Mode) -> u64 {
    let mut m = Machine::with_program(MachineConfig::new(N), program).unwrap();
    match mode {
        Mode::Bare => {}
        Mode::RingSink => {
            let ring = Rc::new(RefCell::new(RingBufferSink::new(RING_CAPACITY)));
            m.attach_sink(SinkHandle::shared(ring));
        }
        Mode::Profiler => m.attach_profiler(),
        Mode::Progress => m.attach_progress(ProgressSampler::new(1, RING_CAPACITY)),
    }
    m.array_mut().scatter_column(0, values).unwrap();
    m.run(1_000_000).unwrap().cycles
}

fn bench_obs_overhead(c: &mut Criterion) {
    let program = assemble(&sort_source(N)).expect("sort kernel assembles");
    let cfg = MachineConfig::new(N);
    let values: Vec<Word> =
        (0..N as i64).map(|i| Word::from_i64((i * 37) % 101, cfg.width)).collect();

    let mut g = c.benchmark_group("obs_overhead");
    for (label, mode) in [
        ("no_sink", Mode::Bare),
        ("ring_sink", Mode::RingSink),
        ("profiler", Mode::Profiler),
        ("progress", Mode::Progress),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| black_box(run_sort(&program, &values, mode)))
        });
    }
    g.finish();
}

/// Assert the detached paths never touch the heap: build and seed the
/// machine (allocating freely), then snapshot the allocation counter and
/// step to completion. `Machine::run` is avoided because it clones
/// `Stats` (which owns vectors) on return; `step` is exactly the
/// per-cycle path the benchmark times. Checked twice:
///
/// 1. nothing attached — the profiler-off, sink-off baseline;
/// 2. profiler attached — its rows are pre-sized at attach time, so the
///    steady-state recording path must also be allocation-free;
/// 3. progress sampler attached at cadence 1 (a sample EVERY cycle, the
///    worst case) — its ring is pre-sized and samples are `Copy`, so
///    sampling must never touch the heap either. The I/O sink the CLI
///    attaches is deliberately absent: the contract covers the issue
///    path, not heartbeat serialization.
fn assert_detached_and_profiled_steps_are_allocation_free() {
    let program = assemble(&sort_source(N)).expect("sort kernel assembles");
    let cfg = MachineConfig::new(N);
    let values: Vec<Word> =
        (0..N as i64).map(|i| Word::from_i64((i * 37) % 101, cfg.width)).collect();
    for (label, mode) in
        [("no-sink", Mode::Bare), ("profiler-on", Mode::Profiler), ("progress-on", Mode::Progress)]
    {
        let mut m = Machine::with_program(cfg, &program).unwrap();
        match mode {
            Mode::Bare | Mode::RingSink => {}
            Mode::Profiler => m.attach_profiler(),
            Mode::Progress => m.attach_progress(ProgressSampler::new(1, RING_CAPACITY)),
        }
        m.array_mut().scatter_column(0, &values).unwrap();

        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let mut steps: u64 = 0;
        while !m.finished() {
            m.step().unwrap();
            steps += 1;
            assert!(steps <= 1_000_000, "sort kernel failed to halt");
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{label} issue path allocated {} time(s) over {steps} steps",
            after - before
        );
        println!("{label} allocation check: 0 allocations over {steps} steps");
    }
}

criterion_group!(benches, bench_obs_overhead);

fn main() {
    // Under `--list` only bench names may be printed; the assertion runs
    // in every other mode (including `--test` smoke runs in CI).
    if !std::env::args().any(|a| a == "--list") {
        assert_detached_and_profiled_steps_are_allocation_free();
    }
    benches();
}
