//! Trace-emission overhead benchmark: the associative selection sort
//! kernel run bare versus with a ring-buffer trace sink attached.
//!
//! The observability layer's contract is "near-zero cost when no sink is
//! attached" — every emit site is gated on `sink.is_some()` so events are
//! never even constructed on the bare path. This benchmark makes the
//! contract measurable: `obs_overhead/no_sink` is the baseline and
//! `obs_overhead/ring_sink` the fully-traced run; the acceptance target
//! is the no-sink path staying within 3% of the seed simulator (i.e. the
//! per-iteration times printed for `no_sink` should be indistinguishable
//! from the pre-observability simulator, and attaching a ring sink should
//! cost only the event construction itself).

use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asc_asm::{assemble, Program};
use asc_core::obs::{RingBufferSink, SinkHandle};
use asc_core::{Machine, MachineConfig};
use asc_isa::Word;

/// Problem size: values to sort, one per PE.
const N: usize = 64;

/// Ring capacity comfortably above the event count of one sorted run.
const RING_CAPACITY: usize = 1 << 16;

/// The same associative selection sort as `asc_kernels::sort`: repeatedly
/// RMIN the remaining set, store the minimum, retire one responder.
fn sort_source(n: usize) -> String {
    format!(
        "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6
        plw    p2, 0(p0) ?pf1
        li     s3, 0
        li     s4, {n}
step:   ceq    f1, s3, s4
        bt     f1, done
        rmin   s1, p2 ?pf1
        sw     s1, 32(s3)
        pfclr  pf2
        pceqs  pf2, p2, s1 ?pf1
        pfirst pf3, pf2
        pfandn pf1, pf1, pf3
        addi   s3, s3, 1
        j      step
done:   halt
        ",
        last = n as i64 - 1,
    )
}

/// One full simulated run; `traced` attaches a ring sink first.
fn run_sort(program: &Program, values: &[Word], traced: bool) -> u64 {
    let mut m = Machine::with_program(MachineConfig::new(N), program).unwrap();
    if traced {
        let ring = Rc::new(RefCell::new(RingBufferSink::new(RING_CAPACITY)));
        m.attach_sink(SinkHandle::shared(ring));
    }
    m.array_mut().scatter_column(0, values).unwrap();
    m.run(1_000_000).unwrap().cycles
}

fn bench_obs_overhead(c: &mut Criterion) {
    let program = assemble(&sort_source(N)).expect("sort kernel assembles");
    let cfg = MachineConfig::new(N);
    let values: Vec<Word> =
        (0..N as i64).map(|i| Word::from_i64((i * 37) % 101, cfg.width)).collect();

    let mut g = c.benchmark_group("obs_overhead");
    for (label, traced) in [("no_sink", false), ("ring_sink", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &traced, |b, &traced| {
            b.iter(|| black_box(run_sort(&program, &values, traced)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
