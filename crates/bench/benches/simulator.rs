//! Criterion benchmarks of the timing simulator itself: issue throughput
//! across PE counts, thread counts, and scheduler policies — the harness
//! behind experiments E5–E7/E10 (their *cycle* numbers are deterministic;
//! these benches track the simulator's host-side speed so the parameter
//! sweeps stay tractable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asc_asm::assemble;
use asc_core::{Machine, MachineConfig};
use asc_kernels::micro;

fn micro_cfg(p: usize) -> MachineConfig {
    let mut cfg = MachineConfig::new(p);
    cfg.lmem_words = 8;
    cfg
}

fn run(cfg: MachineConfig, src: &str) -> u64 {
    let program = assemble(src).unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.run(u64::MAX).unwrap().cycles
}

fn bench_reduction_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_chain_st");
    for p in [16usize, 256, 4096] {
        let src = micro::reduction_chain(100);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(run(micro_cfg(p).single_threaded(), &src)))
        });
    }
    g.finish();
}

fn bench_mt_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("mt_fleet");
    for threads in [2u32, 8, 15] {
        let src = micro::unrolled_fleet(threads, 60, 8);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(run(micro_cfg(256), &src)))
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let src = micro::unrolled_fleet(8, 40, 8);
    let mut g = c.benchmark_group("sched_policy");
    g.bench_function("fine_grain", |b| b.iter(|| black_box(run(micro_cfg(256), &src))));
    g.bench_function("coarse_grain", |b| {
        b.iter(|| black_box(run(micro_cfg(256).coarse_grain(4), &src)))
    });
    g.finish();
}

fn bench_mixed_workload(c: &mut Criterion) {
    let src = micro::mixed_workload(100);
    let mut g = c.benchmark_group("mixed_workload");
    for p in [16usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(run(micro_cfg(p).single_threaded(), &src)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reduction_chain,
    bench_mt_fleet,
    bench_policies,
    bench_mixed_workload
);
criterion_main!(benches);
