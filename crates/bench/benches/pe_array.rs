//! Criterion benchmarks of the PE-array datapath hot paths: the sort
//! kernel at 4096 PEs (masked ALU/compare + reductions every step) and a
//! response-count microbench at 2¹⁴ PEs (the associative some/none test
//! issued back to back). These are the workloads the structure-of-arrays
//! PE array is optimised for; run them before and after datapath changes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asc_core::{Machine, MachineConfig};
use asc_kernels::sort;

/// Sort 256 values on a 4096-PE array: every associative step runs its
/// masked compares and reductions across all 4096 lanes.
fn bench_sort_4096(c: &mut Criterion) {
    let values: Vec<i64> = (0..256).map(|i| ((i * 37) % 199) - 99).collect();
    c.bench_function("pe_array/sort_4096", |b| {
        b.iter(|| {
            black_box(
                sort::run(MachineConfig::new(4096).single_threaded(), &values).unwrap().sorted,
            )
        })
    });
}

/// 2048 back-to-back `rcount` instructions over a 2¹⁴-PE array with half
/// the PEs responding — the response counter's instruction-issue hot path.
fn bench_rcount_16k(c: &mut Criterion) {
    let src = format!(
        "
        li     s5, 256
        li     s6, 8192
        pidx   p1
        pcles  pf1, p1, s6
loop:   {rcounts}
        addi   s5, s5, -1
        cne    f1, s5, s0
        bt     f1, loop
        halt
        ",
        rcounts = "rcount s2, pf1\n".repeat(8),
    );
    let program = asc_asm::assemble(&src).expect("rcount microbench assembles");
    let cfg = MachineConfig::new(1 << 14).single_threaded();
    c.bench_function("pe_array/rcount_16384", |b| {
        b.iter(|| {
            let mut m = Machine::with_program(cfg, &program).unwrap();
            black_box(m.run(50_000_000).unwrap().cycles)
        })
    });
}

criterion_group!(benches, bench_sort_4096, bench_rcount_16k);
criterion_main!(benches);
