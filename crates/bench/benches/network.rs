//! Criterion benchmarks of the broadcast/reduction network's functional
//! models and the assembler — the substrates' hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asc_isa::{ReduceOp, Width, Word};
use asc_network::{MultipleResponseResolver, Network, NetworkConfig};
use asc_pe::ActiveMask;

fn bench_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_reduce");
    for p in [1024usize, 65536] {
        let net = Network::new(NetworkConfig::new(p, 4));
        let values: Vec<Word> = (0..p).map(|i| Word::new(i as u32 & 0xffff, Width::W16)).collect();
        let active = ActiveMask::all(p);
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Or] {
            g.bench_with_input(BenchmarkId::new(format!("{op}"), p), &p, |b, _| {
                b.iter(|| black_box(net.reduce(op, &values, &active, Width::W16)))
            });
        }
    }
    g.finish();
}

fn bench_resolver(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_mrr");
    for p in [1024usize, 65536] {
        let flags: Vec<bool> = (0..p).map(|i| i % 97 == 3).collect();
        let packed = ActiveMask::from_bools(&flags).words().to_vec();
        let active = ActiveMask::all(p);
        // the bitplane fast path the executor uses
        g.bench_with_input(BenchmarkId::new("bitplane", p), &p, |b, _| {
            b.iter(|| black_box(MultipleResponseResolver::first_responder(&packed, &active)))
        });
        // the one-hot parallel-prefix specification, for comparison
        let active_bools = vec![true; p];
        g.bench_with_input(BenchmarkId::new("prefix", p), &p, |b, _| {
            b.iter(|| black_box(MultipleResponseResolver::resolve(&flags, &active_bools)))
        });
    }
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // a 2k-instruction program in canonical syntax
    let mut rng = StdRng::seed_from_u64(3);
    let src: String = (0..2048)
        .map(|_| asc_asm::disassemble(&asc_isa::gen::random_instr(&mut rng)) + "\n")
        .collect();
    c.bench_function("assembler_throughput_2k", |b| {
        b.iter(|| black_box(asc_asm::assemble(&src).map(|p| p.len())))
    });
}

fn bench_encode_decode(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    let instrs: Vec<_> = (0..4096).map(|_| asc_isa::gen::random_instr(&mut rng)).collect();
    let words: Vec<u32> = instrs.iter().map(asc_isa::encode).collect();
    c.bench_function("isa_decode_4k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &w in &words {
                if asc_isa::decode(w).is_ok() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
}

fn bench_lang_compile(c: &mut Criterion) {
    // a representative ASCL program, compiled end to end
    let src = "
        par score;
        score = index() * 7 % 100;
        sca passing = 60;
        out(count(score >= passing));
        where (score < passing) {
            score = score + 15;
        } elsewhere {
            where (score > 90) { out(first(index())); }
        }
        out(count(score >= passing));
    "
    .to_string(); // single unit; compile includes lex/parse/codegen/assemble
    c.bench_function("ascl_compile", |b| {
        b.iter(|| black_box(asc_lang::compile_program(&src).map(|p| p.len())))
    });
}

criterion_group!(
    benches,
    bench_reductions,
    bench_resolver,
    bench_assembler,
    bench_encode_decode,
    bench_lang_compile
);
criterion_main!(benches);
