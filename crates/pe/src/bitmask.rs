//! Packed one-bit-per-PE planes: the representation of the flag file and
//! of the active mask in the structure-of-arrays PE array.
//!
//! A *plane* is a `[u64]` with PE `i`'s bit at `plane[i / 64] & (1 << (i %
//! 64))`. Every plane maintains the **tail invariant**: bits at lane
//! indices `>= lanes` are zero, so whole-word operations (population
//! count, any/all tests, word-parallel flag logic) need no special casing
//! of the last word.
//!
//! [`ActiveMask`] is the reusable mask buffer the instruction executor
//! fills once per masked instruction — replacing the per-instruction
//! `Vec<bool>` allocation of the old array-of-structures datapath. Dense
//! mask words (`u64::MAX`) drive branch-free 64-lane loops; sparse words
//! are walked with trailing-zeros iteration, so fully-masked-off regions
//! cost one word test per 64 PEs.

/// Lanes per plane word.
pub const BITS_PER_WORD: usize = 64;

/// Plane words summarized by one occupancy bit of an [`ActiveMask`]:
/// 64 words = 4096 lanes, one auto-sized segment tile group (see
/// [`crate::segments::AUTO_TILES_PER_SEG`]).
pub const OCC_GROUP_WORDS: usize = 64;

/// Number of `u64` words needed for a plane of `lanes` bits.
#[inline]
pub const fn words_for(lanes: usize) -> usize {
    lanes.div_ceil(BITS_PER_WORD)
}

/// Mask selecting the valid bits of the *last* word of a `lanes`-bit
/// plane (all ones when the plane ends on a word boundary).
#[inline]
pub const fn tail_mask(lanes: usize) -> u64 {
    if lanes.is_multiple_of(BITS_PER_WORD) {
        u64::MAX
    } else {
        (1u64 << (lanes % BITS_PER_WORD)) - 1
    }
}

/// Call `f(lane)` for every set bit of `word`, lowest first, with `base`
/// added to each bit index — the trailing-zeros scan used to skip
/// inactive PEs without testing them individually.
#[inline]
pub fn for_each_set(word: u64, base: usize, mut f: impl FnMut(usize)) {
    let mut m = word;
    while m != 0 {
        f(base + m.trailing_zeros() as usize);
        m &= m - 1;
    }
}

/// The set of PEs participating in a masked instruction, as a packed
/// bitset. One lives in the machine and is refilled in place for every
/// masked instruction; none of the fill or query operations allocate.
/// The mask also keeps a conservative *occupancy summary*: one bit per
/// [`OCC_GROUP_WORDS`]-word group, clear only when every word of the
/// group is known zero. The two-level reduction tree and the segmented
/// dispatch loops test a group bit instead of scanning 64 words, so
/// fully-inactive segments cost one bit test. The summary is exact after
/// the bulk fills ([`ActiveMask::set_all`], [`ActiveMask::clear_all`],
/// [`ActiveMask::copy_from_plane`] — the executor's paths) and degrades
/// conservatively (bit left set) when single lanes are cleared.
#[derive(Debug, Clone)]
pub struct ActiveMask {
    words: Vec<u64>,
    occ: Vec<u64>,
    lanes: usize,
    /// Conservative all-active cache: when `true`, `words` and `occ` are
    /// known to hold the all-active pattern already, so the next
    /// [`ActiveMask::set_all`] is a no-op instead of a full-plane sweep —
    /// unmasked instructions in a row pay one word test, not O(lanes/64)
    /// writes. `false` just means "unknown".
    all: bool,
}

// the occupancy summary is a cache, not state: masks compare by lanes
impl PartialEq for ActiveMask {
    fn eq(&self, other: &ActiveMask) -> bool {
        self.lanes == other.lanes && self.words == other.words
    }
}

impl Eq for ActiveMask {}

/// Occupancy words needed to summarize `nwords` plane words.
fn occ_words_for(nwords: usize) -> usize {
    words_for(nwords.div_ceil(OCC_GROUP_WORDS))
}

impl ActiveMask {
    /// An all-inactive mask over `lanes` PEs.
    pub fn new(lanes: usize) -> ActiveMask {
        let nwords = words_for(lanes);
        ActiveMask {
            words: vec![0; nwords],
            occ: vec![0; occ_words_for(nwords)],
            lanes,
            all: false,
        }
    }

    /// An all-active mask over `lanes` PEs.
    pub fn all(lanes: usize) -> ActiveMask {
        let mut m = ActiveMask::new(lanes);
        m.set_all();
        m
    }

    /// Build from a `bool` per lane (host/test convenience).
    pub fn from_bools(active: &[bool]) -> ActiveMask {
        let mut m = ActiveMask::new(active.len());
        for (i, &a) in active.iter().enumerate() {
            if a {
                m.words[i / BITS_PER_WORD] |= 1u64 << (i % BITS_PER_WORD);
            }
        }
        m.rebuild_occupancy();
        m
    }

    /// Number of lanes (PEs) the mask covers.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The packed words, one bit per lane (tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Make every lane active.
    pub fn set_all(&mut self) {
        if self.all {
            return;
        }
        self.words.fill(u64::MAX);
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.lanes);
        }
        self.occ.fill(u64::MAX);
        let groups = self.words.len().div_ceil(OCC_GROUP_WORDS);
        if let Some(last) = self.occ.last_mut() {
            *last &= tail_mask(groups.max(1));
        }
        self.all = true;
    }

    /// Make every lane inactive.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.occ.fill(0);
        self.all = false;
    }

    /// Refill from a flag plane of the same geometry (the `?pf` masked
    /// execution path: the mask *is* the flag bitplane, copied so the
    /// instruction may overwrite the flag it is masked by). The occupancy
    /// summary is folded in during the copy, so sparse masks become
    /// segment-skippable at no extra pass.
    pub fn copy_from_plane(&mut self, plane: &[u64]) {
        debug_assert_eq!(plane.len(), self.words.len());
        self.all = false;
        self.occ.fill(0);
        for (g, src) in plane.chunks(OCC_GROUP_WORDS).enumerate() {
            let dst = &mut self.words[g * OCC_GROUP_WORDS..g * OCC_GROUP_WORDS + src.len()];
            let mut any = 0u64;
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s;
                any |= s;
            }
            if any != 0 {
                self.occ[g / BITS_PER_WORD] |= 1u64 << (g % BITS_PER_WORD);
            }
        }
    }

    /// Recompute the occupancy summary exactly from the words.
    pub fn rebuild_occupancy(&mut self) {
        self.occ.fill(0);
        for (g, group) in self.words.chunks(OCC_GROUP_WORDS).enumerate() {
            if group.iter().any(|&w| w != 0) {
                self.occ[g / BITS_PER_WORD] |= 1u64 << (g % BITS_PER_WORD);
            }
        }
    }

    /// Set or clear one lane. Clearing leaves the occupancy summary
    /// conservative (the group bit stays set).
    pub fn set(&mut self, lane: usize, active: bool) {
        debug_assert!(lane < self.lanes);
        let (w, b) = (lane / BITS_PER_WORD, 1u64 << (lane % BITS_PER_WORD));
        if active {
            self.words[w] |= b;
            let g = w / OCC_GROUP_WORDS;
            self.occ[g / BITS_PER_WORD] |= 1u64 << (g % BITS_PER_WORD);
        } else {
            self.words[w] &= !b;
            self.all = false;
        }
    }

    /// Could any lane of plane words `range` be active? `false` is
    /// definitive (every word in the range is zero); `true` may be
    /// conservative. Resolution is [`OCC_GROUP_WORDS`] words, so ranges
    /// sharing a group with active words report `true`.
    #[inline]
    pub fn range_occupied(&self, range: core::ops::Range<usize>) -> bool {
        if range.is_empty() {
            return false;
        }
        let g0 = range.start / OCC_GROUP_WORDS;
        let g1 = (range.end - 1) / OCC_GROUP_WORDS;
        (g0..=g1).any(|g| self.occ[g / BITS_PER_WORD] >> (g % BITS_PER_WORD) & 1 == 1)
    }

    /// Is `lane` active?
    #[inline]
    pub fn is_active(&self, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        self.words[lane / BITS_PER_WORD] >> (lane % BITS_PER_WORD) & 1 == 1
    }

    /// Number of active lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is any lane active?
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// The mask word covering one 64-lane *tile* (tile `t` = lanes
    /// `64t..64t+64`) — the tile-scoped view used by fused-block
    /// execution, where a block's instructions are applied one tile at a
    /// time. Tail bits are zero by the plane invariant.
    #[inline]
    pub fn tile_word(&self, tile: usize) -> u64 {
        self.words[tile]
    }

    /// Iterate the active lane indices, lowest first.
    pub fn iter(&self) -> SetLanes<'_> {
        SetLanes { words: &self.words, next_word: 0, current: 0, base: 0 }
    }

    /// Expand to one `bool` per lane (host/test convenience).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.lanes).map(|i| self.is_active(i)).collect()
    }
}

/// Iterator over the set lanes of an [`ActiveMask`] (trailing-zeros scan).
pub struct SetLanes<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: usize,
}

impl Iterator for SetLanes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            if self.next_word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.next_word];
            self.base = self.next_word * BITS_PER_WORD;
            self.next_word += 1;
        }
        let lane = self.base + self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(3), 0b111);
    }

    #[test]
    fn all_respects_tail_invariant() {
        let m = ActiveMask::all(70);
        assert_eq!(m.count(), 70);
        assert_eq!(m.words()[1], 0b11_1111, "bits past lane 69 must be zero");
        assert!(m.any());
        assert!(!ActiveMask::new(70).any());
    }

    #[test]
    fn from_bools_round_trip() {
        let bools: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let m = ActiveMask::from_bools(&bools);
        assert_eq!(m.to_bools(), bools);
        assert_eq!(m.count(), bools.iter().filter(|&&b| b).count());
        let lanes: Vec<usize> = m.iter().collect();
        let expect: Vec<usize> = (0..130).filter(|i| i % 3 == 0).collect();
        assert_eq!(lanes, expect);
    }

    #[test]
    fn set_and_clear() {
        let mut m = ActiveMask::new(100);
        m.set(0, true);
        m.set(99, true);
        assert!(m.is_active(0) && m.is_active(99) && !m.is_active(50));
        m.set(0, false);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![99]);
        m.clear_all();
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn for_each_set_visits_in_order() {
        let mut seen = Vec::new();
        for_each_set(0b1001_0110, 64, |i| seen.push(i));
        assert_eq!(seen, vec![65, 66, 68, 71]);
        for_each_set(0, 0, |_| panic!("no bits set"));
    }

    #[test]
    fn copy_from_plane_matches() {
        let mut m = ActiveMask::new(128);
        m.copy_from_plane(&[u64::MAX, 0b1]);
        assert_eq!(m.count(), 65);
        assert!(m.is_active(64));
        assert!(!m.is_active(65));
    }

    #[test]
    fn occupancy_tracks_bulk_fills() {
        // 3 groups of 64 words (4096 lanes each)
        let lanes = 3 * OCC_GROUP_WORDS * BITS_PER_WORD;
        let mut m = ActiveMask::new(lanes);
        assert!(!m.range_occupied(0..m.words().len()));
        let mut plane = vec![0u64; m.words().len()];
        plane[OCC_GROUP_WORDS + 5] = 0b100; // one lane in group 1
        m.copy_from_plane(&plane);
        assert!(!m.range_occupied(0..OCC_GROUP_WORDS));
        assert!(m.range_occupied(OCC_GROUP_WORDS..2 * OCC_GROUP_WORDS));
        assert!(!m.range_occupied(2 * OCC_GROUP_WORDS..3 * OCC_GROUP_WORDS));
        assert!(m.range_occupied(0..m.words().len()));
        m.set_all();
        assert!(m.range_occupied(0..OCC_GROUP_WORDS));
        m.clear_all();
        assert!(!m.range_occupied(0..m.words().len()));
    }

    #[test]
    fn set_all_fast_path_stays_correct_after_mutation() {
        let lanes = 130;
        let mut m = ActiveMask::new(lanes);
        m.set_all();
        m.set_all(); // second call takes the cached fast path
        let full = m.words().to_vec();
        assert_eq!(m.count(), lanes);

        // a single cleared lane must invalidate the cache so the next
        // set_all restores every bit
        m.set(129, false);
        assert!(!m.is_active(129));
        m.set_all();
        assert_eq!(m.words(), &full[..]);
        assert_eq!(m.count(), lanes);

        // copy_from_plane invalidates too, even when the plane is dense
        let plane = full.clone();
        m.copy_from_plane(&plane);
        m.set(0, false);
        m.set_all();
        assert_eq!(m.count(), lanes);

        // clear_all invalidates
        m.clear_all();
        m.set_all();
        assert_eq!(m.count(), lanes);
    }

    #[test]
    fn occupancy_is_conservative_not_wrong() {
        let lanes = 2 * OCC_GROUP_WORDS * BITS_PER_WORD;
        let mut m = ActiveMask::new(lanes);
        m.set(7000, true);
        assert!(m.range_occupied(OCC_GROUP_WORDS..2 * OCC_GROUP_WORDS));
        m.set(7000, false);
        // conservative: the group bit may stay set after a clear...
        assert_eq!(m.count(), 0);
        // ...but a definitive "empty" answer must never be wrong
        m.rebuild_occupancy();
        assert!(!m.range_occupied(0..m.words().len()));
        // equality ignores the occupancy cache
        assert_eq!(ActiveMask::new(lanes), {
            let mut c = ActiveMask::new(lanes);
            c.set(3, true);
            c.set(3, false);
            c
        });
    }
}
