#![warn(missing_docs)]

//! # asc-pe — the processing element array
//!
//! Each PE of the Multithreaded ASC Processor (Section 6.2 of the paper)
//! consists of
//!
//! * a small **local memory** acting as a programmer/compiler-managed
//!   cache, shared between threads at the hardware level (1 KB in the
//!   prototype);
//! * a **general-purpose register file**, *split* between threads so a
//!   thread can only access its own registers;
//! * a **flag register file**, likewise split between threads;
//! * an **ALU** (one operation per cycle, latency one, fully forwarded);
//! * an optional **multiplier** (fast pipelined, or a slower sequential
//!   unit that only one thread can use at a time);
//! * an optional sequential **divider**.
//!
//! This crate implements the functional state and the structural occupancy
//! model of the sequential units; pipeline timing lives in `asc-core`.
//! Whole-array operations go through [`PeArray`], which stores state as
//! structure-of-arrays planes (see `array`), drives masked execution with
//! the packed [`ActiveMask`] bitset (see `bitmask`), and transparently uses
//! Rayon for large arrays (the scaling experiments run up to 2¹⁶ PEs).

pub mod array;
pub mod bitmask;
pub mod memory;
pub mod muldiv;
pub mod regfile;
pub mod segments;
pub mod simd;
pub mod tiles;

#[cfg(all(test, feature = "proptest"))]
mod proptests;

pub use array::{ArrayConfig, PeArray, PeFault, Src};
pub use bitmask::ActiveMask;
pub use memory::{LocalMemory, MemFault};
pub use muldiv::{DividerConfig, MultiplierKind, SequentialUnit};
pub use regfile::{FlagFile, RegFile};
pub use segments::SegmentGeometry;
pub use simd::{
    alu_vectorizes, select_alu_rr, select_alu_rs, select_cmp_rr, select_cmp_rs, simd_disabled,
    AluRrKernel, AluRsKernel, CmpRrKernel, CmpRsKernel, SimdLevel,
};
pub use tiles::{RawTiles, ThreadTiles, TileWindow, TILE_LANES};
