//! The PE array: whole-array functional operations used by the instruction
//! executors in `asc-core`.
//!
//! ## Structure-of-arrays layout
//!
//! The array stores architectural state as contiguous *planes* spanning all
//! PEs rather than as one struct per PE:
//!
//! * **GPRs** — one `Vec<Word>` with the plane for `(thread, reg)` at
//!   `(thread * gprs + reg) * num_pes ..`, so a masked ALU operation is a
//!   tight loop over three contiguous slices and a reduction reads its
//!   input as a single slice ([`PeArray::gpr_plane`]).
//! * **Flags** — packed `u64` bitplanes ([`crate::bitmask`]), one bit per
//!   PE, so flag logic runs word-parallel (64 PEs per operation) and
//!   responder tests are population counts.
//! * **Local memory** — one flat buffer in *column-major* order
//!   (`addr * num_pes + pe`), so host scatter/gather of a column is a
//!   `memcpy` and uniform-address accesses stream contiguously. The
//!   trade-off is that one PE's memory is strided; host bulk loads go
//!   through [`PeArray::lmem_load_slice`].
//!
//! GPR plane 0 of every thread is kept all-zero (writes to register 0 are
//! skipped), which makes the hardwired-zero register free on the read side.
//!
//! Every parallel operation takes the issuing *thread* (register files are
//! split per thread) and an [`ActiveMask`] derived from the instruction's
//! mask flag. Inactive PEs are completely unaffected — the defining
//! semantics of associative masked execution. Dense mask words take a
//! branch-free 64-lane loop; sparse words a trailing-zeros scan.
//!
//! For large arrays (the scaling experiments run up to 2¹⁸ PEs) the lane
//! loops run under Rayon via `par_chunks_mut` (64 lanes per chunk, so chunk
//! index = mask word index); below [`ArrayConfig::parallel_threshold`] —
//! or whenever the Rayon pool has a single worker, where a dispatch is
//! pure overhead — they run serially, and both paths produce identical
//! results. Stores stay serial: their writes scatter through local
//! memory, which defeats safe chunking.

use asc_isa::{AluOp, CmpOp, FlagOp, Mask, PFlag, PReg, Width, Word};
use rayon::prelude::*;

use crate::bitmask::{for_each_set, words_for, ActiveMask, BITS_PER_WORD};
use crate::memory::MemFault;
use crate::segments::SegmentGeometry;
use crate::simd::{self, chunk_mask, SimdLevel};

/// Geometry of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Number of PEs.
    pub num_pes: usize,
    /// Hardware thread contexts (register files are split this many ways).
    pub threads: usize,
    /// General-purpose registers per thread (16 in this ISA).
    pub gprs: usize,
    /// Flag registers per thread (8 in this ISA).
    pub flags: usize,
    /// Local memory words per PE.
    pub lmem_words: usize,
    /// Datapath width.
    pub width: Width,
    /// Use Rayon when `num_pes` is at least this large.
    pub parallel_threshold: usize,
    /// SIMD tier for the dense lane loops (see [`crate::simd`]); resolved
    /// once at construction and never re-probed.
    pub simd: SimdLevel,
    /// Core-affine slicing of the array (see [`crate::segments`]): the
    /// granularity of Rayon dispatch, of lazy plane commitment, and of
    /// the two-level reduction tree. Results are bit-identical at every
    /// segment count.
    pub segments: SegmentGeometry,
}

impl ArrayConfig {
    /// The FPGA prototype's array: 16 PEs, 16 threads, 1 KB local memory
    /// (512 16-bit words).
    pub fn prototype() -> ArrayConfig {
        ArrayConfig {
            num_pes: 16,
            threads: 16,
            gprs: asc_isa::NUM_GPRS,
            flags: asc_isa::NUM_FLAGS,
            lmem_words: 512,
            width: Width::W16,
            parallel_threshold: 4096,
            simd: SimdLevel::detect(),
            segments: SegmentGeometry::new(16, 0),
        }
    }
}

/// Second operand of a parallel ALU/compare operation: another parallel
/// register, a broadcast scalar, or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A parallel register (per-PE value).
    Reg(PReg),
    /// A broadcast scalar value (already resolved by the control unit).
    Scalar(Word),
    /// An immediate (sign-extended by the decoder).
    Imm(Word),
}

/// A memory fault attributed to a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeFault {
    /// Which PE faulted (lowest index if several).
    pub pe: usize,
    /// The fault.
    pub fault: MemFault,
}

impl std::fmt::Display for PeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE {}: {}", self.pe, self.fault)
    }
}

impl std::error::Error for PeFault {}

/// Run `f` for every active lane, lowest first. Dense words (all 64 lanes
/// active) take the branch-free range loop; sparse words the
/// trailing-zeros scan; zero words cost one test per 64 PEs.
#[inline]
fn for_each_lane(active: &ActiveMask, mut f: impl FnMut(usize)) {
    for (wi, &mw) in active.words().iter().enumerate() {
        if mw == 0 {
            continue;
        }
        let base = wi * BITS_PER_WORD;
        if mw == u64::MAX {
            for lane in base..base + BITS_PER_WORD {
                f(lane);
            }
        } else {
            for_each_set(mw, base, &mut f);
        }
    }
}

/// Lowest active lane, if any.
#[inline]
fn first_active(active: &ActiveMask) -> Option<usize> {
    active
        .words()
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(wi, &w)| wi * BITS_PER_WORD + w.trailing_zeros() as usize)
}

/// Like [`for_each_lane`] but stops at the first fault, attributing it to
/// the lane (the serial early-stop fault policy).
#[inline]
fn try_for_each_lane(
    active: &ActiveMask,
    mut f: impl FnMut(usize) -> Result<(), MemFault>,
) -> Result<(), PeFault> {
    for (wi, &mw) in active.words().iter().enumerate() {
        if mw == 0 {
            continue;
        }
        let base = wi * BITS_PER_WORD;
        let mut m = mw;
        while m != 0 {
            let lane = base + m.trailing_zeros() as usize;
            f(lane).map_err(|fault| PeFault { pe: lane, fault })?;
            m &= m - 1;
        }
    }
    Ok(())
}

/// Keep glibc's mmap threshold fixed so the multi-megabyte planes of a
/// large array stay mmap-backed. By default the threshold adapts upward
/// when a mmap'd block is freed, after which same-sized allocations come
/// from the sbrk heap — where `calloc` must memset the whole plane
/// instead of handing out untouched zero pages. Simulations that build a
/// machine per run (the kernel suite, the benches) hit that path on
/// every construction; pinning the threshold keeps plane allocation
/// proportional to the memory actually touched.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
fn pin_mmap_threshold() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        const M_MMAP_THRESHOLD: i32 = -3;
        unsafe extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        // SAFETY: mallopt is async-signal-unsafe but thread-safe; it only
        // tweaks allocator parameters.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, 1 << 20);
        }
    });
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
fn pin_mmap_threshold() {}

/// Allocate `n` zero words via the `vec![0u32; n]` zero-value
/// specialization, which maps to `alloc_zeroed` — the large register and
/// local-memory planes of a big array come from untouched zero pages
/// instead of an explicit clearing pass, making machine construction
/// cheap for short kernel runs that only ever touch a few planes.
fn zeroed_words(n: usize) -> Vec<Word> {
    let mut raw = std::mem::ManuallyDrop::new(vec![0u32; n]);
    let (ptr, len, cap) = (raw.as_mut_ptr(), raw.len(), raw.capacity());
    // SAFETY: `Word` is `#[repr(transparent)]` over `u32`, so the
    // allocation's layout, length, and capacity are identical, and the
    // all-zero bit pattern is a valid `Word` (`Word::ZERO`).
    unsafe { Vec::from_raw_parts(ptr as *mut Word, len, cap) }
}

/// Per-segment commitment tracking for the lazily materialized planes.
///
/// The planes themselves are zero-page-backed (`zeroed_words` +
/// [`pin_mmap_threshold`]), so a 2²⁰-PE machine constructs in
/// microseconds and physical pages appear only on first touch. This map
/// records which (plane, segment) slices have been written, making the
/// real footprint observable: [`PeArray::committed_bytes`] is the
/// bytes-actually-touched figure the scaling bench reports per PE.
/// All bitsets are preallocated at construction; marking a write is a
/// couple of word ORs, so the instruction path stays allocation-free.
#[derive(Debug, Clone)]
struct CommitMap {
    /// Segments per plane (the geometry's segment count).
    seg_count: usize,
    /// One bit per (gpr plane, segment): `thread * gprs + reg` major.
    gpr: Vec<u64>,
    /// One bit per (flag plane, segment): `thread * flags + flag` major.
    flag: Vec<u64>,
    /// One bit per (local-memory row, segment): row major.
    lmem: Vec<u64>,
}

impl CommitMap {
    fn new(cfg: &ArrayConfig) -> CommitMap {
        let segs = cfg.segments.count();
        CommitMap {
            seg_count: segs,
            gpr: vec![0; words_for(cfg.threads * cfg.gprs * segs)],
            flag: vec![0; words_for(cfg.threads * cfg.flags * segs)],
            lmem: vec![0; words_for(cfg.lmem_words * segs)],
        }
    }

    #[inline]
    fn mark(bits: &mut [u64], idx: usize) {
        bits[idx / BITS_PER_WORD] |= 1u64 << (idx % BITS_PER_WORD);
    }

    #[inline]
    fn is_marked(bits: &[u64], idx: usize) -> bool {
        bits[idx / BITS_PER_WORD] >> (idx % BITS_PER_WORD) & 1 == 1
    }

    /// Mark every segment of one plane (dense plane-wide writes).
    fn mark_plane(bits: &mut [u64], plane: usize, seg_count: usize) {
        for s in 0..seg_count {
            Self::mark(bits, plane * seg_count + s);
        }
    }

    fn clear_plane(bits: &mut [u64], plane: usize, seg_count: usize) {
        for s in 0..seg_count {
            let idx = plane * seg_count + s;
            bits[idx / BITS_PER_WORD] &= !(1u64 << (idx % BITS_PER_WORD));
        }
    }

    /// Committed bytes of one plane kind, where segment `s` of a plane
    /// holds `seg_bytes(s)` bytes.
    fn plane_bytes(bits: &[u64], seg_count: usize, seg_bytes: impl Fn(usize) -> usize) -> usize {
        let mut total = 0;
        for (wi, &w) in bits.iter().enumerate() {
            for_each_set(w, wi * BITS_PER_WORD, |idx| total += seg_bytes(idx % seg_count));
        }
        total
    }
}

/// The PE array (structure-of-arrays storage; see the module docs).
#[derive(Debug, Clone)]
pub struct PeArray {
    cfg: ArrayConfig,
    /// One `num_pes`-word plane per (thread, reg); plane 0 of each thread
    /// is kept all-zero (hardwired zero register).
    gprs: Vec<Word>,
    /// One packed bitplane per (thread, flag), `words_per_plane` words
    /// each, tail bits always zero.
    flags: Vec<u64>,
    /// Local memory, column-major: `lmem[addr * num_pes + pe]`.
    lmem: Vec<Word>,
    /// Reusable source latches for operations whose destination plane may
    /// alias a source plane (no per-instruction allocation).
    scratch_a: Vec<Word>,
    scratch_b: Vec<Word>,
    /// Whether the rayon path is worth taking at all, resolved once at
    /// construction (like the SIMD tier): a one-worker pool makes every
    /// `par_iter` dispatch pure coordination overhead — microseconds per
    /// plane op on a single-core host — for byte-identical results.
    pool_parallel: bool,
    /// Which (plane, segment) slices have been written (telemetry for the
    /// lazy zero-page-backed planes).
    committed: CommitMap,
}

impl PeArray {
    /// Allocate a zeroed array. The plane buffers are zero-page-backed:
    /// construction cost is a handful of `mmap` reservations, independent
    /// of `num_pes`, and segments materialize on first write.
    pub fn new(cfg: ArrayConfig) -> PeArray {
        pin_mmap_threshold();
        debug_assert_eq!(cfg.segments.num_pes(), cfg.num_pes, "segment geometry mismatch");
        let n = cfg.num_pes;
        PeArray {
            gprs: zeroed_words(cfg.threads * cfg.gprs * n),
            flags: vec![0; cfg.threads * cfg.flags * words_for(n)],
            lmem: zeroed_words(cfg.lmem_words * n),
            scratch_a: zeroed_words(n),
            scratch_b: zeroed_words(n),
            pool_parallel: rayon::current_num_threads() > 1,
            committed: CommitMap::new(&cfg),
            cfg,
        }
    }

    /// Array geometry.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.cfg.num_pes
    }

    /// The core-affine segment slicing.
    pub fn segments(&self) -> SegmentGeometry {
        self.cfg.segments
    }

    /// Bytes of plane storage actually committed (written at least once),
    /// at segment granularity — the "only pay for what you touch" figure.
    /// A freshly constructed array reports zero no matter how large it is.
    pub fn committed_bytes(&self) -> usize {
        let geo = self.cfg.segments;
        let segs = self.committed.seg_count;
        let word = std::mem::size_of::<Word>();
        let gpr = CommitMap::plane_bytes(&self.committed.gpr, segs, |s| {
            geo.seg_lane_range(s).len() * word
        });
        let flag = CommitMap::plane_bytes(&self.committed.flag, segs, |s| {
            geo.seg_tile_range(s).len() * std::mem::size_of::<u64>()
        });
        let lmem = CommitMap::plane_bytes(&self.committed.lmem, segs, |s| {
            geo.seg_lane_range(s).len() * word
        });
        gpr + flag + lmem
    }

    /// Total reserved (virtual) plane storage in bytes — the upper bound
    /// [`PeArray::committed_bytes`] approaches as planes are touched.
    pub fn footprint_bytes(&self) -> usize {
        let word = std::mem::size_of::<Word>();
        (self.gprs.len() + self.lmem.len() + self.scratch_a.len() + self.scratch_b.len()) * word
            + self.flags.len() * std::mem::size_of::<u64>()
    }

    /// Telemetry hook for executors that write planes through raw tile
    /// windows (the block-fusion engine): record a write of `reg`'s plane.
    pub fn note_gpr_write(&mut self, thread: usize, reg: usize) {
        if reg != 0 {
            self.mark_gpr_plane(thread, reg);
        }
    }

    /// Like [`PeArray::note_gpr_write`], for a flag bitplane.
    pub fn note_flag_write(&mut self, thread: usize, flag: usize) {
        self.mark_flag_plane(thread, flag);
    }

    /// Like [`PeArray::note_gpr_write`], for local memory: a statically
    /// known row, or `None` for per-lane-addressed stores (conservatively
    /// commits every row — the rows touched are only known at runtime).
    pub fn note_lmem_write(&mut self, row: Option<i64>) {
        match row {
            Some(r) if (0..self.cfg.lmem_words as i64).contains(&r) => {
                self.mark_lmem_row(r as usize);
            }
            Some(_) => {} // out of range: the store will fault, no commit
            None => {
                for r in 0..self.cfg.lmem_words {
                    self.mark_lmem_row(r);
                }
            }
        }
    }

    #[inline]
    fn mark_gpr_plane(&mut self, thread: usize, reg: usize) {
        let plane = thread * self.cfg.gprs + reg;
        CommitMap::mark_plane(&mut self.committed.gpr, plane, self.committed.seg_count);
    }

    #[inline]
    fn mark_gpr_lane(&mut self, thread: usize, reg: usize, lane: usize) {
        let plane = thread * self.cfg.gprs + reg;
        let s = lane / self.cfg.segments.lanes_per_seg();
        CommitMap::mark(&mut self.committed.gpr, plane * self.committed.seg_count + s);
    }

    #[inline]
    fn mark_flag_plane(&mut self, thread: usize, flag: usize) {
        let plane = thread * self.cfg.flags + flag;
        CommitMap::mark_plane(&mut self.committed.flag, plane, self.committed.seg_count);
    }

    #[inline]
    fn mark_flag_lane(&mut self, thread: usize, flag: usize, lane: usize) {
        let plane = thread * self.cfg.flags + flag;
        let s = lane / self.cfg.segments.lanes_per_seg();
        CommitMap::mark(&mut self.committed.flag, plane * self.committed.seg_count + s);
    }

    #[inline]
    fn mark_lmem_row(&mut self, row: usize) {
        CommitMap::mark_plane(&mut self.committed.lmem, row, self.committed.seg_count);
    }

    #[inline]
    fn mark_lmem_word(&mut self, row: usize, lane: usize) {
        let s = lane / self.cfg.segments.lanes_per_seg();
        CommitMap::mark(&mut self.committed.lmem, row * self.committed.seg_count + s);
    }

    fn width(&self) -> Width {
        self.cfg.width
    }

    /// `u64` words per flag bitplane.
    fn words_per_plane(&self) -> usize {
        words_for(self.cfg.num_pes)
    }

    #[inline]
    fn gpr_base(&self, thread: usize, reg: usize) -> usize {
        debug_assert!(thread < self.cfg.threads && reg < self.cfg.gprs);
        (thread * self.cfg.gprs + reg) * self.cfg.num_pes
    }

    #[inline]
    fn flag_base(&self, thread: usize, flag: usize) -> usize {
        debug_assert!(thread < self.cfg.threads && flag < self.cfg.flags);
        (thread * self.cfg.flags + flag) * self.words_per_plane()
    }

    fn parallel(&self) -> bool {
        self.pool_parallel && self.cfg.num_pes >= self.cfg.parallel_threshold
    }

    /// Fill `out` with the active set for a thread and mask, without
    /// allocating: all PEs, or the PEs whose mask flag is set.
    pub fn fill_active(&self, thread: usize, mask: Mask, out: &mut ActiveMask) {
        debug_assert_eq!(out.lanes(), self.cfg.num_pes);
        match mask {
            Mask::All => out.set_all(),
            Mask::Flag(f) => out.copy_from_plane(self.flag_plane(thread, f.index())),
        }
    }

    /// Latch the `(thread, reg)` GPR plane into `scratch_a`.
    fn latch_a(&mut self, thread: usize, reg: usize) {
        let base = self.gpr_base(thread, reg);
        self.scratch_a.copy_from_slice(&self.gprs[base..base + self.cfg.num_pes]);
    }

    /// Latch the `(thread, reg)` GPR plane into `scratch_b`.
    fn latch_b(&mut self, thread: usize, reg: usize) {
        let base = self.gpr_base(thread, reg);
        self.scratch_b.copy_from_slice(&self.gprs[base..base + self.cfg.num_pes]);
    }

    /// Parallel ALU operation: `pd = pa op src` in active PEs.
    ///
    /// The op's chunk kernel is selected once (monomorphized per op and
    /// SIMD tier, see [`crate::simd`]) and applied 64 lanes at a time;
    /// sources are latched first so the destination plane may alias them.
    pub fn alu(
        &mut self,
        thread: usize,
        op: AluOp,
        pd: PReg,
        pa: PReg,
        src: Src,
        active: &ActiveMask,
    ) {
        if pd.index() == 0 {
            return; // writes to the zero register have no effect
        }
        let w = self.width();
        let n = self.cfg.num_pes;
        let parallel = self.parallel();
        self.latch_a(thread, pa.index());
        let scalar = match src {
            Src::Reg(pb) => {
                self.latch_b(thread, pb.index());
                None
            }
            Src::Scalar(v) | Src::Imm(v) => Some(v),
        };
        #[derive(Clone, Copy)]
        enum Kern {
            Rr(simd::AluRrKernel),
            Rs(simd::AluRsKernel, Word),
        }
        let kern = match scalar {
            None => Kern::Rr(simd::select_alu_rr(self.cfg.simd, op)),
            Some(s) => Kern::Rs(simd::select_alu_rs(self.cfg.simd, op), s),
        };
        self.mark_gpr_plane(thread, pd.index());
        let seg_lanes = self.cfg.segments.lanes_per_seg();
        let dst_base = self.gpr_base(thread, pd.index());
        let (sa, sb) = (&self.scratch_a, &self.scratch_b);
        let dst = &mut self.gprs[dst_base..dst_base + n];
        let mask_words = active.words();
        let chunk_op = |wi: usize, chunk: &mut [Word]| {
            let mw = mask_words[wi];
            if mw == 0 {
                return;
            }
            let base = wi * BITS_PER_WORD;
            let a = &sa[base..base + chunk.len()];
            match kern {
                Kern::Rr(f) => f(chunk, a, &sb[base..base + chunk.len()], w, mw),
                Kern::Rs(f, s) => f(chunk, a, s, w, mw),
            }
        };
        // one segment per Rayon task; a fully-inactive segment costs one
        // occupancy test instead of 64 mask-word tests
        let seg_op = |si: usize, seg: &mut [Word]| {
            let w0 = si * (seg_lanes / BITS_PER_WORD);
            if !active.range_occupied(w0..w0 + seg.len().div_ceil(BITS_PER_WORD)) {
                return;
            }
            for (wj, chunk) in seg.chunks_mut(BITS_PER_WORD).enumerate() {
                chunk_op(w0 + wj, chunk);
            }
        };
        if parallel {
            dst.par_chunks_mut(seg_lanes).enumerate().for_each(|(si, seg)| seg_op(si, seg));
        } else {
            for (si, seg) in dst.chunks_mut(seg_lanes).enumerate() {
                seg_op(si, seg);
            }
        }
    }

    /// Parallel comparison (associative search): `fd = pa cmp src` in
    /// active PEs. Results are merged into the destination bitplane word by
    /// word, so inactive lanes keep their bits.
    pub fn cmp(
        &mut self,
        thread: usize,
        op: CmpOp,
        fd: PFlag,
        pa: PReg,
        src: Src,
        active: &ActiveMask,
    ) {
        let w = self.width();
        let n = self.cfg.num_pes;
        let pa_base = self.gpr_base(thread, pa.index());
        let (b_base, scalar) = match src {
            Src::Reg(pb) => (Some(self.gpr_base(thread, pb.index())), Word::ZERO),
            Src::Scalar(v) | Src::Imm(v) => (None, v),
        };
        #[derive(Clone, Copy)]
        enum Kern {
            Rr(simd::CmpRrKernel),
            Rs(simd::CmpRsKernel, Word),
        }
        let kern = match b_base {
            Some(_) => Kern::Rr(simd::select_cmp_rr(self.cfg.simd, op)),
            None => Kern::Rs(simd::select_cmp_rs(self.cfg.simd, op), scalar),
        };
        self.mark_flag_plane(thread, fd.index());
        let parallel = self.parallel();
        let tps = self.cfg.segments.tiles_per_seg();
        let fd_base = self.flag_base(thread, fd.index());
        let wpp = self.words_per_plane();
        let (gprs, flags) = (&self.gprs, &mut self.flags);
        let a_plane = &gprs[pa_base..pa_base + n];
        let b_plane = b_base.map(|bb| &gprs[bb..bb + n]);
        let dst = &mut flags[fd_base..fd_base + wpp];
        let mask_words = active.words();

        // inactive lanes may be computed (compares are side-effect free);
        // the merge under the mask word keeps their flag bits
        let word_op = |wi: usize, dw: &mut u64| {
            let mw = mask_words[wi];
            if mw == 0 {
                return;
            }
            let base = wi * BITS_PER_WORD;
            let len = BITS_PER_WORD.min(n - base);
            let a = &a_plane[base..base + len];
            let res = match kern {
                Kern::Rr(f) => {
                    f(a, &b_plane.expect("rr kernel has a b plane")[base..base + len], w)
                }
                Kern::Rs(f, s) => f(a, s, w),
            };
            *dw = (*dw & !mw) | (res & mw);
        };

        let seg_op = |si: usize, words: &mut [u64]| {
            let w0 = si * tps;
            if !active.range_occupied(w0..w0 + words.len()) {
                return;
            }
            for (wj, dw) in words.iter_mut().enumerate() {
                word_op(w0 + wj, dw);
            }
        };
        if parallel {
            dst.par_chunks_mut(tps).enumerate().for_each(|(si, words)| seg_op(si, words));
        } else {
            for (si, words) in dst.chunks_mut(tps).enumerate() {
                seg_op(si, words);
            }
        }
    }

    /// Parallel flag logic: `fd = fa op fb` in active PEs — word-parallel,
    /// 64 PEs per `u64` operation.
    pub fn flag_op(
        &mut self,
        thread: usize,
        op: FlagOp,
        fd: PFlag,
        fa: PFlag,
        fb: PFlag,
        active: &ActiveMask,
    ) {
        let a_base = self.flag_base(thread, fa.index());
        let b_base = self.flag_base(thread, fb.index());
        let d_base = self.flag_base(thread, fd.index());
        self.mark_flag_plane(thread, fd.index());
        let wpp = self.words_per_plane();
        for wi in 0..wpp {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            // read before write: fd may alias fa or fb
            let a = self.flags[a_base + wi];
            let b = self.flags[b_base + wi];
            let d = &mut self.flags[d_base + wi];
            // the mask's zero tail bits keep the plane's tail invariant
            *d = (*d & !mw) | (op.apply_word(a, b) & mw);
        }
    }

    /// Effective address: unsigned base register plus sign-extended offset,
    /// computed at full precision (the hardware address path is wider than
    /// the data path so a 1 KB local memory stays addressable).
    fn effective_addr(base: Word, off: i32) -> i64 {
        base.to_u32() as i64 + off as i64
    }

    /// Bounds-check an effective address against local memory capacity.
    #[inline]
    fn check_addr(ea: i64, capacity: usize, is_store: bool) -> Result<usize, MemFault> {
        if (0..capacity as i64).contains(&ea) {
            Ok(ea as usize)
        } else {
            Err(MemFault { addr: ea as u32, capacity: capacity as u32, is_store })
        }
    }

    /// Parallel load: `pd = lmem[pa + off]` in active PEs.
    ///
    /// Fault policy matches the legacy array-of-structures paths: below the
    /// parallel threshold the lane loop stops at the first faulting PE;
    /// at/above it every non-faulting lane completes and the lowest
    /// faulting PE is reported.
    pub fn load(
        &mut self,
        thread: usize,
        pd: PReg,
        base: PReg,
        off: i32,
        active: &ActiveMask,
    ) -> Result<(), PeFault> {
        if base.index() == 0 {
            // the base register is hardwired zero: every lane reads the
            // same address, which in the column-major buffer is one
            // contiguous row — bounds-check once, then bulk-copy
            return self.load_uniform(thread, pd, off, active);
        }
        let n = self.cfg.num_pes;
        let cap = self.cfg.lmem_words;
        let base_b = self.gpr_base(thread, base.index());

        if pd.index() == 0 {
            // the result is discarded, but faults still surface
            let gprs = &self.gprs;
            return try_for_each_lane(active, |lane| {
                let ea = Self::effective_addr(gprs[base_b + lane], off);
                Self::check_addr(ea, cap, false).map(|_| ())
            });
        }

        self.mark_gpr_plane(thread, pd.index());
        if self.parallel() {
            self.latch_a(thread, base.index()); // pd may alias the base reg
            let seg_lanes = self.cfg.segments.lanes_per_seg();
            let dst_base = self.gpr_base(thread, pd.index());
            let (sa, lmem) = (&self.scratch_a, &self.lmem);
            let dst = &mut self.gprs[dst_base..dst_base + n];
            let mask_words = active.words();
            // one segment per task; within a segment the word loop runs
            // in lane order, so the first fault seen is the segment's
            // lowest-PE fault
            let fault = dst
                .par_chunks_mut(seg_lanes)
                .enumerate()
                .filter_map(|(si, seg)| {
                    let w0 = si * (seg_lanes / BITS_PER_WORD);
                    if !active.range_occupied(w0..w0 + seg.len().div_ceil(BITS_PER_WORD)) {
                        return None;
                    }
                    let mut fault: Option<PeFault> = None;
                    for (wj, chunk) in seg.chunks_mut(BITS_PER_WORD).enumerate() {
                        let wi = w0 + wj;
                        let mw = mask_words[wi];
                        if mw == 0 {
                            continue;
                        }
                        let base = wi * BITS_PER_WORD;
                        let len = chunk.len();
                        let mut lane_op = |lane: usize| {
                            let ea = Self::effective_addr(sa[lane], off);
                            match Self::check_addr(ea, cap, false) {
                                Ok(addr) => chunk[lane - base] = lmem[addr * n + lane],
                                Err(f) if fault.is_none() => {
                                    fault = Some(PeFault { pe: lane, fault: f })
                                }
                                Err(_) => {}
                            }
                        };
                        if mw == u64::MAX {
                            for lane in base..base + len {
                                lane_op(lane);
                            }
                        } else {
                            for_each_set(mw, base, lane_op);
                        }
                    }
                    fault
                })
                .min_by_key(|pf| pf.pe);
            match fault {
                Some(pf) => Err(pf),
                None => Ok(()),
            }
        } else {
            let dst_base = self.gpr_base(thread, pd.index());
            let (gprs, lmem) = (&mut self.gprs, &self.lmem);
            try_for_each_lane(active, |lane| {
                let ea = Self::effective_addr(gprs[base_b + lane], off);
                let addr = Self::check_addr(ea, cap, false)?;
                gprs[dst_base + lane] = lmem[addr * n + lane];
                Ok(())
            })
        }
    }

    /// Parallel store: `lmem[pa + off] = ps` in active PEs. The writes
    /// scatter through the column-major buffer, so the lane loop is always
    /// serial; the fault policy still matches the legacy paths (early stop
    /// below the parallel threshold, apply-all with lowest-PE fault at or
    /// above it).
    pub fn store(
        &mut self,
        thread: usize,
        ps: PReg,
        base: PReg,
        off: i32,
        active: &ActiveMask,
    ) -> Result<(), PeFault> {
        if base.index() == 0 {
            return self.store_uniform(thread, ps, off, active);
        }
        let n = self.cfg.num_pes;
        let cap = self.cfg.lmem_words;
        let base_b = self.gpr_base(thread, base.index());
        let ps_base = self.gpr_base(thread, ps.index());
        let parallel = self.parallel();
        let seg_lanes = self.cfg.segments.lanes_per_seg();
        let seg_count = self.committed.seg_count;
        let lmem_bits = &mut self.committed.lmem;
        let (gprs, lmem) = (&self.gprs, &mut self.lmem);
        if parallel {
            let mut fault: Option<PeFault> = None;
            for_each_lane(active, |lane| {
                let ea = Self::effective_addr(gprs[base_b + lane], off);
                match Self::check_addr(ea, cap, true) {
                    Ok(addr) => {
                        lmem[addr * n + lane] = gprs[ps_base + lane];
                        CommitMap::mark(lmem_bits, addr * seg_count + lane / seg_lanes);
                    }
                    Err(f) if fault.is_none() => fault = Some(PeFault { pe: lane, fault: f }),
                    Err(_) => {}
                }
            });
            match fault {
                Some(pf) => Err(pf),
                None => Ok(()),
            }
        } else {
            try_for_each_lane(active, |lane| {
                let ea = Self::effective_addr(gprs[base_b + lane], off);
                let addr = Self::check_addr(ea, cap, true)?;
                lmem[addr * n + lane] = gprs[ps_base + lane];
                CommitMap::mark(lmem_bits, addr * seg_count + lane / seg_lanes);
                Ok(())
            })
        }
    }

    /// Uniform-address load (`base` = the zero register): one bounds
    /// check, then a masked row copy. The fault policy degenerates to the
    /// same answer on both the serial and parallel paths: all active
    /// lanes fault together, so the lowest active PE is reported.
    fn load_uniform(
        &mut self,
        thread: usize,
        pd: PReg,
        off: i32,
        active: &ActiveMask,
    ) -> Result<(), PeFault> {
        let Some(first) = first_active(active) else {
            return Ok(()); // no active lane, no access, no fault
        };
        let addr = Self::check_addr(off as i64, self.cfg.lmem_words, false)
            .map_err(|fault| PeFault { pe: first, fault })?;
        if pd.index() == 0 {
            return Ok(());
        }
        self.mark_gpr_plane(thread, pd.index());
        let n = self.cfg.num_pes;
        let dst_base = self.gpr_base(thread, pd.index());
        let (lmem, gprs) = (&self.lmem, &mut self.gprs);
        let row = &lmem[addr * n..(addr + 1) * n];
        let dst = &mut gprs[dst_base..dst_base + n];
        for (wi, chunk) in dst.chunks_mut(BITS_PER_WORD).enumerate() {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            let base = wi * BITS_PER_WORD;
            if mw == chunk_mask(chunk.len()) {
                chunk.copy_from_slice(&row[base..base + chunk.len()]);
            } else {
                for_each_set(mw, base, |lane| chunk[lane - base] = row[lane]);
            }
        }
        Ok(())
    }

    /// Uniform-address store (`base` = the zero register): one bounds
    /// check, then a masked copy into the contiguous row.
    fn store_uniform(
        &mut self,
        thread: usize,
        ps: PReg,
        off: i32,
        active: &ActiveMask,
    ) -> Result<(), PeFault> {
        let Some(first) = first_active(active) else {
            return Ok(());
        };
        let addr = Self::check_addr(off as i64, self.cfg.lmem_words, true)
            .map_err(|fault| PeFault { pe: first, fault })?;
        self.mark_lmem_row(addr);
        let n = self.cfg.num_pes;
        let ps_base = self.gpr_base(thread, ps.index());
        let (gprs, lmem) = (&self.gprs, &mut self.lmem);
        let src = &gprs[ps_base..ps_base + n];
        let row = &mut lmem[addr * n..(addr + 1) * n];
        for (wi, chunk) in row.chunks_mut(BITS_PER_WORD).enumerate() {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            let base = wi * BITS_PER_WORD;
            if mw == chunk_mask(chunk.len()) {
                chunk.copy_from_slice(&src[base..base + chunk.len()]);
            } else {
                for_each_set(mw, base, |lane| chunk[lane - base] = src[lane]);
            }
        }
        Ok(())
    }

    /// Write each PE's index (truncated to the width) into `pd`.
    pub fn pidx(&mut self, thread: usize, pd: PReg, active: &ActiveMask) {
        if pd.index() == 0 {
            return;
        }
        let w = self.width();
        let n = self.cfg.num_pes;
        self.mark_gpr_plane(thread, pd.index());
        let seg_lanes = self.cfg.segments.lanes_per_seg();
        let dst_base = self.gpr_base(thread, pd.index());
        let dst = &mut self.gprs[dst_base..dst_base + n];
        let mask_words = active.words();
        let word_op = |wi: usize, chunk: &mut [Word]| {
            let mw = mask_words[wi];
            if mw == 0 {
                return;
            }
            let base = wi * BITS_PER_WORD;
            let len = chunk.len();
            let mut lane_op = |lane: usize| chunk[lane - base] = Word::new(lane as u32, w);
            if mw == u64::MAX {
                for lane in base..base + len {
                    lane_op(lane);
                }
            } else {
                for_each_set(mw, base, lane_op);
            }
        };
        let seg_op = |si: usize, seg: &mut [Word]| {
            let w0 = si * (seg_lanes / BITS_PER_WORD);
            if !active.range_occupied(w0..w0 + seg.len().div_ceil(BITS_PER_WORD)) {
                return;
            }
            for (wj, chunk) in seg.chunks_mut(BITS_PER_WORD).enumerate() {
                word_op(w0 + wj, chunk);
            }
        };
        if self.pool_parallel && n >= self.cfg.parallel_threshold {
            dst.par_chunks_mut(seg_lanes).enumerate().for_each(|(si, seg)| seg_op(si, seg));
        } else {
            for (si, seg) in dst.chunks_mut(seg_lanes).enumerate() {
                seg_op(si, seg);
            }
        }
    }

    /// Inter-PE shift through the interconnection network:
    /// `pd[i] = pa[i - dist]` for active PEs, zero shifted in at the
    /// boundary. The column is latched before any write, so `pd == pa` is
    /// well defined.
    pub fn shift(&mut self, thread: usize, pd: PReg, pa: PReg, dist: i32, active: &ActiveMask) {
        if pd.index() == 0 {
            return;
        }
        let n = self.cfg.num_pes;
        self.latch_a(thread, pa.index());
        self.mark_gpr_plane(thread, pd.index());
        let seg_lanes = self.cfg.segments.lanes_per_seg();
        let dst_base = self.gpr_base(thread, pd.index());
        let sa = &self.scratch_a;
        let dst = &mut self.gprs[dst_base..dst_base + n];
        let mask_words = active.words();
        let word_op = |wi: usize, chunk: &mut [Word]| {
            let mw = mask_words[wi];
            if mw == 0 {
                return;
            }
            let base = wi * BITS_PER_WORD;
            let len = chunk.len();
            let mut lane_op = |lane: usize| {
                let src = lane as i64 - dist as i64;
                chunk[lane - base] =
                    if (0..n as i64).contains(&src) { sa[src as usize] } else { Word::ZERO };
            };
            if mw == u64::MAX {
                for lane in base..base + len {
                    lane_op(lane);
                }
            } else {
                for_each_set(mw, base, lane_op);
            }
        };
        let seg_op = |si: usize, seg: &mut [Word]| {
            let w0 = si * (seg_lanes / BITS_PER_WORD);
            if !active.range_occupied(w0..w0 + seg.len().div_ceil(BITS_PER_WORD)) {
                return;
            }
            for (wj, chunk) in seg.chunks_mut(BITS_PER_WORD).enumerate() {
                word_op(w0 + wj, chunk);
            }
        };
        if self.pool_parallel && n >= self.cfg.parallel_threshold {
            dst.par_chunks_mut(seg_lanes).enumerate().for_each(|(si, seg)| seg_op(si, seg));
        } else {
            for (si, seg) in dst.chunks_mut(seg_lanes).enumerate() {
                seg_op(si, seg);
            }
        }
    }

    /// Broadcast a scalar into `pd` of active PEs.
    pub fn movs(&mut self, thread: usize, pd: PReg, value: Word, active: &ActiveMask) {
        if pd.index() == 0 {
            return;
        }
        let n = self.cfg.num_pes;
        self.mark_gpr_plane(thread, pd.index());
        let seg_lanes = self.cfg.segments.lanes_per_seg();
        let dst_base = self.gpr_base(thread, pd.index());
        let dst = &mut self.gprs[dst_base..dst_base + n];
        let mask_words = active.words();
        let word_op = |wi: usize, chunk: &mut [Word]| {
            let mw = mask_words[wi];
            if mw == 0 {
                return;
            }
            if mw == u64::MAX {
                chunk.fill(value);
            } else {
                let base = wi * BITS_PER_WORD;
                for_each_set(mw, base, |lane| chunk[lane - base] = value);
            }
        };
        let seg_op = |si: usize, seg: &mut [Word]| {
            let w0 = si * (seg_lanes / BITS_PER_WORD);
            if !active.range_occupied(w0..w0 + seg.len().div_ceil(BITS_PER_WORD)) {
                return;
            }
            for (wj, chunk) in seg.chunks_mut(BITS_PER_WORD).enumerate() {
                word_op(w0 + wj, chunk);
            }
        };
        if self.pool_parallel && n >= self.cfg.parallel_threshold {
            dst.par_chunks_mut(seg_lanes).enumerate().for_each(|(si, seg)| seg_op(si, seg));
        } else {
            for (si, seg) in dst.chunks_mut(seg_lanes).enumerate() {
                seg_op(si, seg);
            }
        }
    }

    /// Write a whole flag column (e.g. a resolver result computed as
    /// per-PE booleans). Only active PEs are updated.
    pub fn write_flag_column(
        &mut self,
        thread: usize,
        fd: PFlag,
        values: &[bool],
        active: &ActiveMask,
    ) {
        debug_assert_eq!(values.len(), self.cfg.num_pes);
        let d_base = self.flag_base(thread, fd.index());
        self.mark_flag_plane(thread, fd.index());
        for wi in 0..self.words_per_plane() {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            let base = wi * BITS_PER_WORD;
            let mut bits = 0u64;
            for_each_set(mw, base, |lane| bits |= u64::from(values[lane]) << (lane - base));
            let d = &mut self.flags[d_base + wi];
            *d = (*d & !mw) | bits;
        }
    }

    /// Write the multiple response resolver's one-hot result: clear `fd`
    /// in every active PE, then set it in the winning PE (if any). The
    /// winner must be active.
    pub fn write_first_responder(
        &mut self,
        thread: usize,
        fd: PFlag,
        winner: Option<usize>,
        active: &ActiveMask,
    ) {
        let d_base = self.flag_base(thread, fd.index());
        self.mark_flag_plane(thread, fd.index());
        for wi in 0..self.words_per_plane() {
            let mw = active.words()[wi];
            if mw != 0 {
                self.flags[d_base + wi] &= !mw;
            }
        }
        if let Some(pe) = winner {
            debug_assert!(active.is_active(pe), "resolver winner must be active");
            self.flags[d_base + pe / BITS_PER_WORD] |= 1u64 << (pe % BITS_PER_WORD);
        }
    }

    /// A mutable tile-wise view of one thread's registers, flags, and
    /// local memory — the substrate of fused-block execution (see
    /// [`crate::tiles`]). Borrows only that thread's plane regions, so the
    /// view cannot observe or disturb other threads' state.
    pub fn thread_tiles(&mut self, thread: usize) -> crate::tiles::ThreadTiles<'_> {
        let n = self.cfg.num_pes;
        let wpp = self.words_per_plane();
        let g = self.gpr_base(thread, 0);
        let f = self.flag_base(thread, 0);
        crate::tiles::ThreadTiles::new(
            &mut self.gprs[g..g + self.cfg.gprs * n],
            &mut self.flags[f..f + self.cfg.flags * wpp],
            &mut self.lmem,
            n,
            self.cfg.lmem_words,
            self.cfg.width,
        )
    }

    /// A GPR plane across all PEs, as a contiguous slice (input to the
    /// reduction network).
    pub fn gpr_plane(&self, thread: usize, reg: usize) -> &[Word] {
        let base = self.gpr_base(thread, reg);
        &self.gprs[base..base + self.cfg.num_pes]
    }

    /// A flag bitplane across all PEs (input to the responder units); one
    /// bit per PE, tail bits zero.
    pub fn flag_plane(&self, thread: usize, flag: usize) -> &[u64] {
        let base = self.flag_base(thread, flag);
        &self.flags[base..base + self.words_per_plane()]
    }

    /// Snapshot a GPR across all PEs (host/test convenience; allocates —
    /// the executor uses [`PeArray::gpr_plane`]).
    pub fn gpr_column(&self, thread: usize, reg: usize) -> Vec<Word> {
        self.gpr_plane(thread, reg).to_vec()
    }

    /// Snapshot a flag across all PEs (host/test convenience; allocates —
    /// the executor uses [`PeArray::flag_plane`]).
    pub fn flag_column(&self, thread: usize, reg: usize) -> Vec<bool> {
        let plane = self.flag_plane(thread, reg);
        (0..self.cfg.num_pes)
            .map(|i| plane[i / BITS_PER_WORD] >> (i % BITS_PER_WORD) & 1 == 1)
            .collect()
    }

    /// Clear one thread's registers and flags in every PE (thread
    /// allocation).
    pub fn clear_thread(&mut self, thread: usize) {
        // Only the committed segment slices can hold non-zero state, so a
        // `tspawn` on a sparse machine stays proportional to what was
        // actually touched, not to the reserved footprint.
        let geo = self.cfg.segments;
        let segs = self.committed.seg_count;
        for reg in 0..self.cfg.gprs {
            let plane = thread * self.cfg.gprs + reg;
            let base = self.gpr_base(thread, reg);
            for s in 0..segs {
                if CommitMap::is_marked(&self.committed.gpr, plane * segs + s) {
                    let r = geo.seg_lane_range(s);
                    self.gprs[base + r.start..base + r.end].fill(Word::ZERO);
                }
            }
            CommitMap::clear_plane(&mut self.committed.gpr, plane, segs);
        }
        for flag in 0..self.cfg.flags {
            let plane = thread * self.cfg.flags + flag;
            let base = self.flag_base(thread, flag);
            for s in 0..segs {
                if CommitMap::is_marked(&self.committed.flag, plane * segs + s) {
                    let r = geo.seg_tile_range(s);
                    self.flags[base + r.start..base + r.end].fill(0);
                }
            }
            CommitMap::clear_plane(&mut self.committed.flag, plane, segs);
        }
    }

    // ---------------------------------------------------------- host API

    /// Host read of one PE's GPR.
    pub fn gpr(&self, pe: usize, thread: usize, reg: usize) -> Word {
        self.gprs[self.gpr_base(thread, reg) + pe]
    }

    /// Host write of one PE's GPR (writes to register 0 are ignored).
    pub fn set_gpr(&mut self, pe: usize, thread: usize, reg: usize, v: Word) {
        if reg != 0 {
            let base = self.gpr_base(thread, reg);
            self.gprs[base + pe] = v;
            self.mark_gpr_lane(thread, reg, pe);
        }
    }

    /// Host read of one PE's flag.
    pub fn flag(&self, pe: usize, thread: usize, reg: usize) -> bool {
        self.flag_plane(thread, reg)[pe / BITS_PER_WORD] >> (pe % BITS_PER_WORD) & 1 == 1
    }

    /// Host write of one PE's flag.
    pub fn set_flag(&mut self, pe: usize, thread: usize, reg: usize, v: bool) {
        self.mark_flag_lane(thread, reg, pe);
        let base = self.flag_base(thread, reg);
        let (w, b) = (pe / BITS_PER_WORD, 1u64 << (pe % BITS_PER_WORD));
        if v {
            self.flags[base + w] |= b;
        } else {
            self.flags[base + w] &= !b;
        }
    }

    /// Host read of one PE's local memory word.
    pub fn lmem_word(&self, pe: usize, addr: u32) -> Result<Word, PeFault> {
        Self::check_addr(addr as i64, self.cfg.lmem_words, false)
            .map(|a| self.lmem[a * self.cfg.num_pes + pe])
            .map_err(|fault| PeFault { pe, fault })
    }

    /// Host bulk load into one PE's local memory starting at `base` (data
    /// distribution — the simulator's stand-in for off-chip memory
    /// traffic). The column-major layout makes this a strided write.
    pub fn lmem_load_slice(
        &mut self,
        pe: usize,
        base: usize,
        data: &[Word],
    ) -> Result<(), PeFault> {
        let end = base + data.len();
        if end > self.cfg.lmem_words {
            return Err(PeFault {
                pe,
                fault: MemFault {
                    addr: end as u32 - 1,
                    capacity: self.cfg.lmem_words as u32,
                    is_store: true,
                },
            });
        }
        let n = self.cfg.num_pes;
        for (k, &v) in data.iter().enumerate() {
            self.lmem[(base + k) * n + pe] = v;
            self.mark_lmem_word(base + k, pe);
        }
        Ok(())
    }

    /// Distribute one value per PE into local memory at `addr` (column
    /// layout: `lmem[addr]` of PE `i` = `data[i]`). Contiguous in the
    /// column-major buffer.
    pub fn scatter_column(&mut self, addr: u32, data: &[Word]) -> Result<(), PeFault> {
        let n = self.cfg.num_pes;
        assert_eq!(data.len(), n, "one value per PE");
        let a = Self::check_addr(addr as i64, self.cfg.lmem_words, true)
            .map_err(|fault| PeFault { pe: 0, fault })?;
        self.lmem[a * n..(a + 1) * n].copy_from_slice(data);
        self.mark_lmem_row(a);
        Ok(())
    }

    /// Gather `lmem[addr]` from every PE.
    pub fn gather_column(&self, addr: u32) -> Result<Vec<Word>, PeFault> {
        let n = self.cfg.num_pes;
        let a = Self::check_addr(addr as i64, self.cfg.lmem_words, false)
            .map_err(|fault| PeFault { pe: 0, fault })?;
        Ok(self.lmem[a * n..(a + 1) * n].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PeArray {
        PeArray::new(ArrayConfig {
            num_pes: 8,
            threads: 2,
            gprs: 16,
            flags: 8,
            lmem_words: 32,
            width: Width::W16,
            parallel_threshold: 4096,
            simd: SimdLevel::detect(),
            segments: SegmentGeometry::new(8, 0),
        })
    }

    fn p(i: u8) -> PReg {
        PReg::from_index(i)
    }
    fn pf(i: u8) -> PFlag {
        PFlag::from_index(i)
    }
    fn every(n: usize, f: impl Fn(usize) -> bool) -> ActiveMask {
        ActiveMask::from_bools(&(0..n).map(f).collect::<Vec<_>>())
    }

    #[test]
    fn alu_masked() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        // add 10 only where index >= 4
        let active = every(8, |i| i >= 4);
        a.alu(0, AluOp::Add, p(2), p(1), Src::Imm(Word(10)), &active);
        for i in 0..8 {
            let got = a.gpr(i, 0, 2).to_u32();
            if i >= 4 {
                assert_eq!(got, i as u32 + 10);
            } else {
                assert_eq!(got, 0, "inactive PE must be untouched");
            }
        }
    }

    #[test]
    fn cmp_writes_flags() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.cmp(0, CmpOp::Lt, pf(1), p(1), Src::Scalar(Word(3)), &all);
        assert_eq!(a.flag_column(0, 1), vec![true, true, true, false, false, false, false, false]);
    }

    #[test]
    fn threads_have_separate_registers() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.movs(0, p(5), Word(111), &all);
        a.movs(1, p(5), Word(222), &all);
        assert_eq!(a.gpr(3, 0, 5), Word(111));
        assert_eq!(a.gpr(3, 1, 5), Word(222));
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.movs(0, p(0), Word(7), &all);
        a.pidx(0, p(0), &all);
        a.alu(0, AluOp::Add, p(0), p(0), Src::Imm(Word(1)), &all);
        assert!(a.gpr_plane(0, 0).iter().all(|&w| w == Word::ZERO));
        // reading p0 as a source yields zero
        a.alu(0, AluOp::Add, p(2), p(0), Src::Imm(Word(5)), &all);
        assert_eq!(a.gpr(3, 0, 2), Word(5));
        a.set_gpr(4, 0, 0, Word(9));
        assert_eq!(a.gpr(4, 0, 0), Word::ZERO);
    }

    #[test]
    fn load_store_round_trip() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.alu(0, AluOp::Mul, p(2), p(1), Src::Imm(Word(3)), &all);
        a.store(0, p(2), p(1), 4, &all).unwrap(); // lmem[i+4] = 3i
        a.load(0, p(3), p(1), 4, &all).unwrap();
        for i in 0..8u32 {
            assert_eq!(a.gpr(i as usize, 0, 3).to_u32(), 3 * i);
            assert_eq!(a.lmem_word(i as usize, i + 4).unwrap().to_u32(), 3 * i);
        }
    }

    #[test]
    fn store_fault_reports_lowest_pe() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        // address = idx + 30 → PEs 2.. fault (capacity 32)
        let e = a.store(0, p(1), p(1), 30, &all).unwrap_err();
        assert_eq!(e.pe, 2);
        assert!(e.fault.is_store);
        assert_eq!(e.fault.addr, 32);
    }

    #[test]
    fn masked_pes_cannot_fault() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        let active = every(8, |i| i < 2);
        a.store(0, p(1), p(1), 30, &active).unwrap();
    }

    #[test]
    fn load_to_zero_register_still_faults() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        let e = a.load(0, p(0), p(1), 30, &all).unwrap_err();
        assert_eq!(e.pe, 2);
        assert!(!e.fault.is_store);
    }

    #[test]
    fn scatter_gather() {
        let mut a = small();
        let data: Vec<Word> = (0..8).map(|i| Word(i * i)).collect();
        a.scatter_column(7, &data).unwrap();
        assert_eq!(a.gather_column(7).unwrap(), data);
        assert!(a.scatter_column(32, &data).is_err());
    }

    #[test]
    fn lmem_load_slice_is_per_pe() {
        let mut a = small();
        a.lmem_load_slice(3, 2, &[Word(7), Word(8)]).unwrap();
        assert_eq!(a.lmem_word(3, 2).unwrap(), Word(7));
        assert_eq!(a.lmem_word(3, 3).unwrap(), Word(8));
        assert_eq!(a.lmem_word(2, 2).unwrap(), Word::ZERO, "other PEs untouched");
        assert!(a.lmem_load_slice(0, 31, &[Word(0); 2]).is_err());
        assert!(a.lmem_word(0, 32).is_err());
    }

    #[test]
    fn rayon_path_matches_serial() {
        let mk = |threshold| {
            let mut a = PeArray::new(ArrayConfig {
                num_pes: 100,
                threads: 1,
                gprs: 16,
                flags: 8,
                lmem_words: 8,
                width: Width::W8,
                parallel_threshold: threshold,
                simd: SimdLevel::detect(),
                // Two ragged segments (64 + 36 lanes) so the par branches
                // exercise a segment boundary too.
                segments: SegmentGeometry::new(100, 2),
            });
            // The serial rayon stand-in reports a one-worker pool, which
            // normally disables the par branches; force them on so this
            // test keeps comparing both code paths.
            a.pool_parallel = true;
            let all = ActiveMask::all(100);
            a.pidx(0, p(1), &all);
            a.alu(0, AluOp::Mul, p(2), p(1), Src::Reg(p(1)), &all);
            a.cmp(0, CmpOp::LtU, pf(1), p(2), Src::Imm(Word(50)), &all);
            a.store(0, p(2), p(0), 3, &all).unwrap();
            a.load(0, p(3), p(0), 3, &all).unwrap();
            (a.gpr_column(0, 2), a.flag_column(0, 1), a.gpr_column(0, 3))
        };
        assert_eq!(mk(usize::MAX), mk(1));
    }

    #[test]
    fn clear_thread_resets_state() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.movs(0, p(4), Word(9), &all);
        a.movs(1, p(4), Word(8), &all);
        a.cmp(0, CmpOp::Eq, pf(2), p(4), Src::Imm(Word(9)), &all);
        a.clear_thread(0);
        assert_eq!(a.gpr(0, 0, 4), Word::ZERO);
        assert!(!a.flag(0, 0, 2));
        assert_eq!(a.gpr(0, 1, 4), Word(8), "other threads keep their state");
    }

    #[test]
    fn shift_moves_values_between_pes() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        // shift right by one: pd[i] = pa[i-1]
        a.shift(0, p(2), p(1), 1, &all);
        assert_eq!(
            a.gpr_column(0, 2).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![0, 0, 1, 2, 3, 4, 5, 6]
        );
        // shift left by two: pd[i] = pa[i+2]
        a.shift(0, p(3), p(1), -2, &all);
        assert_eq!(
            a.gpr_column(0, 3).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 6, 7, 0, 0]
        );
    }

    #[test]
    fn shift_in_place_is_well_defined() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.shift(0, p(1), p(1), 1, &all);
        assert_eq!(
            a.gpr_column(0, 1).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![0, 0, 1, 2, 3, 4, 5, 6],
            "source column latched before writes"
        );
    }

    #[test]
    fn shift_respects_mask() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        let active = every(8, |i| i % 2 == 0);
        a.shift(0, p(2), p(1), 1, &active);
        let col: Vec<u32> = a.gpr_column(0, 2).iter().map(|w| w.to_u32()).collect();
        assert_eq!(col, vec![0, 0, 1, 0, 3, 0, 5, 0]);
    }

    #[test]
    fn in_place_alu_aliasing() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.alu(0, AluOp::Add, p(1), p(1), Src::Reg(p(1)), &all); // p1 = p1 + p1
        let col: Vec<u32> = a.gpr_column(0, 1).iter().map(|w| w.to_u32()).collect();
        assert_eq!(col, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn flag_op_word_parallel_respects_mask() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.cmp(0, CmpOp::Lt, pf(1), p(1), Src::Scalar(Word(4)), &all); // 1111_0000 (lanes 0-3)
        a.cmp(0, CmpOp::Lt, pf(2), p(1), Src::Scalar(Word(2)), &all); // lanes 0-1
                                                                      // fd = fa andn fb only where index is even
        let active = every(8, |i| i % 2 == 0);
        a.flag_op(0, FlagOp::AndNot, pf(3), pf(1), pf(2), &active);
        assert_eq!(
            a.flag_column(0, 3),
            vec![false, false, true, false, false, false, false, false]
        );
        // in-place: fd == fa
        a.flag_op(0, FlagOp::Not, pf(1), pf(1), pf(1), &all);
        assert_eq!(a.flag_column(0, 1), vec![false, false, false, false, true, true, true, true]);
    }

    #[test]
    fn write_flag_column_respects_mask() {
        let mut a = small();
        let vals = vec![true; 8];
        let active = every(8, |i| i % 2 == 0);
        a.write_flag_column(0, pf(3), &vals, &active);
        assert_eq!(a.flag_column(0, 3), vec![true, false, true, false, true, false, true, false]);
    }

    #[test]
    fn write_first_responder_is_one_hot_over_active() {
        let mut a = small();
        let all = ActiveMask::all(8);
        // start with fd set everywhere
        a.flag_op(0, FlagOp::Set, pf(4), pf(4), pf(4), &all);
        let active = every(8, |i| i >= 2);
        a.write_first_responder(0, pf(4), Some(5), &active);
        assert_eq!(
            a.flag_column(0, 4),
            vec![true, true, false, false, false, true, false, false],
            "inactive lanes keep old bits; active lanes cleared except winner"
        );
        a.write_first_responder(0, pf(4), None, &all);
        assert_eq!(a.flag_column(0, 4), vec![false; 8]);
    }

    #[test]
    fn commit_telemetry_tracks_first_touch() {
        let mut a = PeArray::new(ArrayConfig {
            num_pes: 100,
            threads: 2,
            gprs: 16,
            flags: 8,
            lmem_words: 8,
            width: Width::W16,
            parallel_threshold: 4096,
            simd: SimdLevel::detect(),
            segments: SegmentGeometry::new(100, 2), // 64 + 36 lanes
        });
        assert_eq!(a.committed_bytes(), 0, "a fresh array has touched nothing");
        assert!(a.footprint_bytes() > 0);

        // A host write into lane 70 commits only the ragged second
        // segment (36 lanes) of that one plane.
        a.set_gpr(70, 0, 3, Word(9));
        assert_eq!(a.committed_bytes(), 36 * std::mem::size_of::<Word>());
        // Touching the same slice again commits nothing new.
        a.set_gpr(71, 0, 3, Word(9));
        assert_eq!(a.committed_bytes(), 36 * std::mem::size_of::<Word>());

        // A plane-wide ALU op commits both segments of its destination.
        let all = ActiveMask::all(100);
        a.pidx(0, p(1), &all);
        let committed = a.committed_bytes();
        assert_eq!(committed, (36 + 100) * std::mem::size_of::<Word>());
        assert!(committed <= a.footprint_bytes());

        // Flag planes commit in 64-lane tiles (one u64 per tile).
        a.cmp(0, CmpOp::Lt, pf(2), p(1), Src::Scalar(Word(5)), &all);
        assert_eq!(a.committed_bytes(), committed + 2 * std::mem::size_of::<u64>());
    }

    #[test]
    fn sparse_million_pe_array_constructs_cheaply() {
        let t0 = std::time::Instant::now();
        let mut a = PeArray::new(ArrayConfig {
            num_pes: 1 << 20,
            threads: 1,
            gprs: 16,
            flags: 8,
            lmem_words: 16,
            width: Width::W32,
            parallel_threshold: 4096,
            simd: SimdLevel::detect(),
            segments: SegmentGeometry::new(1 << 20, 0),
        });
        let built = t0.elapsed();
        // Zero-page-backed planes: ~128 MB of virtual reservation must
        // construct without faulting it in. The budget is generous (CI
        // hosts vary); an eager memset of the planes costs well over it.
        assert!(
            built < std::time::Duration::from_millis(500),
            "2^20-PE construction took {built:?}"
        );
        assert_eq!(a.committed_bytes(), 0);
        assert_eq!(a.segments().count(), 256);

        // Touch one lane: exactly one 4096-lane segment slice commits.
        a.set_gpr(123_456, 0, 1, Word(1));
        assert_eq!(a.committed_bytes(), 4096 * std::mem::size_of::<Word>());
    }

    #[test]
    fn fill_active_matches_flag_plane() {
        let mut a = small();
        let all = ActiveMask::all(8);
        a.pidx(0, p(1), &all);
        a.cmp(0, CmpOp::Lt, pf(2), p(1), Src::Scalar(Word(5)), &all);
        let mut m = ActiveMask::new(8);
        a.fill_active(0, Mask::Flag(pf(2)), &mut m);
        assert_eq!(m.to_bools(), a.flag_column(0, 2));
        a.fill_active(0, Mask::All, &mut m);
        assert_eq!(m.count(), 8);
    }
}
