//! The PE array: whole-array functional operations used by the instruction
//! executors in `asc-core`.
//!
//! Every parallel operation takes the issuing *thread* (register files are
//! split per thread) and an *active* predicate derived from the
//! instruction's mask flag. Inactive PEs are completely unaffected — the
//! defining semantics of associative masked execution.
//!
//! For large arrays (the scaling experiments run up to 2¹⁶ PEs) the
//! per-PE loop runs under Rayon; below [`ArrayConfig::parallel_threshold`]
//! it runs serially, and both paths produce identical results.

use asc_isa::{AluOp, CmpOp, FlagOp, Mask, PFlag, PReg, Width, Word};
use rayon::prelude::*;

use crate::memory::{LocalMemory, MemFault};
use crate::regfile::{FlagFile, RegFile};

/// Geometry of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Number of PEs.
    pub num_pes: usize,
    /// Hardware thread contexts (register files are split this many ways).
    pub threads: usize,
    /// General-purpose registers per thread (16 in this ISA).
    pub gprs: usize,
    /// Flag registers per thread (8 in this ISA).
    pub flags: usize,
    /// Local memory words per PE.
    pub lmem_words: usize,
    /// Datapath width.
    pub width: Width,
    /// Use Rayon when `num_pes` is at least this large.
    pub parallel_threshold: usize,
}

impl ArrayConfig {
    /// The FPGA prototype's array: 16 PEs, 16 threads, 1 KB local memory
    /// (512 16-bit words).
    pub fn prototype() -> ArrayConfig {
        ArrayConfig {
            num_pes: 16,
            threads: 16,
            gprs: asc_isa::NUM_GPRS,
            flags: asc_isa::NUM_FLAGS,
            lmem_words: 512,
            width: Width::W16,
            parallel_threshold: 4096,
        }
    }
}

/// Second operand of a parallel ALU/compare operation: another parallel
/// register, a broadcast scalar, or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A parallel register (per-PE value).
    Reg(PReg),
    /// A broadcast scalar value (already resolved by the control unit).
    Scalar(Word),
    /// An immediate (sign-extended by the decoder).
    Imm(Word),
}

/// A memory fault attributed to a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeFault {
    /// Which PE faulted (lowest index if several).
    pub pe: usize,
    /// The fault.
    pub fault: MemFault,
}

impl std::fmt::Display for PeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE {}: {}", self.pe, self.fault)
    }
}

impl std::error::Error for PeFault {}

/// One processing element's architectural state.
#[derive(Debug, Clone)]
struct Pe {
    lmem: LocalMemory,
    gprs: RegFile,
    flags: FlagFile,
}

/// The PE array.
#[derive(Debug, Clone)]
pub struct PeArray {
    cfg: ArrayConfig,
    pes: Vec<Pe>,
}

impl PeArray {
    /// Allocate a zeroed array.
    pub fn new(cfg: ArrayConfig) -> PeArray {
        let pe = Pe {
            lmem: LocalMemory::new(cfg.lmem_words),
            gprs: RegFile::new(cfg.threads, cfg.gprs),
            flags: FlagFile::new(cfg.threads, cfg.flags),
        };
        PeArray { cfg, pes: vec![pe; cfg.num_pes] }
    }

    /// Array geometry.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.cfg.num_pes
    }

    fn width(&self) -> Width {
        self.cfg.width
    }

    /// The active vector for a thread and mask: `active[i]` is true iff PE
    /// `i` participates.
    pub fn active(&self, thread: usize, mask: Mask) -> Vec<bool> {
        match mask {
            Mask::All => vec![true; self.cfg.num_pes],
            Mask::Flag(f) => self.flag_column(thread, f.index()),
        }
    }

    fn apply<F>(&mut self, f: F)
    where
        F: Fn(usize, &mut Pe) + Sync + Send,
    {
        if self.pes.len() >= self.cfg.parallel_threshold {
            self.pes.par_iter_mut().enumerate().for_each(|(i, pe)| f(i, pe));
        } else {
            for (i, pe) in self.pes.iter_mut().enumerate() {
                f(i, pe);
            }
        }
    }

    fn try_apply<F>(&mut self, f: F) -> Result<(), PeFault>
    where
        F: Fn(usize, &mut Pe) -> Result<(), MemFault> + Sync + Send,
    {
        if self.pes.len() >= self.cfg.parallel_threshold {
            let fault = self
                .pes
                .par_iter_mut()
                .enumerate()
                .filter_map(|(i, pe)| f(i, pe).err().map(|fault| PeFault { pe: i, fault }))
                .min_by_key(|pf| pf.pe);
            match fault {
                Some(pf) => Err(pf),
                None => Ok(()),
            }
        } else {
            for (i, pe) in self.pes.iter_mut().enumerate() {
                f(i, pe).map_err(|fault| PeFault { pe: i, fault })?;
            }
            Ok(())
        }
    }

    fn src_value(pe: &Pe, thread: usize, src: Src) -> Word {
        match src {
            Src::Reg(r) => pe.gprs.read(thread, r.index()),
            Src::Scalar(v) | Src::Imm(v) => v,
        }
    }

    /// Parallel ALU operation: `pd = pa op src` in active PEs.
    pub fn alu(&mut self, thread: usize, op: AluOp, pd: PReg, pa: PReg, src: Src, active: &[bool]) {
        let w = self.width();
        self.apply(|i, pe| {
            if active[i] {
                let a = pe.gprs.read(thread, pa.index());
                let b = Self::src_value(pe, thread, src);
                pe.gprs.write(thread, pd.index(), op.apply(a, b, w));
            }
        });
    }

    /// Parallel comparison (associative search): `fd = pa cmp src` in
    /// active PEs.
    pub fn cmp(
        &mut self,
        thread: usize,
        op: CmpOp,
        fd: PFlag,
        pa: PReg,
        src: Src,
        active: &[bool],
    ) {
        let w = self.width();
        self.apply(|i, pe| {
            if active[i] {
                let a = pe.gprs.read(thread, pa.index());
                let b = Self::src_value(pe, thread, src);
                pe.flags.write(thread, fd.index(), op.apply(a, b, w));
            }
        });
    }

    /// Parallel flag logic: `fd = fa op fb` in active PEs.
    pub fn flag_op(
        &mut self,
        thread: usize,
        op: FlagOp,
        fd: PFlag,
        fa: PFlag,
        fb: PFlag,
        active: &[bool],
    ) {
        self.apply(|i, pe| {
            if active[i] {
                let a = pe.flags.read(thread, fa.index());
                let b = pe.flags.read(thread, fb.index());
                pe.flags.write(thread, fd.index(), op.apply(a, b));
            }
        });
    }

    /// Effective address: unsigned base register plus sign-extended offset,
    /// computed at full precision (the hardware address path is wider than
    /// the data path so a 1 KB local memory stays addressable).
    fn effective_addr(base: Word, off: i32) -> i64 {
        base.to_u32() as i64 + off as i64
    }

    /// Parallel load: `pd = lmem[pa + off]` in active PEs.
    pub fn load(
        &mut self,
        thread: usize,
        pd: PReg,
        base: PReg,
        off: i32,
        active: &[bool],
    ) -> Result<(), PeFault> {
        self.try_apply(|i, pe| {
            if active[i] {
                let b = pe.gprs.read(thread, base.index());
                let ea = Self::effective_addr(b, off);
                let addr = u32::try_from(ea).map_err(|_| MemFault {
                    addr: ea as u32,
                    capacity: pe.lmem.capacity() as u32,
                    is_store: false,
                })?;
                let v = pe.lmem.read(addr)?;
                pe.gprs.write(thread, pd.index(), v);
            }
            Ok(())
        })
    }

    /// Parallel store: `lmem[pa + off] = ps` in active PEs.
    pub fn store(
        &mut self,
        thread: usize,
        ps: PReg,
        base: PReg,
        off: i32,
        active: &[bool],
    ) -> Result<(), PeFault> {
        self.try_apply(|i, pe| {
            if active[i] {
                let b = pe.gprs.read(thread, base.index());
                let ea = Self::effective_addr(b, off);
                let addr = u32::try_from(ea).map_err(|_| MemFault {
                    addr: ea as u32,
                    capacity: pe.lmem.capacity() as u32,
                    is_store: true,
                })?;
                let v = pe.gprs.read(thread, ps.index());
                pe.lmem.write(addr, v)?;
            }
            Ok(())
        })
    }

    /// Write each PE's index (truncated to the width) into `pd`.
    pub fn pidx(&mut self, thread: usize, pd: PReg, active: &[bool]) {
        let w = self.width();
        self.apply(|i, pe| {
            if active[i] {
                pe.gprs.write(thread, pd.index(), Word::new(i as u32, w));
            }
        });
    }

    /// Inter-PE shift through the interconnection network:
    /// `pd[i] = pa[i - dist]` for active PEs, zero shifted in at the
    /// boundary. The column is latched before any write, so `pd == pa` is
    /// well defined.
    pub fn shift(&mut self, thread: usize, pd: PReg, pa: PReg, dist: i32, active: &[bool]) {
        let col = self.gpr_column(thread, pa.index());
        let n = col.len() as i64;
        self.apply(|i, pe| {
            if active[i] {
                let src = i as i64 - dist as i64;
                let v = if (0..n).contains(&src) { col[src as usize] } else { Word::ZERO };
                pe.gprs.write(thread, pd.index(), v);
            }
        });
    }

    /// Broadcast a scalar into `pd` of active PEs.
    pub fn movs(&mut self, thread: usize, pd: PReg, value: Word, active: &[bool]) {
        self.apply(|i, pe| {
            if active[i] {
                pe.gprs.write(thread, pd.index(), value);
            }
        });
    }

    /// Write a whole flag column (the multiple response resolver's parallel
    /// result). Only active PEs are updated.
    pub fn write_flag_column(
        &mut self,
        thread: usize,
        fd: PFlag,
        values: &[bool],
        active: &[bool],
    ) {
        self.apply(|i, pe| {
            if active[i] {
                pe.flags.write(thread, fd.index(), values[i]);
            }
        });
    }

    /// Snapshot a GPR across all PEs (input to the reduction network).
    pub fn gpr_column(&self, thread: usize, reg: usize) -> Vec<Word> {
        self.pes.iter().map(|pe| pe.gprs.read(thread, reg)).collect()
    }

    /// Snapshot a flag across all PEs.
    pub fn flag_column(&self, thread: usize, reg: usize) -> Vec<bool> {
        self.pes.iter().map(|pe| pe.flags.read(thread, reg)).collect()
    }

    /// Clear one thread's registers and flags in every PE (thread
    /// allocation).
    pub fn clear_thread(&mut self, thread: usize) {
        self.apply(|_, pe| {
            pe.gprs.clear_thread(thread);
            pe.flags.clear_thread(thread);
        });
    }

    // ---------------------------------------------------------- host API

    /// Host access to one PE's local memory.
    pub fn lmem(&self, pe: usize) -> &LocalMemory {
        &self.pes[pe].lmem
    }

    /// Host mutable access to one PE's local memory (data distribution —
    /// the simulator's stand-in for off-chip memory traffic).
    pub fn lmem_mut(&mut self, pe: usize) -> &mut LocalMemory {
        &mut self.pes[pe].lmem
    }

    /// Host read of one PE's GPR.
    pub fn gpr(&self, pe: usize, thread: usize, reg: usize) -> Word {
        self.pes[pe].gprs.read(thread, reg)
    }

    /// Host write of one PE's GPR.
    pub fn set_gpr(&mut self, pe: usize, thread: usize, reg: usize, v: Word) {
        self.pes[pe].gprs.write(thread, reg, v);
    }

    /// Host read of one PE's flag.
    pub fn flag(&self, pe: usize, thread: usize, reg: usize) -> bool {
        self.pes[pe].flags.read(thread, reg)
    }

    /// Host write of one PE's flag.
    pub fn set_flag(&mut self, pe: usize, thread: usize, reg: usize, v: bool) {
        self.pes[pe].flags.write(thread, reg, v);
    }

    /// Distribute one value per PE into local memory at `addr` (column
    /// layout: `lmem[addr]` of PE `i` = `data[i]`).
    pub fn scatter_column(&mut self, addr: u32, data: &[Word]) -> Result<(), PeFault> {
        assert_eq!(data.len(), self.cfg.num_pes, "one value per PE");
        for (i, pe) in self.pes.iter_mut().enumerate() {
            pe.lmem.write(addr, data[i]).map_err(|fault| PeFault { pe: i, fault })?;
        }
        Ok(())
    }

    /// Gather `lmem[addr]` from every PE.
    pub fn gather_column(&self, addr: u32) -> Result<Vec<Word>, PeFault> {
        self.pes
            .iter()
            .enumerate()
            .map(|(i, pe)| pe.lmem.read(addr).map_err(|fault| PeFault { pe: i, fault }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PeArray {
        PeArray::new(ArrayConfig {
            num_pes: 8,
            threads: 2,
            gprs: 16,
            flags: 8,
            lmem_words: 32,
            width: Width::W16,
            parallel_threshold: 4096,
        })
    }

    fn p(i: u8) -> PReg {
        PReg::from_index(i)
    }
    fn pf(i: u8) -> PFlag {
        PFlag::from_index(i)
    }

    #[test]
    fn alu_masked() {
        let mut a = small();
        a.pidx(0, p(1), &[true; 8]);
        // add 10 only where index >= 4
        let active: Vec<bool> = (0..8).map(|i| i >= 4).collect();
        a.alu(0, AluOp::Add, p(2), p(1), Src::Imm(Word(10)), &active);
        for i in 0..8 {
            let got = a.gpr(i, 0, 2).to_u32();
            if i >= 4 {
                assert_eq!(got, i as u32 + 10);
            } else {
                assert_eq!(got, 0, "inactive PE must be untouched");
            }
        }
    }

    #[test]
    fn cmp_writes_flags() {
        let mut a = small();
        a.pidx(0, p(1), &[true; 8]);
        a.cmp(0, CmpOp::Lt, pf(1), p(1), Src::Scalar(Word(3)), &[true; 8]);
        assert_eq!(a.flag_column(0, 1), vec![true, true, true, false, false, false, false, false]);
    }

    #[test]
    fn threads_have_separate_registers() {
        let mut a = small();
        a.movs(0, p(5), Word(111), &[true; 8]);
        a.movs(1, p(5), Word(222), &[true; 8]);
        assert_eq!(a.gpr(3, 0, 5), Word(111));
        assert_eq!(a.gpr(3, 1, 5), Word(222));
    }

    #[test]
    fn load_store_round_trip() {
        let mut a = small();
        a.pidx(0, p(1), &[true; 8]);
        a.alu(0, AluOp::Mul, p(2), p(1), Src::Imm(Word(3)), &[true; 8]);
        a.store(0, p(2), p(1), 4, &[true; 8]).unwrap(); // lmem[i+4] = 3i
        a.load(0, p(3), p(1), 4, &[true; 8]).unwrap();
        for i in 0..8u32 {
            assert_eq!(a.gpr(i as usize, 0, 3).to_u32(), 3 * i);
        }
    }

    #[test]
    fn store_fault_reports_lowest_pe() {
        let mut a = small();
        a.pidx(0, p(1), &[true; 8]);
        // address = idx + 30 → PEs 2.. fault (capacity 32)
        let e = a.store(0, p(1), p(1), 30, &[true; 8]).unwrap_err();
        assert_eq!(e.pe, 2);
        assert!(e.fault.is_store);
        assert_eq!(e.fault.addr, 32);
    }

    #[test]
    fn masked_pes_cannot_fault() {
        let mut a = small();
        a.pidx(0, p(1), &[true; 8]);
        let active: Vec<bool> = (0..8).map(|i| i < 2).collect();
        a.store(0, p(1), p(1), 30, &active).unwrap();
    }

    #[test]
    fn scatter_gather() {
        let mut a = small();
        let data: Vec<Word> = (0..8).map(|i| Word(i * i)).collect();
        a.scatter_column(7, &data).unwrap();
        assert_eq!(a.gather_column(7).unwrap(), data);
        assert!(a.scatter_column(32, &data).is_err());
    }

    #[test]
    fn rayon_path_matches_serial() {
        let mk = |threshold| {
            let mut a = PeArray::new(ArrayConfig {
                num_pes: 100,
                threads: 1,
                gprs: 16,
                flags: 8,
                lmem_words: 8,
                width: Width::W8,
                parallel_threshold: threshold,
            });
            let all = vec![true; 100];
            a.pidx(0, p(1), &all);
            a.alu(0, AluOp::Mul, p(2), p(1), Src::Reg(p(1)), &all);
            a.cmp(0, CmpOp::LtU, pf(1), p(2), Src::Imm(Word(50)), &all);
            (a.gpr_column(0, 2), a.flag_column(0, 1))
        };
        assert_eq!(mk(usize::MAX), mk(1));
    }

    #[test]
    fn clear_thread_resets_state() {
        let mut a = small();
        a.movs(0, p(4), Word(9), &[true; 8]);
        a.cmp(0, CmpOp::Eq, pf(2), p(4), Src::Imm(Word(9)), &[true; 8]);
        a.clear_thread(0);
        assert_eq!(a.gpr(0, 0, 4), Word::ZERO);
        assert!(!a.flag(0, 0, 2));
    }

    #[test]
    fn shift_moves_values_between_pes() {
        let mut a = small();
        let all = vec![true; 8];
        a.pidx(0, p(1), &all);
        // shift right by one: pd[i] = pa[i-1]
        a.shift(0, p(2), p(1), 1, &all);
        assert_eq!(
            a.gpr_column(0, 2).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![0, 0, 1, 2, 3, 4, 5, 6]
        );
        // shift left by two: pd[i] = pa[i+2]
        a.shift(0, p(3), p(1), -2, &all);
        assert_eq!(
            a.gpr_column(0, 3).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 6, 7, 0, 0]
        );
    }

    #[test]
    fn shift_in_place_is_well_defined() {
        let mut a = small();
        let all = vec![true; 8];
        a.pidx(0, p(1), &all);
        a.shift(0, p(1), p(1), 1, &all);
        assert_eq!(
            a.gpr_column(0, 1).iter().map(|w| w.to_u32()).collect::<Vec<_>>(),
            vec![0, 0, 1, 2, 3, 4, 5, 6],
            "source column latched before writes"
        );
    }

    #[test]
    fn shift_respects_mask() {
        let mut a = small();
        let all = vec![true; 8];
        a.pidx(0, p(1), &all);
        let active: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        a.shift(0, p(2), p(1), 1, &active);
        let col: Vec<u32> = a.gpr_column(0, 2).iter().map(|w| w.to_u32()).collect();
        assert_eq!(col, vec![0, 0, 1, 0, 3, 0, 5, 0]);
    }

    #[test]
    fn write_flag_column_respects_mask() {
        let mut a = small();
        let vals = vec![true; 8];
        let active: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        a.write_flag_column(0, pf(3), &vals, &active);
        assert_eq!(a.flag_column(0, 3), vec![true, false, true, false, true, false, true, false]);
    }
}
