//! PE local memory: a small word-addressed scratchpad ("one or more block
//! RAMs" in the FPGA prototype; 1 KB per PE). Shared between threads at the
//! hardware level — software partitions it.
//!
//! Out-of-range accesses are a *fault*: the simulator reports them rather
//! than silently wrapping, because a silent wrap hides kernel bugs that
//! real block RAM addressing would expose at a different PE count.

use asc_isa::Word;

/// An out-of-range memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The offending word address.
    pub addr: u32,
    /// Capacity of the memory in words.
    pub capacity: u32,
    /// True for a store, false for a load.
    pub is_store: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} address {} out of range (capacity {} words)",
            if self.is_store { "store" } else { "load" },
            self.addr,
            self.capacity
        )
    }
}

impl std::error::Error for MemFault {}

/// A word-addressed memory (used for PE local memories and for the control
/// unit's scalar data memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalMemory {
    words: Vec<Word>,
}

impl LocalMemory {
    /// Allocate a zeroed memory of `capacity` words.
    pub fn new(capacity: usize) -> LocalMemory {
        LocalMemory { words: vec![Word::ZERO; capacity] }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Load the word at `addr`.
    pub fn read(&self, addr: u32) -> Result<Word, MemFault> {
        self.words.get(addr as usize).copied().ok_or(MemFault {
            addr,
            capacity: self.words.len() as u32,
            is_store: false,
        })
    }

    /// Store `value` at `addr`.
    pub fn write(&mut self, addr: u32, value: Word) -> Result<(), MemFault> {
        let cap = self.words.len() as u32;
        match self.words.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(MemFault { addr, capacity: cap, is_store: true }),
        }
    }

    /// Host-side bulk load starting at `base` (e.g. distributing a data set
    /// across PE memories before a kernel runs — the simulator's stand-in
    /// for the prototype's off-chip memory traffic).
    pub fn load_slice(&mut self, base: usize, data: &[Word]) -> Result<(), MemFault> {
        let end = base + data.len();
        if end > self.words.len() {
            return Err(MemFault {
                addr: end as u32 - 1,
                capacity: self.words.len() as u32,
                is_store: true,
            });
        }
        self.words[base..end].copy_from_slice(data);
        Ok(())
    }

    /// Host-side view of the contents.
    pub fn as_slice(&self) -> &[Word] {
        &self.words
    }

    /// Reset all words to zero.
    pub fn clear(&mut self) {
        self.words.fill(Word::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write() {
        let mut m = LocalMemory::new(4);
        m.write(2, Word(99)).unwrap();
        assert_eq!(m.read(2).unwrap(), Word(99));
        assert_eq!(m.read(0).unwrap(), Word::ZERO);
    }

    #[test]
    fn faults_carry_details() {
        let mut m = LocalMemory::new(4);
        let e = m.read(4).unwrap_err();
        assert_eq!(e, MemFault { addr: 4, capacity: 4, is_store: false });
        let e = m.write(100, Word(1)).unwrap_err();
        assert!(e.is_store);
        assert_eq!(e.addr, 100);
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn bulk_load() {
        let mut m = LocalMemory::new(8);
        m.load_slice(2, &[Word(1), Word(2), Word(3)]).unwrap();
        assert_eq!(m.read(2).unwrap(), Word(1));
        assert_eq!(m.read(4).unwrap(), Word(3));
        assert!(m.load_slice(6, &[Word(0); 3]).is_err());
    }

    #[test]
    fn clear_zeroes() {
        let mut m = LocalMemory::new(2);
        m.write(0, Word(5)).unwrap();
        m.clear();
        assert_eq!(m.read(0).unwrap(), Word::ZERO);
    }
}
