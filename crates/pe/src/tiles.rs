//! Tile-scoped mutable views of one thread's PE state, the substrate of
//! the block-fusion engine in `asc-core`.
//!
//! A *tile* is 64 consecutive PEs — exactly one flag-bitplane word, the
//! matching 64-word slice of every GPR plane, and the 64 lane-local
//! columns of local memory. Fused basic blocks are executed tile-by-tile:
//! all of a block's instructions are applied to one tile before advancing
//! to the next, so a tile's working set (a handful of 64-word register
//! slices plus flag words) stays cache-resident across the whole block
//! instead of being evicted between every pair of dependent full-array
//! sweeps.
//!
//! Three layers:
//!
//! * [`ThreadTiles`] — a safe view borrowing one thread's GPR and flag
//!   regions (plus local memory, which is shared hardware but lane-local
//!   per PE). Constructed by [`crate::PeArray::thread_tiles`].
//! * [`RawTiles`] — a `Sync` raw-parts handle derived from a
//!   `ThreadTiles` borrow, from which per-tile windows are carved.
//! * [`TileWindow`] — one tile's window: every access it offers is
//!   confined to that tile's 64 lanes, so windows over *distinct* tiles
//!   touch provably disjoint memory. That disjointness is what lets the
//!   rayon execution regime parallelize over tiles (instead of over one
//!   instruction's lanes) without locks.
//!
//! The architectural invariants are enforced at this layer: writes
//! through [`TileWindow::gpr_mut`] must skip register 0 (debug-asserted —
//! the zero register's plane stays all-zero), and
//! [`TileWindow::set_flag_word`] masks tail bits of a short last tile so
//! the flag-plane tail invariant propagates.

use std::marker::PhantomData;

use asc_isa::{Width, Word};

use crate::bitmask::{tail_mask, words_for, BITS_PER_WORD};
use crate::memory::MemFault;

/// Lanes per tile: one flag-bitplane word.
pub const TILE_LANES: usize = BITS_PER_WORD;

/// Mutable tile-wise view of one thread's register planes, flag
/// bitplanes, and the (shared, but lane-local) PE local memory.
#[derive(Debug)]
pub struct ThreadTiles<'a> {
    /// This thread's GPR region: `gprs_per_thread` planes of `num_pes`
    /// words each.
    gprs: &'a mut [Word],
    /// This thread's flag region: `flags_per_thread` bitplanes of
    /// `words_for(num_pes)` words each.
    flags: &'a mut [u64],
    /// All of local memory, column-major (`addr * num_pes + pe`).
    lmem: &'a mut [Word],
    num_pes: usize,
    lmem_words: usize,
    width: Width,
}

impl<'a> ThreadTiles<'a> {
    pub(crate) fn new(
        gprs: &'a mut [Word],
        flags: &'a mut [u64],
        lmem: &'a mut [Word],
        num_pes: usize,
        lmem_words: usize,
        width: Width,
    ) -> ThreadTiles<'a> {
        debug_assert_eq!(lmem.len(), lmem_words * num_pes);
        debug_assert_eq!(gprs.len() % num_pes, 0);
        debug_assert_eq!(flags.len() % words_for(num_pes), 0);
        ThreadTiles { gprs, flags, lmem, num_pes, lmem_words, width }
    }

    /// Number of PEs covered by the view.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of 64-PE tiles (= flag plane words).
    pub fn num_tiles(&self) -> usize {
        words_for(self.num_pes)
    }

    /// Datapath width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The raw-parts handle tile windows are carved from. The handle
    /// borrows `self` mutably, so no other access to the thread's state
    /// can coexist with the windows.
    pub fn raw(&mut self) -> RawTiles<'_> {
        RawTiles {
            gprs: self.gprs.as_mut_ptr(),
            flags: self.flags.as_mut_ptr(),
            lmem: self.lmem.as_mut_ptr(),
            num_pes: self.num_pes,
            lmem_words: self.lmem_words,
            width: self.width,
            _lifetime: PhantomData,
        }
    }

    /// A safe window over one tile (serial use; for the parallel regime
    /// go through [`ThreadTiles::raw`]).
    pub fn window(&mut self, tile: usize) -> TileWindow<'_> {
        let raw = self.raw();
        // SAFETY: `raw` borrows `self` mutably and is consumed here, so
        // this is the only window alive for that borrow.
        unsafe { raw.window(tile) }
    }
}

/// `Sync` raw-parts handle over one thread's tiles, carved into per-tile
/// [`TileWindow`]s. Exists so the rayon regime can hand distinct tiles to
/// distinct workers: every window access is confined to its own tile's
/// lanes, so windows over distinct tiles never alias.
#[derive(Debug, Clone, Copy)]
pub struct RawTiles<'a> {
    gprs: *mut Word,
    flags: *mut u64,
    lmem: *mut Word,
    num_pes: usize,
    lmem_words: usize,
    width: Width,
    _lifetime: PhantomData<&'a mut Word>,
}

// SAFETY: the handle is only a capability to construct per-tile windows;
// the unsafe contract of `window` (distinct live tiles) makes concurrent
// use race-free, and the PhantomData ties it to the ThreadTiles borrow.
unsafe impl Send for RawTiles<'_> {}
unsafe impl Sync for RawTiles<'_> {}

impl<'a> RawTiles<'a> {
    /// Number of 64-PE tiles.
    pub fn num_tiles(&self) -> usize {
        words_for(self.num_pes)
    }

    /// Carve out the window for `tile`.
    ///
    /// # Safety
    ///
    /// `tile` must be in range, and no two *live* windows from handles
    /// over the same `ThreadTiles` borrow may name the same tile. Windows
    /// over distinct tiles are disjoint by construction (every access is
    /// bounds-confined to the tile's lanes), so they may be used from
    /// different threads concurrently.
    pub unsafe fn window(self, tile: usize) -> TileWindow<'a> {
        debug_assert!(tile < self.num_tiles());
        let base = tile * TILE_LANES;
        TileWindow { raw: self, tile, base, lanes: TILE_LANES.min(self.num_pes - base) }
    }
}

/// One tile's mutable window: the tile's 64-lane span of every GPR plane,
/// one word of every flag bitplane, and the tile's local-memory columns.
#[derive(Debug)]
pub struct TileWindow<'a> {
    raw: RawTiles<'a>,
    tile: usize,
    base: usize,
    lanes: usize,
}

impl TileWindow<'_> {
    /// Tile index (= flag plane word index).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Index of this tile's first lane.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of valid lanes (64 except for a short last tile).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Datapath width.
    pub fn width(&self) -> Width {
        self.raw.width
    }

    /// The all-active mask word for this tile: one bit per valid lane.
    pub fn full_word(&self) -> u64 {
        if self.lanes == TILE_LANES {
            u64::MAX
        } else {
            tail_mask(self.lanes)
        }
    }

    /// Latch this tile's slice of a GPR plane into a caller-owned buffer
    /// (so a destination plane may alias the source). Returns the latched
    /// slice.
    #[inline]
    pub fn copy_gprs<'b>(&self, reg: usize, out: &'b mut [Word; TILE_LANES]) -> &'b [Word] {
        // SAFETY: confined to this tile's lanes of plane `reg`.
        let src = unsafe {
            std::slice::from_raw_parts(
                self.raw.gprs.add(reg * self.raw.num_pes + self.base),
                self.lanes,
            )
        };
        out[..self.lanes].copy_from_slice(src);
        &out[..self.lanes]
    }

    /// Mutable tile slice of a GPR plane. Register 0 is hardwired zero;
    /// callers must skip writes to it.
    #[inline]
    pub fn gpr_mut(&mut self, reg: usize) -> &mut [Word] {
        debug_assert_ne!(reg, 0, "writes to the zero register must be skipped by the caller");
        // SAFETY: confined to this tile's lanes of plane `reg`; `&mut
        // self` makes this the window's only live view.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.raw.gprs.add(reg * self.raw.num_pes + self.base),
                self.lanes,
            )
        }
    }

    /// This tile's word of a flag bitplane.
    #[inline]
    pub fn flag_word(&self, flag: usize) -> u64 {
        // SAFETY: one word per (flag, tile), confined to this tile.
        unsafe { *self.raw.flags.add(flag * self.raw.num_tiles() + self.tile) }
    }

    /// Overwrite this tile's word of a flag bitplane, preserving the tail
    /// invariant (bits at lanes ≥ `num_pes` are forced to zero).
    #[inline]
    pub fn set_flag_word(&mut self, flag: usize, word: u64) {
        let clipped = word & self.full_word();
        // SAFETY: one word per (flag, tile), confined to this tile.
        unsafe { *self.raw.flags.add(flag * self.raw.num_tiles() + self.tile) = clipped }
    }

    /// Bounds-checked load from lane `j`'s local-memory column at
    /// `base + off` (`j` is a lane index *within* the tile). Address
    /// arithmetic matches the array executor: unsigned base plus
    /// sign-extended offset at full precision.
    #[inline]
    pub fn lmem_checked_read(&self, base: Word, off: i32, j: usize) -> Result<Word, MemFault> {
        let addr = self.check_addr(base, off, false)?;
        debug_assert!(j < self.lanes);
        // SAFETY: `addr` is bounds-checked; `base + j` is a valid lane.
        Ok(unsafe { *self.raw.lmem.add(addr * self.raw.num_pes + self.base + j) })
    }

    /// Bounds-checked store to lane `j`'s local-memory column.
    #[inline]
    pub fn lmem_checked_write(
        &mut self,
        base: Word,
        off: i32,
        j: usize,
        v: Word,
    ) -> Result<(), MemFault> {
        let addr = self.check_addr(base, off, true)?;
        debug_assert!(j < self.lanes);
        // SAFETY: `addr` is bounds-checked; `base + j` is a valid lane,
        // and local memory is lane-local, so distinct tiles' stores are
        // disjoint.
        unsafe { *self.raw.lmem.add(addr * self.raw.num_pes + self.base + j) = v }
        Ok(())
    }

    /// This tile's lanes of the local-memory row at `addr` (one word per
    /// lane, same address in every column). Callers must have
    /// bounds-checked `addr` via [`TileWindow::lmem_addr`].
    #[inline]
    pub fn lmem_row(&self, addr: usize) -> &[Word] {
        debug_assert!(addr < self.raw.lmem_words);
        // SAFETY: `addr` is in range and the slice is confined to this
        // tile's lanes of the row.
        unsafe {
            std::slice::from_raw_parts(
                self.raw.lmem.add(addr * self.raw.num_pes + self.base),
                self.lanes,
            )
        }
    }

    /// Mutable row access; same contract as [`TileWindow::lmem_row`].
    /// Local memory is lane-local, so distinct tiles' rows are disjoint.
    #[inline]
    pub fn lmem_row_mut(&mut self, addr: usize) -> &mut [Word] {
        debug_assert!(addr < self.raw.lmem_words);
        // SAFETY: `addr` is in range, the slice is confined to this
        // tile's lanes, and `&mut self` makes this the only live view.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.raw.lmem.add(addr * self.raw.num_pes + self.base),
                self.lanes,
            )
        }
    }

    /// Resolve and bounds-check a lane-uniform effective address (the
    /// whole tile reads/writes the same row). Fault identity matches the
    /// per-lane accessors: unsigned base plus sign-extended offset at
    /// full precision.
    #[inline]
    pub fn lmem_addr(&self, base: Word, off: i32, is_store: bool) -> Result<usize, MemFault> {
        self.check_addr(base, off, is_store)
    }

    #[inline]
    fn check_addr(&self, base: Word, off: i32, is_store: bool) -> Result<usize, MemFault> {
        let ea = base.to_u32() as i64 + off as i64;
        if (0..self.raw.lmem_words as i64).contains(&ea) {
            Ok(ea as usize)
        } else {
            Err(MemFault { addr: ea as u32, capacity: self.raw.lmem_words as u32, is_store })
        }
    }
}

#[cfg(test)]
mod tests {
    use asc_isa::{Width, Word};

    use crate::array::{ArrayConfig, PeArray};

    fn array(n: usize) -> PeArray {
        PeArray::new(ArrayConfig {
            num_pes: n,
            threads: 2,
            gprs: 16,
            flags: 8,
            lmem_words: 32,
            width: Width::W16,
            parallel_threshold: 4096,
            simd: crate::simd::SimdLevel::detect(),
            segments: crate::segments::SegmentGeometry::new(n, 0),
        })
    }

    #[test]
    fn geometry_and_tail() {
        let mut a = array(100);
        let mut t = a.thread_tiles(1);
        assert_eq!(t.num_tiles(), 2);
        let w0 = t.window(0);
        assert_eq!((w0.lanes(), w0.full_word()), (64, u64::MAX));
        let w1 = t.window(1);
        assert_eq!((w1.base(), w1.lanes()), (64, 36));
        assert_eq!(w1.full_word(), (1u64 << 36) - 1);
    }

    #[test]
    fn windows_alias_the_array() {
        let mut a = array(100);
        let v42 = Word::new(42, Width::W16);
        let v7 = Word::new(7, Width::W16);
        a.set_gpr(70, 1, 3, v42);
        a.set_flag(70, 1, 2, true);
        {
            let mut t = a.thread_tiles(1);
            let mut w = t.window(1);
            let mut latch = [Word::ZERO; super::TILE_LANES];
            assert_eq!(w.copy_gprs(3, &mut latch)[70 - 64], v42);
            assert_eq!(w.flag_word(2), 1u64 << (70 - 64));
            w.gpr_mut(3)[70 - 64] = v7;
            w.set_flag_word(2, u64::MAX); // tail bits must be clipped
            w.lmem_checked_write(Word::new(4, Width::W16), 1, 70 - 64, v7).unwrap();
            assert!(w.lmem_checked_read(Word::new(40, Width::W16), 0, 0).is_err());
        }
        assert_eq!(a.gpr(70, 1, 3), v7);
        assert!(a.flag(99, 1, 2));
        assert_eq!(a.flag_plane(1, 2)[1], (1u64 << 36) - 1);
        assert_eq!(a.lmem_word(70, 5).unwrap(), v7);
    }

    #[test]
    fn other_threads_are_not_visible() {
        let mut a = array(64);
        a.set_gpr(0, 0, 5, Word::new(9, Width::W16));
        let mut t = a.thread_tiles(1);
        let w = t.window(0);
        let mut latch = [Word::ZERO; super::TILE_LANES];
        assert_eq!(w.copy_gprs(5, &mut latch)[0], Word::ZERO, "thread 1 must not see thread 0");
    }

    #[test]
    fn raw_windows_cover_distinct_tiles() {
        let mut a = array(128);
        let mut t = a.thread_tiles(0);
        let raw = t.raw();
        // SAFETY: distinct tiles.
        let (mut w0, mut w1) = unsafe { (raw.window(0), raw.window(1)) };
        w0.gpr_mut(1)[0] = Word::new(1, Width::W16);
        w1.gpr_mut(1)[0] = Word::new(2, Width::W16);
        assert_eq!(a.gpr(0, 0, 1).to_u32(), 1);
        assert_eq!(a.gpr(64, 0, 1).to_u32(), 2);
    }
}
