//! Multiplier and divider configuration and the structural-hazard model of
//! the sequential units.
//!
//! The multiplier "is optional and can be implemented in one of two ways":
//! a fast, fully pipelined unit built from hard multiplier blocks, or a
//! sequential unit that "uses fewer FPGA resources, but is slower and
//! cannot be used by multiple threads simultaneously". The divider "is
//! only available as a sequential unit", and "since division is an
//! uncommon operation, structural hazards for the divider should not
//! degrade performance significantly" — a claim experiment E11 tests.

/// How the multiplier is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiplierKind {
    /// No multiplier: `mul`/`mulh` are illegal instructions.
    None,
    /// Fully pipelined (hard multiplier blocks): initiation 1/cycle,
    /// latency `latency` cycles.
    Pipelined {
        /// Result latency in cycles.
        latency: u64,
    },
    /// Sequential (shift-add): occupies the unit for `cycles` cycles; only
    /// one operation — from any thread — may be in flight.
    Sequential {
        /// Cycles per operation.
        cycles: u64,
    },
}

impl MultiplierKind {
    /// Default pipelined multiplier (3-cycle, typical of FPGA hard-block
    /// multipliers at this clock rate).
    pub const DEFAULT_PIPELINED: MultiplierKind = MultiplierKind::Pipelined { latency: 3 };

    /// Default sequential multiplier: one bit of the multiplier operand per
    /// cycle (shift-add), so `width` cycles.
    pub const fn default_sequential(width_bits: u32) -> MultiplierKind {
        MultiplierKind::Sequential { cycles: width_bits as u64 }
    }
}

/// Divider configuration: always sequential ("only available as a
/// sequential unit"), or absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DividerConfig {
    /// No divider: `div`/`rem` are illegal instructions.
    None,
    /// Sequential restoring divider taking `cycles` cycles per operation.
    Sequential {
        /// Cycles per operation.
        cycles: u64,
    },
}

impl DividerConfig {
    /// Default: one quotient bit per cycle plus setup — `width + 2` cycles.
    pub const fn default_sequential(width_bits: u32) -> DividerConfig {
        DividerConfig::Sequential { cycles: width_bits as u64 + 2 }
    }
}

/// Occupancy tracker for a sequential (non-pipelined) functional unit: the
/// structural hazard. One instance is shared by all threads.
#[derive(Debug, Clone, Default)]
pub struct SequentialUnit {
    busy_until: u64,
    /// Total cycles any issue was rejected because the unit was busy
    /// (structural-hazard stall statistic).
    pub busy_rejections: u64,
}

impl SequentialUnit {
    /// New, idle unit.
    pub fn new() -> SequentialUnit {
        SequentialUnit::default()
    }

    /// Is the unit free at `cycle`?
    pub fn is_free(&self, cycle: u64) -> bool {
        cycle >= self.busy_until
    }

    /// Try to claim the unit at `cycle` for `duration` cycles. Returns the
    /// completion cycle on success; `None` (and counts a rejection) if
    /// busy.
    pub fn try_claim(&mut self, cycle: u64, duration: u64) -> Option<u64> {
        if self.is_free(cycle) {
            self.busy_until = cycle + duration;
            Some(self.busy_until)
        } else {
            self.busy_rejections += 1;
            None
        }
    }

    /// Cycle at which the unit becomes free.
    pub fn free_at(&self) -> u64 {
        self.busy_until
    }

    /// Reset to idle.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.busy_rejections = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_release() {
        let mut u = SequentialUnit::new();
        assert!(u.is_free(0));
        assert_eq!(u.try_claim(0, 8), Some(8));
        assert!(!u.is_free(7));
        assert!(u.is_free(8));
        assert_eq!(u.try_claim(3, 8), None);
        assert_eq!(u.busy_rejections, 1);
        assert_eq!(u.try_claim(8, 4), Some(12));
    }

    #[test]
    fn defaults() {
        assert_eq!(MultiplierKind::default_sequential(8), MultiplierKind::Sequential { cycles: 8 });
        assert_eq!(DividerConfig::default_sequential(8), DividerConfig::Sequential { cycles: 10 });
        assert_eq!(MultiplierKind::DEFAULT_PIPELINED, MultiplierKind::Pipelined { latency: 3 });
    }

    #[test]
    fn reset() {
        let mut u = SequentialUnit::new();
        u.try_claim(0, 100);
        u.try_claim(1, 1);
        u.reset();
        assert!(u.is_free(0));
        assert_eq!(u.busy_rejections, 0);
    }
}
