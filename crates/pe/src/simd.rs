//! Runtime-dispatched SIMD kernels for the dense inner loops.
//!
//! Every plane operation ultimately reduces to one of four *chunk
//! primitives* over at most 64 lanes (one [`crate::bitmask`] mask word):
//! an ALU op against a register plane or a broadcast scalar, or a compare
//! against the same two operand forms. This module provides those
//! primitives as **monomorphized function pointers** — the operation is a
//! const generic, so selecting a kernel once per instruction (or once per
//! compiled block) hoists the op dispatch entirely out of the lane loop —
//! in three tiers:
//!
//! * **Scalar** — the portable reference loops, built on the exact
//!   [`asc_isa::Word`] semantics. Always available; the other tiers must
//!   be bit-identical to it (the `proptest` feature checks this).
//! * **AVX2** — 8 × `u32` lanes per vector. `Word` is
//!   `#[repr(transparent)]` over `u32` with all bits above the datapath
//!   width zero, so a plane chunk is loadable as packed 32-bit lanes;
//!   width-dependent ops mask with `Width::mask` or sign-extend via a
//!   shift pair. Partially-masked groups blend through `vpblendvb`.
//! * **AVX-512F** — 16 × `u32` lanes with native `__mmask16` masked
//!   stores and compares.
//!
//! `Mulh`/`Div`/`Rem` stay scalar at every tier (no 32-lane division in
//! either ISA extension); the vector kernels fall through to the scalar
//! loop for them, so the selector is total over [`AluOp`].
//!
//! The tier is resolved **once per machine construction** by
//! [`SimdLevel::detect`] (hardware probe + the `MTASC_NO_SIMD` escape
//! hatch) and carried in [`crate::ArrayConfig`]; nothing here reads
//! global mutable state. Building with `--cfg mtasc_force_scalar` (the
//! CI portability check) compiles the intrinsics out entirely and the
//! selectors degrade to the scalar tier.
//!
//! ### Kernel contract
//!
//! All slices have equal length `n ≤ 64`; `mw` is the active-lane bitmask
//! for the chunk and its bits at or above `n` must be zero (the
//! [`crate::ActiveMask`] tail invariant). ALU kernels leave `dst` lanes
//! with a clear mask bit untouched and may read all `n` lanes of the
//! sources; compare kernels return a result bit per lane and may compute
//! inactive lanes (callers merge under `mw`). Reading `dst` before
//! writing is allowed, so `dst` may alias neither source — callers latch
//! sources first (the arrays already do, for in-place plane ops).

use asc_isa::{AluOp, CmpOp, Width, Word};

/// Is the x86 SIMD code path compiled in at all?
#[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
const HAVE_X86_SIMD: bool = true;
#[cfg(not(all(target_arch = "x86_64", not(mtasc_force_scalar))))]
const HAVE_X86_SIMD: bool = false;

/// SIMD dispatch tier for the dense lane loops, resolved once at machine
/// construction and carried by value (no global mutable state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loops (the reference semantics).
    Scalar,
    /// 256-bit AVX2 kernels, 8 lanes per vector.
    Avx2,
    /// 512-bit AVX-512F kernels, 16 lanes per vector.
    Avx512,
}

/// `MTASC_NO_SIMD=1` forces the scalar tier everywhere a machine is
/// built afterwards — the blunt-instrument form of `mtasc run --no-simd`,
/// used by the differential tests and CI to time the scalar lane loops.
pub fn simd_disabled() -> bool {
    std::env::var("MTASC_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl SimdLevel {
    /// Probe the host: the widest tier the CPU supports, `Scalar` when
    /// the build has no SIMD path or `MTASC_NO_SIMD` is set. The feature
    /// probe itself is cached by the standard library; the environment is
    /// read fresh on every call so tests can toggle it per machine.
    pub fn detect() -> SimdLevel {
        if simd_disabled() {
            return SimdLevel::Scalar;
        }
        Self::detect_hw()
    }

    /// The hardware tier, ignoring the environment override.
    pub fn detect_hw() -> SimdLevel {
        #[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    }

    /// All tiers the host can actually run, widest last (for differential
    /// tests that force each available tier).
    pub fn available() -> Vec<SimdLevel> {
        let mut tiers = vec![SimdLevel::Scalar];
        let hw = Self::detect_hw();
        if hw >= SimdLevel::Avx2 {
            tiers.push(SimdLevel::Avx2);
        }
        if hw >= SimdLevel::Avx512 {
            tiers.push(SimdLevel::Avx512);
        }
        tiers
    }

    /// Vector kernels active (anything above scalar)?
    pub fn is_simd(self) -> bool {
        self != SimdLevel::Scalar
    }

    /// Short label for fingerprints and stats (`scalar`/`avx2`/`avx512`).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// True while the build carries the x86 kernels (false under
    /// `--cfg mtasc_force_scalar` or on other architectures).
    pub const fn compiled_in() -> bool {
        HAVE_X86_SIMD
    }
}

/// ALU chunk primitive against a register plane: `dst = a op b` under
/// `mw`.
pub type AluRrKernel = fn(dst: &mut [Word], a: &[Word], b: &[Word], w: Width, mw: u64);
/// ALU chunk primitive against a broadcast scalar: `dst = a op s` under
/// `mw`.
pub type AluRsKernel = fn(dst: &mut [Word], a: &[Word], s: Word, w: Width, mw: u64);
/// Compare chunk primitive against a register plane; bit `i` of the
/// result is `a[i] cmp b[i]` (only meaningful under the caller's mask).
pub type CmpRrKernel = fn(a: &[Word], b: &[Word], w: Width) -> u64;
/// Compare chunk primitive against a broadcast scalar.
pub type CmpRsKernel = fn(a: &[Word], s: Word, w: Width) -> u64;

/// Ops the vector tiers fall through to the scalar loop for.
const fn scalar_only(op_code: u8) -> bool {
    matches!(
        op_code,
        code if code == AluOp::Mulh.code()
            || code == AluOp::Div.code()
            || code == AluOp::Rem.code()
    )
}

/// Whether `op` lowers to a vector body at the SIMD tiers. The iterative
/// ops (`mulh`/`div`/`rem`) stay on the scalar reference loop at every
/// tier; everything else vectorizes.
pub fn alu_vectorizes(op: AluOp) -> bool {
    !scalar_only(op.code())
}

#[inline(always)]
fn op_of<const OP: u8>() -> AluOp {
    AluOp::from_code(OP).expect("kernel instantiated with a valid ALU op code")
}

#[inline(always)]
fn cmp_of<const OP: u8>() -> CmpOp {
    CmpOp::from_code(OP).expect("kernel instantiated with a valid compare op code")
}

/// The dense-chunk mask: all `n` lanes active.
#[inline(always)]
pub fn chunk_mask(n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

// --------------------------------------------------------------- scalar

/// Scalar ALU lanes `[from..n)` under `mw`; the shared reference loop and
/// the vector kernels' tail/fallback. `RS` selects the broadcast form (b
/// is ignored and may be empty).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the vector kernels' signature
fn alu_lanes<const RS: bool>(
    op: AluOp,
    dst: &mut [Word],
    a: &[Word],
    b: &[Word],
    s: Word,
    w: Width,
    mw: u64,
    from: usize,
) {
    let n = dst.len();
    debug_assert!(n <= 64 && a.len() == n && (RS || b.len() == n));
    if from >= n {
        return;
    }
    let rest = mw & (u64::MAX << from);
    if rest == chunk_mask(n) & (u64::MAX << from) {
        for i in from..n {
            let rhs = if RS { s } else { b[i] };
            dst[i] = op.apply(a[i], rhs, w);
        }
    } else {
        let mut m = rest;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            let rhs = if RS { s } else { b[i] };
            dst[i] = op.apply(a[i], rhs, w);
            m &= m - 1;
        }
    }
}

/// Scalar compare lanes `[from..)`, returning result bits positioned at
/// their lane index.
#[inline(always)]
fn cmp_lanes<const RS: bool>(
    op: CmpOp,
    a: &[Word],
    b: &[Word],
    s: Word,
    w: Width,
    from: usize,
) -> u64 {
    let mut res = 0u64;
    for i in from..a.len() {
        let rhs = if RS { s } else { b[i] };
        res |= u64::from(op.apply(a[i], rhs, w)) << i;
    }
    res
}

fn alu_rr_scalar<const OP: u8>(dst: &mut [Word], a: &[Word], b: &[Word], w: Width, mw: u64) {
    alu_lanes::<false>(op_of::<OP>(), dst, a, b, Word::ZERO, w, mw, 0);
}

fn alu_rs_scalar<const OP: u8>(dst: &mut [Word], a: &[Word], s: Word, w: Width, mw: u64) {
    alu_lanes::<true>(op_of::<OP>(), dst, a, &[], s, w, mw, 0);
}

fn cmp_rr_scalar<const OP: u8>(a: &[Word], b: &[Word], w: Width) -> u64 {
    cmp_lanes::<false>(cmp_of::<OP>(), a, b, Word::ZERO, w, 0)
}

fn cmp_rs_scalar<const OP: u8>(a: &[Word], s: Word, w: Width) -> u64 {
    cmp_lanes::<true>(cmp_of::<OP>(), a, &[], s, w, 0)
}

/// Monomorphize `$f` over every [`AluOp`] code.
macro_rules! alu_table {
    ($op:expr, $f:ident) => {{
        use asc_isa::AluOp::*;
        match $op {
            Add => $f::<0>,
            Sub => $f::<1>,
            And => $f::<2>,
            Or => $f::<3>,
            Xor => $f::<4>,
            Nor => $f::<5>,
            Sll => $f::<6>,
            Srl => $f::<7>,
            Sra => $f::<8>,
            Mul => $f::<9>,
            Mulh => $f::<10>,
            Div => $f::<11>,
            Rem => $f::<12>,
            Min => $f::<13>,
            Max => $f::<14>,
            MinU => $f::<15>,
            MaxU => $f::<16>,
        }
    }};
}

/// Monomorphize `$f` over every [`CmpOp`] code.
macro_rules! cmp_table {
    ($op:expr, $f:ident) => {{
        use asc_isa::CmpOp::*;
        match $op {
            Eq => $f::<0>,
            Ne => $f::<1>,
            Lt => $f::<2>,
            Le => $f::<3>,
            LtU => $f::<4>,
            LeU => $f::<5>,
        }
    }};
}

// ------------------------------------------------------------ selectors

/// The register-register ALU kernel for a tier and op.
pub fn select_alu_rr(level: SimdLevel, op: AluOp) -> AluRrKernel {
    #[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
    match level {
        SimdLevel::Avx2 => return x86::select_alu_rr_avx2(op),
        SimdLevel::Avx512 => return x86::select_alu_rr_avx512(op),
        SimdLevel::Scalar => {}
    }
    let _ = level;
    alu_table!(op, alu_rr_scalar)
}

/// The register-scalar (broadcast/immediate) ALU kernel for a tier and
/// op.
pub fn select_alu_rs(level: SimdLevel, op: AluOp) -> AluRsKernel {
    #[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
    match level {
        SimdLevel::Avx2 => return x86::select_alu_rs_avx2(op),
        SimdLevel::Avx512 => return x86::select_alu_rs_avx512(op),
        SimdLevel::Scalar => {}
    }
    let _ = level;
    alu_table!(op, alu_rs_scalar)
}

/// The register-register compare kernel for a tier and op.
pub fn select_cmp_rr(level: SimdLevel, op: CmpOp) -> CmpRrKernel {
    #[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
    match level {
        SimdLevel::Avx2 => return x86::select_cmp_rr_avx2(op),
        SimdLevel::Avx512 => return x86::select_cmp_rr_avx512(op),
        SimdLevel::Scalar => {}
    }
    let _ = level;
    cmp_table!(op, cmp_rr_scalar)
}

/// The register-scalar compare kernel for a tier and op.
pub fn select_cmp_rs(level: SimdLevel, op: CmpOp) -> CmpRsKernel {
    #[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
    match level {
        SimdLevel::Avx2 => return x86::select_cmp_rs_avx2(op),
        SimdLevel::Avx512 => return x86::select_cmp_rs_avx512(op),
        SimdLevel::Scalar => {}
    }
    let _ = level;
    cmp_table!(op, cmp_rs_scalar)
}

// ------------------------------------------------------------------ x86

#[cfg(all(target_arch = "x86_64", not(mtasc_force_scalar)))]
mod x86 {
    use std::arch::x86_64::*;

    use super::*;

    /// Word slices load as packed 32-bit lanes (`Word` is
    /// `#[repr(transparent)]` over `u32`).
    #[inline(always)]
    fn lanes_ptr(s: &[Word]) -> *const i32 {
        s.as_ptr() as *const i32
    }

    // ------------------------------------------------------------- AVX2

    /// Sign-extend each lane from the datapath width to 32 bits.
    #[inline(always)]
    unsafe fn sext256(a: __m256i, bits: u32) -> __m256i {
        let sh = _mm_cvtsi32_si128(32 - bits as i32);
        unsafe { _mm256_sra_epi32(_mm256_sll_epi32(a, sh), sh) }
    }

    /// Flip the sign bit: maps unsigned order onto signed compare.
    #[inline(always)]
    unsafe fn uflip256(a: __m256i) -> __m256i {
        unsafe { _mm256_xor_si256(a, _mm256_set1_epi32(i32::MIN)) }
    }

    /// One vector ALU op on 8 lanes; `vm` is the width mask, `bits` the
    /// datapath width. `OP` is constant, so the match folds away at
    /// monomorphization.
    #[inline(always)]
    unsafe fn v_alu256<const OP: u8>(a: __m256i, b: __m256i, vm: __m256i, bits: u32) -> __m256i {
        unsafe {
            let shamt = || _mm256_and_si256(b, _mm256_set1_epi32(bits as i32 - 1));
            match OP {
                0 => _mm256_and_si256(_mm256_add_epi32(a, b), vm),
                1 => _mm256_and_si256(_mm256_sub_epi32(a, b), vm),
                2 => _mm256_and_si256(a, b),
                3 => _mm256_or_si256(a, b),
                4 => _mm256_xor_si256(a, b),
                // operands have no bits above the width, so NOT-in-width
                // is XOR with the width mask
                5 => _mm256_xor_si256(_mm256_or_si256(a, b), vm),
                6 => _mm256_and_si256(_mm256_sllv_epi32(a, shamt()), vm),
                7 => _mm256_srlv_epi32(a, shamt()),
                8 => _mm256_and_si256(_mm256_srav_epi32(sext256(a, bits), shamt()), vm),
                9 => _mm256_and_si256(_mm256_mullo_epi32(a, b), vm),
                // min/max pick one of the operands, so masking the
                // sign-extended winner recovers its original encoding
                13 => _mm256_and_si256(_mm256_min_epi32(sext256(a, bits), sext256(b, bits)), vm),
                14 => _mm256_and_si256(_mm256_max_epi32(sext256(a, bits), sext256(b, bits)), vm),
                15 => _mm256_min_epu32(a, b),
                16 => _mm256_max_epu32(a, b),
                _ => unreachable!("scalar-only op reached the vector path"),
            }
        }
    }

    /// Blend `new` over `keep` for the lanes set in the 8-bit group mask.
    #[inline(always)]
    unsafe fn blend256(keep: __m256i, new: __m256i, gm: u32) -> __m256i {
        unsafe {
            let sel = _mm256_set_epi32(128, 64, 32, 16, 8, 4, 2, 1);
            let hit = _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_set1_epi32(gm as i32), sel), sel);
            _mm256_blendv_epi8(keep, new, hit)
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn alu_avx2<const OP: u8, const RS: bool>(
        dst: &mut [Word],
        a: &[Word],
        b: &[Word],
        s: Word,
        w: Width,
        mw: u64,
    ) {
        if scalar_only(OP) {
            return alu_lanes::<RS>(op_of::<OP>(), dst, a, b, s, w, mw, 0);
        }
        let n = dst.len();
        let bits = w.bits();
        unsafe {
            let vm = _mm256_set1_epi32(w.mask() as i32);
            let vs = _mm256_set1_epi32(s.to_u32() as i32);
            let groups = n / 8;
            for g in 0..groups {
                let gm = (mw >> (g * 8)) as u32 & 0xff;
                if gm == 0 {
                    continue;
                }
                let va = _mm256_loadu_si256(lanes_ptr(a).add(g * 8) as *const __m256i);
                let vb = if RS {
                    vs
                } else {
                    _mm256_loadu_si256(lanes_ptr(b).add(g * 8) as *const __m256i)
                };
                let vr = v_alu256::<OP>(va, vb, vm, bits);
                let pd = dst.as_mut_ptr().add(g * 8) as *mut __m256i;
                if gm == 0xff {
                    _mm256_storeu_si256(pd, vr);
                } else {
                    _mm256_storeu_si256(pd, blend256(_mm256_loadu_si256(pd), vr, gm));
                }
            }
            alu_lanes::<RS>(op_of::<OP>(), dst, a, b, s, w, mw, groups * 8);
        }
    }

    /// One vector compare on 8 lanes, as an 8-bit result mask.
    #[inline(always)]
    unsafe fn v_cmp256<const OP: u8>(a: __m256i, b: __m256i, bits: u32) -> u32 {
        unsafe {
            let mm = |v| _mm256_movemask_ps(_mm256_castsi256_ps(v)) as u32;
            match OP {
                0 => mm(_mm256_cmpeq_epi32(a, b)),
                1 => mm(_mm256_cmpeq_epi32(a, b)) ^ 0xff,
                2 => mm(_mm256_cmpgt_epi32(sext256(b, bits), sext256(a, bits))),
                3 => mm(_mm256_cmpgt_epi32(sext256(a, bits), sext256(b, bits))) ^ 0xff,
                4 => mm(_mm256_cmpgt_epi32(uflip256(b), uflip256(a))),
                5 => mm(_mm256_cmpgt_epi32(uflip256(a), uflip256(b))) ^ 0xff,
                _ => unreachable!("invalid compare code"),
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn cmp_avx2<const OP: u8, const RS: bool>(
        a: &[Word],
        b: &[Word],
        s: Word,
        w: Width,
    ) -> u64 {
        let n = a.len();
        let bits = w.bits();
        let mut res = 0u64;
        unsafe {
            let vs = _mm256_set1_epi32(s.to_u32() as i32);
            let groups = n / 8;
            for g in 0..groups {
                let va = _mm256_loadu_si256(lanes_ptr(a).add(g * 8) as *const __m256i);
                let vb = if RS {
                    vs
                } else {
                    _mm256_loadu_si256(lanes_ptr(b).add(g * 8) as *const __m256i)
                };
                res |= (v_cmp256::<OP>(va, vb, bits) as u64) << (g * 8);
            }
            res | cmp_lanes::<RS>(cmp_of::<OP>(), a, b, s, w, groups * 8)
        }
    }

    // ---------------------------------------------------------- AVX-512

    /// Sign-extend each lane from the datapath width to 32 bits.
    #[inline(always)]
    unsafe fn sext512(a: __m512i, bits: u32) -> __m512i {
        let sh = _mm_cvtsi32_si128(32 - bits as i32);
        unsafe { _mm512_sra_epi32(_mm512_sll_epi32(a, sh), sh) }
    }

    /// One vector ALU op on 16 lanes.
    #[inline(always)]
    unsafe fn v_alu512<const OP: u8>(a: __m512i, b: __m512i, vm: __m512i, bits: u32) -> __m512i {
        unsafe {
            let shamt = || _mm512_and_si512(b, _mm512_set1_epi32(bits as i32 - 1));
            match OP {
                0 => _mm512_and_si512(_mm512_add_epi32(a, b), vm),
                1 => _mm512_and_si512(_mm512_sub_epi32(a, b), vm),
                2 => _mm512_and_si512(a, b),
                3 => _mm512_or_si512(a, b),
                4 => _mm512_xor_si512(a, b),
                5 => _mm512_xor_si512(_mm512_or_si512(a, b), vm),
                6 => _mm512_and_si512(_mm512_sllv_epi32(a, shamt()), vm),
                7 => _mm512_srlv_epi32(a, shamt()),
                8 => _mm512_and_si512(_mm512_srav_epi32(sext512(a, bits), shamt()), vm),
                9 => _mm512_and_si512(_mm512_mullo_epi32(a, b), vm),
                13 => _mm512_and_si512(_mm512_min_epi32(sext512(a, bits), sext512(b, bits)), vm),
                14 => _mm512_and_si512(_mm512_max_epi32(sext512(a, bits), sext512(b, bits)), vm),
                15 => _mm512_min_epu32(a, b),
                16 => _mm512_max_epu32(a, b),
                _ => unreachable!("scalar-only op reached the vector path"),
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn alu_avx512_impl<const OP: u8, const RS: bool>(
        dst: &mut [Word],
        a: &[Word],
        b: &[Word],
        s: Word,
        w: Width,
        mw: u64,
    ) {
        if scalar_only(OP) {
            return alu_lanes::<RS>(op_of::<OP>(), dst, a, b, s, w, mw, 0);
        }
        let n = dst.len();
        let bits = w.bits();
        unsafe {
            let vm = _mm512_set1_epi32(w.mask() as i32);
            let vs = _mm512_set1_epi32(s.to_u32() as i32);
            let groups = n / 16;
            for g in 0..groups {
                let k = (mw >> (g * 16)) as u16;
                if k == 0 {
                    continue;
                }
                let va = _mm512_loadu_epi32(lanes_ptr(a).add(g * 16));
                let vb = if RS { vs } else { _mm512_loadu_epi32(lanes_ptr(b).add(g * 16)) };
                let vr = v_alu512::<OP>(va, vb, vm, bits);
                _mm512_mask_storeu_epi32(dst.as_mut_ptr().add(g * 16) as *mut i32, k, vr);
            }
            alu_lanes::<RS>(op_of::<OP>(), dst, a, b, s, w, mw, groups * 16);
        }
    }

    /// One vector compare on 16 lanes, as a 16-bit result mask.
    #[inline(always)]
    unsafe fn v_cmp512<const OP: u8>(a: __m512i, b: __m512i, bits: u32) -> u16 {
        unsafe {
            match OP {
                0 => _mm512_cmpeq_epi32_mask(a, b),
                1 => _mm512_cmpneq_epi32_mask(a, b),
                2 => _mm512_cmplt_epi32_mask(sext512(a, bits), sext512(b, bits)),
                3 => _mm512_cmple_epi32_mask(sext512(a, bits), sext512(b, bits)),
                4 => _mm512_cmplt_epu32_mask(a, b),
                5 => _mm512_cmple_epu32_mask(a, b),
                _ => unreachable!("invalid compare code"),
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn cmp_avx512_impl<const OP: u8, const RS: bool>(
        a: &[Word],
        b: &[Word],
        s: Word,
        w: Width,
    ) -> u64 {
        let n = a.len();
        let bits = w.bits();
        let mut res = 0u64;
        unsafe {
            let vs = _mm512_set1_epi32(s.to_u32() as i32);
            let groups = n / 16;
            for g in 0..groups {
                let va = _mm512_loadu_epi32(lanes_ptr(a).add(g * 16));
                let vb = if RS { vs } else { _mm512_loadu_epi32(lanes_ptr(b).add(g * 16)) };
                res |= (v_cmp512::<OP>(va, vb, bits) as u64) << (g * 16);
            }
            res | cmp_lanes::<RS>(cmp_of::<OP>(), a, b, s, w, groups * 16)
        }
    }

    // --------------------------------------------- safe kernel entries
    //
    // SAFETY (all of these): the selectors only hand out AVX2/AVX-512
    // entries for a [`SimdLevel`] produced by [`SimdLevel::detect`], which
    // probed the feature at runtime.

    fn alu_rr_avx2<const OP: u8>(dst: &mut [Word], a: &[Word], b: &[Word], w: Width, mw: u64) {
        unsafe { alu_avx2::<OP, false>(dst, a, b, Word::ZERO, w, mw) }
    }

    fn alu_rs_avx2<const OP: u8>(dst: &mut [Word], a: &[Word], s: Word, w: Width, mw: u64) {
        unsafe { alu_avx2::<OP, true>(dst, a, &[], s, w, mw) }
    }

    fn cmp_rr_avx2<const OP: u8>(a: &[Word], b: &[Word], w: Width) -> u64 {
        unsafe { cmp_avx2::<OP, false>(a, b, Word::ZERO, w) }
    }

    fn cmp_rs_avx2<const OP: u8>(a: &[Word], s: Word, w: Width) -> u64 {
        unsafe { cmp_avx2::<OP, true>(a, &[], s, w) }
    }

    fn alu_rr_avx512<const OP: u8>(dst: &mut [Word], a: &[Word], b: &[Word], w: Width, mw: u64) {
        unsafe { alu_avx512_impl::<OP, false>(dst, a, b, Word::ZERO, w, mw) }
    }

    fn alu_rs_avx512<const OP: u8>(dst: &mut [Word], a: &[Word], s: Word, w: Width, mw: u64) {
        unsafe { alu_avx512_impl::<OP, true>(dst, a, &[], s, w, mw) }
    }

    fn cmp_rr_avx512<const OP: u8>(a: &[Word], b: &[Word], w: Width) -> u64 {
        unsafe { cmp_avx512_impl::<OP, false>(a, b, Word::ZERO, w) }
    }

    fn cmp_rs_avx512<const OP: u8>(a: &[Word], s: Word, w: Width) -> u64 {
        unsafe { cmp_avx512_impl::<OP, true>(a, &[], s, w) }
    }

    // --------------------------------------- per-tier dispatch tables

    pub(super) fn select_alu_rr_avx2(op: AluOp) -> AluRrKernel {
        alu_table!(op, alu_rr_avx2)
    }
    pub(super) fn select_alu_rs_avx2(op: AluOp) -> AluRsKernel {
        alu_table!(op, alu_rs_avx2)
    }
    pub(super) fn select_cmp_rr_avx2(op: CmpOp) -> CmpRrKernel {
        cmp_table!(op, cmp_rr_avx2)
    }
    pub(super) fn select_cmp_rs_avx2(op: CmpOp) -> CmpRsKernel {
        cmp_table!(op, cmp_rs_avx2)
    }
    pub(super) fn select_alu_rr_avx512(op: AluOp) -> AluRrKernel {
        alu_table!(op, alu_rr_avx512)
    }
    pub(super) fn select_alu_rs_avx512(op: AluOp) -> AluRsKernel {
        alu_table!(op, alu_rs_avx512)
    }
    pub(super) fn select_cmp_rr_avx512(op: CmpOp) -> CmpRrKernel {
        cmp_table!(op, cmp_rr_avx512)
    }
    pub(super) fn select_cmp_rs_avx512(op: CmpOp) -> CmpRsKernel {
        cmp_table!(op, cmp_rs_avx512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic but irregular lane values covering sign bits, the
    /// width mask boundary, and shift-relevant low bits.
    fn sample_plane(w: Width, salt: u32, n: usize) -> Vec<Word> {
        (0..n as u32)
            .map(|i| {
                let v = i.wrapping_mul(0x9e37_79b9).wrapping_add(salt).rotate_left((i + salt) % 31);
                Word::new(v & w.mask(), w)
            })
            .collect()
    }

    fn check_level(level: SimdLevel) {
        for &w in &[Width::W8, Width::W16, Width::W32] {
            for &n in &[64usize, 37, 8, 5, 1] {
                let a = sample_plane(w, 1, n);
                let b = sample_plane(w, 0x55, n);
                let s = Word::new(0x2f & w.mask(), w);
                // an irregular mask plus the dense mask
                for mw in [chunk_mask(n), chunk_mask(n) & 0x5f3a_c6e9_1b4d_8872] {
                    for &op in AluOp::ALL {
                        let mut want = sample_plane(w, 9, n);
                        let mut got = want.clone();
                        alu_lanes::<false>(op, &mut want, &a, &b, Word::ZERO, w, mw, 0);
                        select_alu_rr(level, op)(&mut got, &a, &b, w, mw);
                        assert_eq!(got, want, "{level:?} {op} rr {w} n={n} mw={mw:#x}");
                        let mut want_s = sample_plane(w, 9, n);
                        let mut got_s = want_s.clone();
                        alu_lanes::<true>(op, &mut want_s, &a, &[], s, w, mw, 0);
                        select_alu_rs(level, op)(&mut got_s, &a, s, w, mw);
                        assert_eq!(got_s, want_s, "{level:?} {op} rs {w} n={n} mw={mw:#x}");
                    }
                    for &op in CmpOp::ALL {
                        let want = cmp_lanes::<false>(op, &a, &b, Word::ZERO, w, 0) & mw;
                        let got = select_cmp_rr(level, op)(&a, &b, w) & mw;
                        assert_eq!(got, want, "{level:?} {op} rr {w} n={n}");
                        let want_s = cmp_lanes::<true>(op, &a, &[], s, w, 0) & mw;
                        let got_s = select_cmp_rs(level, op)(&a, s, w) & mw;
                        assert_eq!(got_s, want_s, "{level:?} {op} rs {w} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_available_tier_matches_the_scalar_reference() {
        for level in SimdLevel::available() {
            check_level(level);
        }
    }

    #[test]
    fn detect_honours_the_env_escape_hatch() {
        // detect() == hw tier unless MTASC_NO_SIMD is set in this process;
        // the env-forced path is covered end to end by ci.sh
        if !simd_disabled() {
            assert_eq!(SimdLevel::detect(), SimdLevel::detect_hw());
        } else {
            assert_eq!(SimdLevel::detect(), SimdLevel::Scalar);
        }
    }

    #[test]
    fn labels_and_order() {
        assert!(SimdLevel::Scalar < SimdLevel::Avx2 && SimdLevel::Avx2 < SimdLevel::Avx512);
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
        assert_eq!(SimdLevel::Avx512.label(), "avx512");
        assert!(!SimdLevel::Scalar.is_simd() && SimdLevel::Avx2.is_simd());
    }

    #[test]
    fn chunk_mask_tail() {
        assert_eq!(chunk_mask(64), u64::MAX);
        assert_eq!(chunk_mask(5), 0b11111);
        assert_eq!(chunk_mask(0), 0);
    }
}
