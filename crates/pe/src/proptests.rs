//! Property tests: the structure-of-arrays [`PeArray`] matches a
//! straightforward per-PE reference model (one `RegFile`/`FlagFile`/
//! `LocalMemory` per PE — the layout the pre-SoA array used) on random
//! masked operation sequences, including the invariants the ISSUE calls
//! out: inactive PEs bit-for-bit unaffected, GPR 0 reads zero / ignores
//! writes, and flag bitplanes round-tripping through `flag_column`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asc_isa::{AluOp, CmpOp, FlagOp, PFlag, PReg, Width, Word};

use crate::array::{ArrayConfig, PeArray, Src};
use crate::bitmask::ActiveMask;
use crate::memory::LocalMemory;
use crate::regfile::{FlagFile, RegFile};
use crate::segments::SegmentGeometry;
use crate::simd::SimdLevel;

const PES: usize = 70; // not a multiple of 64: exercises the tail word
const THREADS: usize = 2;
const LMEM: usize = 16;

fn cfg_at(width: Width, simd: SimdLevel, parallel_threshold: usize) -> ArrayConfig {
    ArrayConfig {
        num_pes: PES,
        threads: THREADS,
        gprs: 16,
        flags: 8,
        lmem_words: LMEM,
        width,
        parallel_threshold,
        simd,
        // 70 PEs as two ragged segments keeps every differential run
        // crossing a segment boundary.
        segments: SegmentGeometry::new(PES, 2),
    }
}

fn cfg() -> ArrayConfig {
    cfg_at(Width::W8, SimdLevel::detect(), 4096)
}

/// Per-PE reference model: the array-of-structures layout, operated on
/// lane by lane exactly as the masked-execution semantics prescribe.
struct RefArray {
    pes: Vec<(RegFile, FlagFile, LocalMemory)>,
    w: Width,
}

impl RefArray {
    fn new() -> RefArray {
        let c = cfg();
        RefArray {
            pes: (0..c.num_pes)
                .map(|_| {
                    (
                        RegFile::new(c.threads, c.gprs),
                        FlagFile::new(c.threads, c.flags),
                        LocalMemory::new(c.lmem_words),
                    )
                })
                .collect(),
            w: c.width,
        }
    }
}

/// One random masked PE-array operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, u8, u8, Src),
    Cmp(CmpOp, u8, u8, Src),
    Flag(FlagOp, u8, u8, u8),
    Load(u8, u8, i32),
    Store(u8, u8, i32),
    Pidx(u8),
    Movs(u8, Word),
    Shift(u8, u8, i32),
}

fn random_src(rng: &mut StdRng) -> Src {
    match rng.random_range(0..3) {
        0 => Src::Reg(PReg::from_index(rng.random_range(0..16))),
        1 => Src::Scalar(Word(rng.random_range(0..256))),
        _ => Src::Imm(Word(rng.random_range(0..256))),
    }
}

fn random_op(rng: &mut StdRng) -> Op {
    let reg = |rng: &mut StdRng| rng.random_range(0..16u8);
    let flag = |rng: &mut StdRng| rng.random_range(0..8u8);
    match rng.random_range(0..8) {
        0 => {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Min, AluOp::Srl];
            Op::Alu(ops[rng.random_range(0..ops.len())], reg(rng), reg(rng), random_src(rng))
        }
        1 => {
            let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::LeU];
            Op::Cmp(ops[rng.random_range(0..ops.len())], flag(rng), reg(rng), random_src(rng))
        }
        2 => {
            let i = rng.random_range(0..FlagOp::ALL.len());
            Op::Flag(FlagOp::ALL[i], flag(rng), flag(rng), flag(rng))
        }
        // base register 0 reads zero, so offsets in 0..LMEM never fault
        3 => Op::Load(reg(rng), 0, rng.random_range(0..LMEM as i32)),
        4 => Op::Store(reg(rng), 0, rng.random_range(0..LMEM as i32)),
        5 => Op::Pidx(reg(rng)),
        6 => Op::Movs(reg(rng), Word(rng.random_range(0..256))),
        _ => Op::Shift(reg(rng), reg(rng), rng.random_range(-4..=4)),
    }
}

fn src_value(pe: &(RegFile, FlagFile, LocalMemory), thread: usize, src: Src, _w: Width) -> Word {
    match src {
        Src::Reg(r) => pe.0.read(thread, r.index()),
        Src::Scalar(v) | Src::Imm(v) => v,
    }
}

/// Apply `op` to the reference model, lane by lane over the active set.
fn apply_ref(a: &mut RefArray, thread: usize, op: Op, active: &[bool]) {
    let w = a.w;
    if let Op::Shift(pd, pa, dist) = op {
        let col: Vec<Word> = a.pes.iter().map(|pe| pe.0.read(thread, pa as usize)).collect();
        for (i, pe) in a.pes.iter_mut().enumerate() {
            if active[i] {
                let src = i as i64 - dist as i64;
                let v = if (0..PES as i64).contains(&src) { col[src as usize] } else { Word::ZERO };
                pe.0.write(thread, pd as usize, v);
            }
        }
        return;
    }
    for (i, pe) in a.pes.iter_mut().enumerate() {
        if !active[i] {
            continue;
        }
        match op {
            Op::Alu(o, pd, pa, src) => {
                let x = pe.0.read(thread, pa as usize);
                let y = src_value(pe, thread, src, w);
                pe.0.write(thread, pd as usize, o.apply(x, y, w));
            }
            Op::Cmp(o, fd, pa, src) => {
                let x = pe.0.read(thread, pa as usize);
                let y = src_value(pe, thread, src, w);
                pe.1.write(thread, fd as usize, o.apply(x, y, w));
            }
            Op::Flag(o, fd, fa, fb) => {
                let x = pe.1.read(thread, fa as usize);
                let y = pe.1.read(thread, fb as usize);
                pe.1.write(thread, fd as usize, o.apply(x, y));
            }
            Op::Load(pd, base, off) => {
                let addr = pe.0.read(thread, base as usize).to_u32() + off as u32;
                let v = pe.2.read(addr).unwrap();
                pe.0.write(thread, pd as usize, v);
            }
            Op::Store(ps, base, off) => {
                let addr = pe.0.read(thread, base as usize).to_u32() + off as u32;
                let v = pe.0.read(thread, ps as usize);
                pe.2.write(addr, v).unwrap();
            }
            Op::Pidx(pd) => pe.0.write(thread, pd as usize, Word::new(i as u32, w)),
            Op::Movs(pd, v) => pe.0.write(thread, pd as usize, v),
            Op::Shift(..) => unreachable!("handled above"),
        }
    }
}

/// Apply `op` to the SoA array.
fn apply_soa(a: &mut PeArray, thread: usize, op: Op, active: &ActiveMask) {
    let p = PReg::from_index;
    let f = PFlag::from_index;
    match op {
        Op::Alu(o, pd, pa, src) => a.alu(thread, o, p(pd), p(pa), src, active),
        Op::Cmp(o, fd, pa, src) => a.cmp(thread, o, f(fd), p(pa), src, active),
        Op::Flag(o, fd, fa, fb) => a.flag_op(thread, o, f(fd), f(fa), f(fb), active),
        Op::Load(pd, base, off) => a.load(thread, p(pd), p(base), off, active).unwrap(),
        Op::Store(ps, base, off) => a.store(thread, p(ps), p(base), off, active).unwrap(),
        Op::Pidx(pd) => a.pidx(thread, p(pd), active),
        Op::Movs(pd, v) => a.movs(thread, p(pd), v, active),
        Op::Shift(pd, pa, dist) => a.shift(thread, p(pd), p(pa), dist, active),
    }
}

/// Compare every architectural bit of the two models.
fn assert_state_matches(soa: &PeArray, reference: &RefArray) -> TestCaseResult {
    let c = cfg();
    for t in 0..c.threads {
        for r in 0..c.gprs {
            let plane = soa.gpr_plane(t, r);
            for (i, pe) in reference.pes.iter().enumerate() {
                prop_assert_eq!(plane[i], pe.0.read(t, r), "thread {} p{} pe {}", t, r, i);
                prop_assert_eq!(soa.gpr(i, t, r), pe.0.read(t, r));
            }
        }
        for fr in 0..c.flags {
            let col = soa.flag_column(t, fr);
            for (i, pe) in reference.pes.iter().enumerate() {
                prop_assert_eq!(col[i], pe.1.read(t, fr), "thread {} pf{} pe {}", t, fr, i);
                prop_assert_eq!(soa.flag(i, t, fr), pe.1.read(t, fr));
            }
        }
    }
    for (i, pe) in reference.pes.iter().enumerate() {
        for addr in 0..c.lmem_words as u32 {
            prop_assert_eq!(
                soa.lmem_word(i, addr).unwrap(),
                pe.2.read(addr).unwrap(),
                "lmem pe {} addr {}",
                i,
                addr
            );
        }
    }
    Ok(())
}

proptest! {
    /// Random masked operation sequences leave the SoA array and the
    /// per-PE reference model in bit-identical architectural state — in
    /// particular, inactive PEs are completely unaffected and GPR 0 stays
    /// hardwired to zero.
    #[test]
    fn soa_matches_per_pe_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut soa = PeArray::new(cfg());
        let mut reference = RefArray::new();
        for _ in 0..40 {
            let thread = rng.random_range(0..THREADS);
            let bools: Vec<bool> = match rng.random_range(0..3) {
                0 => vec![true; PES],
                1 => (0..PES).map(|_| rng.random()).collect(),
                _ => vec![false; PES], // fully masked off
            };
            let mask = ActiveMask::from_bools(&bools);
            let op = random_op(&mut rng);
            apply_soa(&mut soa, thread, op, &mask);
            apply_ref(&mut reference, thread, op, &bools);
        }
        assert_state_matches(&soa, &reference)?;
    }

    /// GPR 0 semantics: every way of writing register 0 is ignored, and it
    /// always reads zero (the plane invariant behind the free reads).
    #[test]
    fn gpr0_reads_zero_writes_ignored(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = PeArray::new(cfg());
        let all = ActiveMask::all(PES);
        let p = PReg::from_index;
        for _ in 0..12 {
            match rng.random_range(0..5) {
                0 => a.movs(0, p(0), Word(rng.random_range(1..256)), &all),
                1 => a.pidx(0, p(0), &all),
                2 => a.alu(0, AluOp::Add, p(0), p(0), Src::Imm(Word(3)), &all),
                3 => a.shift(0, p(0), p(0), 1, &all),
                _ => a.set_gpr(rng.random_range(0..PES), 0, 0, Word(9)),
            }
        }
        prop_assert!(a.gpr_plane(0, 0).iter().all(|&w| w == Word::ZERO));
        // and as a source it behaves as the constant zero
        a.alu(0, AluOp::Add, p(1), p(0), Src::Imm(Word(7)), &all);
        for i in 0..PES {
            prop_assert_eq!(a.gpr(i, 0, 1), Word(7));
        }
    }

    /// SIMD ≡ scalar: the same random masked plane-op sequence leaves an
    /// array on each available vector tier in bit-identical architectural
    /// state to one forced scalar — over random ops (all ALU and compare
    /// kinds), masks, widths, and both the serial and Rayon dispatch
    /// paths. This is the differential gate for the `crate::simd` kernels
    /// embedded in the array's plane loops.
    #[test]
    fn simd_tiers_match_scalar_plane_ops(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let widths = [Width::W8, Width::W16, Width::W32];
        let w = widths[rng.random_range(0..widths.len())];
        // threshold below/above PES forces the Rayon or serial lane path
        let threshold = if rng.random() { 1 } else { 4096 };
        let value = |rng: &mut StdRng| Word(rng.random_range(0..=w.mask()));
        let reg = |rng: &mut StdRng| PReg::from_index(rng.random_range(0..16));
        // a script of (thread, mask, op) replayed identically per tier
        let script: Vec<(usize, Vec<bool>, Op)> = (0..32)
            .map(|_| {
                let thread = rng.random_range(0..THREADS);
                let bools: Vec<bool> = match rng.random_range(0..3) {
                    0 => vec![true; PES],
                    1 => (0..PES).map(|_| rng.random()).collect(),
                    _ => vec![false; PES],
                };
                let src = match rng.random_range(0..3) {
                    0 => Src::Reg(reg(&mut rng)),
                    1 => Src::Scalar(value(&mut rng)),
                    _ => Src::Imm(value(&mut rng)),
                };
                let op = match rng.random_range(0..4) {
                    0 => {
                        let o = AluOp::ALL[rng.random_range(0..AluOp::ALL.len())];
                        Op::Alu(o, rng.random_range(0..16), rng.random_range(0..16), src)
                    }
                    1 => {
                        let o = CmpOp::ALL[rng.random_range(0..CmpOp::ALL.len())];
                        Op::Cmp(o, rng.random_range(0..8), rng.random_range(0..16), src)
                    }
                    2 => Op::Load(rng.random_range(0..16), 0, rng.random_range(0..LMEM as i32)),
                    _ => Op::Store(rng.random_range(0..16), 0, rng.random_range(0..LMEM as i32)),
                };
                (thread, bools, op)
            })
            .collect();
        let run = |level: SimdLevel| {
            let mut a = PeArray::new(cfg_at(w, level, threshold));
            // seed every register plane with irregular values first
            let all = ActiveMask::all(PES);
            for r in 1..16u8 {
                a.pidx(0, PReg::from_index(r), &all);
                a.alu(
                    0,
                    AluOp::Mul,
                    PReg::from_index(r),
                    PReg::from_index(r),
                    Src::Imm(Word::new(0x9e3 & w.mask(), w)),
                    &all,
                );
            }
            for (thread, bools, op) in &script {
                apply_soa(&mut a, *thread, *op, &ActiveMask::from_bools(bools));
            }
            a
        };
        let scalar = run(SimdLevel::Scalar);
        for level in SimdLevel::available() {
            let vectored = run(level);
            for t in 0..THREADS {
                for r in 0..16 {
                    prop_assert_eq!(
                        scalar.gpr_plane(t, r),
                        vectored.gpr_plane(t, r),
                        "{:?} thread {} p{} {}", level, t, r, w
                    );
                }
                for fr in 0..8 {
                    prop_assert_eq!(
                        scalar.flag_plane(t, fr),
                        vectored.flag_plane(t, fr),
                        "{:?} thread {} pf{} {}", level, t, fr, w
                    );
                }
            }
            for pe in 0..PES {
                for addr in 0..LMEM as u32 {
                    prop_assert_eq!(
                        scalar.lmem_word(pe, addr).unwrap(),
                        vectored.lmem_word(pe, addr).unwrap()
                    );
                }
            }
        }
    }

    /// Flag bitplanes round-trip: an arbitrary boolean column written via
    /// `write_flag_column` reads back identically through `flag_column`,
    /// `flag`, and `fill_active` of the same flag.
    #[test]
    fn flag_bitplane_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = PeArray::new(cfg());
        let all = ActiveMask::all(PES);
        let bools: Vec<bool> = (0..PES).map(|_| rng.random()).collect();
        let thread = rng.random_range(0..THREADS);
        a.write_flag_column(thread, PFlag::from_index(3), &bools, &all);
        prop_assert_eq!(&a.flag_column(thread, 3), &bools);
        for (i, &b) in bools.iter().enumerate() {
            prop_assert_eq!(a.flag(i, thread, 3), b);
        }
        let mut m = ActiveMask::new(PES);
        a.fill_active(thread, asc_isa::Mask::Flag(PFlag::from_index(3)), &mut m);
        prop_assert_eq!(m.to_bools(), bools);
        // tail bits beyond the last PE stay zero (the plane invariant)
        let plane = a.flag_plane(thread, 3);
        prop_assert_eq!(plane[PES / 64] >> (PES % 64), 0);
    }
}
