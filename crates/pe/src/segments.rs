//! Core-affine segmentation of the PE array.
//!
//! A *segment* is a contiguous run of whole 64-PE tiles. Segments are the
//! unit of scale-out: register planes, flag bitplanes and local-memory
//! rows are committed (first touched) per segment, the dispatch loops
//! hand one segment per Rayon task, and the interconnect composes as a
//! two-level tree — a leaf reduction per segment feeding a root combiner
//! over the segment partials.
//!
//! Two invariants make the composition exact rather than approximate:
//!
//! * every segment except possibly the last spans `tiles_per_seg` tiles,
//!   and `tiles_per_seg` is a **power of two**. The canonical reduction
//!   tree over `n` leaves splits at `len.next_power_of_two() / 2`, so a
//!   power-of-two segment length makes the flat tree decompose *exactly*
//!   into per-segment subtrees joined by the same canonical tree over the
//!   segment partials — saturating-sum association order is preserved
//!   across segment boundaries bit for bit;
//! * the last segment may be ragged (fewer tiles, and its last tile may
//!   cover fewer than 64 lanes), which the range-based tree entry points
//!   handle the same way the flat tree handles a non-power-of-two `n`.
//!
//! The segment count is capped at [`MAX_SEGMENTS`] so a reduction's root
//! stage can keep its segment-occupancy mask on the stack (no allocation
//! on the instruction path).

use crate::bitmask::{words_for, BITS_PER_WORD};

/// Upper bound on the number of segments of one array.
pub const MAX_SEGMENTS: usize = 256;

/// Tiles per segment when the segment count is chosen automatically:
/// 64 tiles = 4096 lanes, matching the default Rayon dispatch threshold
/// so a segment is the smallest unit worth handing to another core.
pub const AUTO_TILES_PER_SEG: usize = 64;

/// How the PE array is sliced into core-affine segments.
///
/// Constructed once per machine from the configured (or
/// `MTASC_SEGMENTS`-overridden) segment count; carried by both the array
/// and the network config so execution and the two-level reduction tree
/// always agree on the slicing. Purely an execution strategy: results,
/// cycle counts, stats and profiles are bit-identical at every count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    num_pes: usize,
    tiles: usize,
    tiles_per_seg: usize,
    count: usize,
}

impl SegmentGeometry {
    /// Geometry for `num_pes` lanes split into `requested` segments.
    ///
    /// `requested == 0` picks the segment size automatically
    /// ([`AUTO_TILES_PER_SEG`] tiles per segment); `requested == 1` forces
    /// the monolithic single-segment layout (the flat pre-scale-out
    /// execution paths). Any other request is rounded so that segments
    /// span a power-of-two number of tiles and the count stays within
    /// [`MAX_SEGMENTS`]; small arrays collapse to a single segment.
    pub fn new(num_pes: usize, requested: usize) -> SegmentGeometry {
        assert!(num_pes >= 1, "a PE array needs at least one PE");
        let tiles = words_for(num_pes);
        let mut tiles_per_seg = match requested {
            0 => AUTO_TILES_PER_SEG,
            1 => tiles,
            s => tiles.div_ceil(s).next_power_of_two(),
        };
        while tiles.div_ceil(tiles_per_seg) > MAX_SEGMENTS {
            tiles_per_seg *= 2;
        }
        let count = tiles.div_ceil(tiles_per_seg).max(1);
        SegmentGeometry { num_pes, tiles, tiles_per_seg, count }
    }

    /// The single-segment (flat) layout.
    pub fn monolithic(num_pes: usize) -> SegmentGeometry {
        SegmentGeometry::new(num_pes, 1)
    }

    /// Total lanes covered.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of segments.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Is the array actually sliced (more than one segment)?
    pub fn is_segmented(&self) -> bool {
        self.count > 1
    }

    /// Tiles (64-lane groups / plane words) per full segment.
    pub fn tiles_per_seg(&self) -> usize {
        self.tiles_per_seg
    }

    /// Lanes per full segment.
    pub fn lanes_per_seg(&self) -> usize {
        self.tiles_per_seg * BITS_PER_WORD
    }

    /// Tile (= plane-word) index range of segment `s`; the last segment
    /// may be shorter.
    pub fn seg_tile_range(&self, s: usize) -> core::ops::Range<usize> {
        debug_assert!(s < self.count);
        let start = s * self.tiles_per_seg;
        start..self.tiles.min(start + self.tiles_per_seg)
    }

    /// Lane index range of segment `s`; the last segment may be ragged.
    pub fn seg_lane_range(&self, s: usize) -> core::ops::Range<usize> {
        debug_assert!(s < self.count);
        let start = s * self.lanes_per_seg();
        start..self.num_pes.min(start + self.lanes_per_seg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_geometry_scales() {
        let g = SegmentGeometry::new(16, 0);
        assert_eq!(g.count(), 1, "small arrays stay monolithic");
        assert!(!g.is_segmented());

        let g = SegmentGeometry::new(1 << 20, 0);
        assert_eq!(g.count(), 256);
        assert_eq!(g.tiles_per_seg(), 64);
        assert_eq!(g.lanes_per_seg(), 4096);
        assert_eq!(g.seg_lane_range(0), 0..4096);
        assert_eq!(g.seg_lane_range(255), 255 * 4096..(1 << 20));
    }

    #[test]
    fn requested_count_rounds_to_power_of_two_tiles() {
        // 100 PEs = 2 tiles, 4 segments requested -> 1 tile per segment,
        // 2 segments, ragged last (lanes 64..100).
        let g = SegmentGeometry::new(100, 4);
        assert_eq!(g.tiles_per_seg(), 1);
        assert_eq!(g.count(), 2);
        assert_eq!(g.seg_lane_range(0), 0..64);
        assert_eq!(g.seg_lane_range(1), 64..100);

        // 3 segments over 8 tiles rounds up to 4-tile segments (power of
        // two), giving 2 segments.
        let g = SegmentGeometry::new(512, 3);
        assert_eq!(g.tiles_per_seg(), 4);
        assert_eq!(g.count(), 2);
        assert!(g.tiles_per_seg().is_power_of_two());
    }

    #[test]
    fn count_is_capped() {
        let g = SegmentGeometry::new(1 << 20, 1 << 14);
        assert!(g.count() <= MAX_SEGMENTS);
        assert!(g.tiles_per_seg().is_power_of_two());
    }

    #[test]
    fn monolithic_covers_everything() {
        let g = SegmentGeometry::monolithic(70);
        assert_eq!(g.count(), 1);
        assert_eq!(g.seg_tile_range(0), 0..2);
        assert_eq!(g.seg_lane_range(0), 0..70);
    }

    #[test]
    fn segments_partition_the_lanes() {
        for &n in &[1usize, 63, 64, 65, 4096, 4097, 70_000, (1 << 18) + 13] {
            for &req in &[0usize, 1, 2, 3, 5, 8, 64] {
                let g = SegmentGeometry::new(n, req);
                let mut next = 0;
                for s in 0..g.count() {
                    let lanes = g.seg_lane_range(s);
                    assert_eq!(lanes.start, next, "n={n} req={req} s={s}");
                    assert!(!lanes.is_empty(), "n={n} req={req} s={s}");
                    let tiles = g.seg_tile_range(s);
                    assert_eq!(tiles.start * 64, lanes.start);
                    assert_eq!(tiles.end, words_for(n).min(tiles.start + g.tiles_per_seg()));
                    next = lanes.end;
                }
                assert_eq!(next, n, "n={n} req={req}: segments must cover all lanes");
            }
        }
    }
}
