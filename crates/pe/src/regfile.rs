//! Per-thread register files. "The register file is split between threads
//! at the hardware level, so that a thread can only access its own
//! registers" — modelled as one backing array indexed by
//! `thread * regs_per_thread + reg`, exactly like the block-RAM layout of
//! the prototype. Register 0 of each GPR file is hardwired to zero.

use asc_isa::Word;

/// A general-purpose register file partitioned among hardware threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs_per_thread: usize,
    words: Vec<Word>,
}

impl RegFile {
    /// Allocate for `threads` threads with `regs_per_thread` registers
    /// each, all zero.
    pub fn new(threads: usize, regs_per_thread: usize) -> RegFile {
        RegFile { regs_per_thread, words: vec![Word::ZERO; threads * regs_per_thread] }
    }

    /// Read `reg` of `thread`. Register 0 always reads zero.
    #[inline]
    pub fn read(&self, thread: usize, reg: usize) -> Word {
        if reg == 0 {
            Word::ZERO
        } else {
            self.words[thread * self.regs_per_thread + reg]
        }
    }

    /// Write `reg` of `thread`. Writes to register 0 are ignored.
    #[inline]
    pub fn write(&mut self, thread: usize, reg: usize, value: Word) {
        if reg != 0 {
            self.words[thread * self.regs_per_thread + reg] = value;
        }
    }

    /// Zero every register of one thread (thread allocation reuses
    /// contexts).
    pub fn clear_thread(&mut self, thread: usize) {
        let base = thread * self.regs_per_thread;
        self.words[base..base + self.regs_per_thread].fill(Word::ZERO);
    }

    /// Registers per thread.
    pub fn regs_per_thread(&self) -> usize {
        self.regs_per_thread
    }
}

/// A flag (1-bit) register file partitioned among hardware threads. Unlike
/// the GPR file there is no hardwired-zero flag: `pf0`/`f0` are ordinary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagFile {
    flags_per_thread: usize,
    bits: Vec<bool>,
}

impl FlagFile {
    /// Allocate for `threads` threads with `flags_per_thread` flags each,
    /// all clear.
    pub fn new(threads: usize, flags_per_thread: usize) -> FlagFile {
        FlagFile { flags_per_thread, bits: vec![false; threads * flags_per_thread] }
    }

    /// Read flag `reg` of `thread`.
    #[inline]
    pub fn read(&self, thread: usize, reg: usize) -> bool {
        self.bits[thread * self.flags_per_thread + reg]
    }

    /// Write flag `reg` of `thread`.
    #[inline]
    pub fn write(&mut self, thread: usize, reg: usize, value: bool) {
        self.bits[thread * self.flags_per_thread + reg] = value;
    }

    /// Clear every flag of one thread.
    pub fn clear_thread(&mut self, thread: usize) {
        let base = thread * self.flags_per_thread;
        self.bits[base..base + self.flags_per_thread].fill(false);
    }

    /// Flags per thread.
    pub fn flags_per_thread(&self) -> usize {
        self.flags_per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_are_isolated() {
        let mut rf = RegFile::new(4, 16);
        rf.write(0, 3, Word(11));
        rf.write(1, 3, Word(22));
        assert_eq!(rf.read(0, 3), Word(11));
        assert_eq!(rf.read(1, 3), Word(22));
        assert_eq!(rf.read(2, 3), Word::ZERO);
    }

    #[test]
    fn zero_register_semantics() {
        let mut rf = RegFile::new(2, 16);
        rf.write(0, 0, Word(42));
        assert_eq!(rf.read(0, 0), Word::ZERO);
    }

    #[test]
    fn clear_thread_only_touches_one_thread() {
        let mut rf = RegFile::new(2, 8);
        rf.write(0, 1, Word(1));
        rf.write(1, 1, Word(2));
        rf.clear_thread(0);
        assert_eq!(rf.read(0, 1), Word::ZERO);
        assert_eq!(rf.read(1, 1), Word(2));
    }

    #[test]
    fn flags() {
        let mut ff = FlagFile::new(2, 8);
        ff.write(0, 7, true);
        assert!(ff.read(0, 7));
        assert!(!ff.read(1, 7));
        ff.clear_thread(0);
        assert!(!ff.read(0, 7));
    }
}
