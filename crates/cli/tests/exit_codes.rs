//! Pins the documented process exit-code contract of the `mtasc` binary:
//! 0 = success, 1 = runtime failure or regression-gate trip, 2 = usage
//! error — and the `stats diff` stdin (`-`) convention.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn mtasc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mtasc"))
}

/// Scratch dir (program sources, artifacts, registry root) per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtasc_exit_codes_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn version_exits_zero() {
    let out = mtasc().arg("--version").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mtasc.run_meta.v1"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [vec!["bogus"], vec!["stats", "diff", "-", "-"], vec!["runs", "gc"]] {
        let out = mtasc().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn runtime_failures_exit_one() {
    let out = mtasc().args(["run", "/nonexistent/prog.asc", "--no-record"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn stats_diff_exit_codes_and_stdin() {
    let dir = scratch("diff");
    let prog = dir.join("prog.asc");
    std::fs::write(
        &prog,
        "li s2, 8\nli s3, 0\npidx p1\nloop:\n  paddi p1, p1, 1\n  rsum s1, p1\n  \
         addi s3, s3, 1\n  ceq f1, s3, s2\n  bf f1, loop\n  halt\n",
    )
    .unwrap();
    let fast = dir.join("fast.json");
    let slow = dir.join("slow.json");
    let runs_dir = dir.join("runs");
    let base = ["--runs-dir".as_ref(), runs_dir.as_os_str()];
    let out = mtasc()
        .args(["run", prog.to_str().unwrap(), "--report", fast.to_str().unwrap()])
        .args(base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // same program without forwarding: strictly more cycles => a
    // deliberate, detectable regression
    let out = mtasc()
        .args(["run", prog.to_str().unwrap(), "--no-forwarding"])
        .args(["--report", slow.to_str().unwrap()])
        .args(base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // identical artifacts, gated: ok => 0
    let out = mtasc()
        .args(["stats", "diff", fast.to_str().unwrap(), fast.to_str().unwrap()])
        .args(["--fail-on-regress", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // fast -> slow, gated: regression => 1
    let out = mtasc()
        .args(["stats", "diff", fast.to_str().unwrap(), slow.to_str().unwrap()])
        .args(["--fail-on-regress", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));

    // left side from stdin (`-`), right side from disk
    let mut child = mtasc()
        .args(["stats", "diff", "-", slow.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let fast_text = std::fs::read(&fast).unwrap();
    child.stdin.take().unwrap().write_all(&fast_text).unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<stdin>"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runs_diff_gate_trips_on_recorded_regression() {
    let dir = scratch("runsdiff");
    let prog = dir.join("prog.asc");
    std::fs::write(&prog, "pidx p1\nrsum s1, p1\nhalt\n").unwrap();
    let runs_dir = dir.join("runs");
    let run = |extra: &[&str]| {
        let out = mtasc()
            .args(["run", prog.to_str().unwrap(), "--runs-dir", runs_dir.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("recorded run ").map(str::to_string))
            .unwrap_or_else(|| panic!("no recorded run in: {stdout}"))
    };
    let fast = run(&[]);
    let slow = run(&["--no-forwarding"]);
    let out = mtasc()
        .args(["runs", "diff", &fast, &slow, "--fail-on-regress", "0"])
        .args(["--runs-dir", runs_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let _ = std::fs::remove_dir_all(&dir);
}
