//! End-to-end tests for `mtasc serve`: spawn the real binary on an
//! ephemeral port and drive it over a raw `TcpStream`, proving the HTTP
//! surface matches the CLI surface byte-for-byte and that SSE streams
//! follow a genuinely in-flight run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use asc_core::obs::{Json, ProgressSample};
use asc_obs_store::{program_hash, RunMeta, RunStore, HEARTBEAT_FILE};

fn mtasc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mtasc"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtasc-serve-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `mtasc serve` child; killed on drop so a failing test
/// can't leak daemons.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn start(runs_dir: &std::path::Path) -> Daemon {
        let mut child = mtasc()
            .args(["serve", "--addr", "127.0.0.1:0", "--runs-dir"])
            .arg(runs_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn mtasc serve");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        // "mtasc serve listening on http://127.0.0.1:PORT (registry ...)"
        let addr = line
            .split_once("http://")
            .and_then(|(_, rest)| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in listening line: {line:?}"))
            .parse()
            .unwrap();
        Daemon { child, addr, stdout }
    }

    fn get(&self, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(self.addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
        (head.split_whitespace().nth(1).unwrap().parse().unwrap(), body.to_string())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Record one real run through the binary, returning its id.
fn record_run(runs_dir: &std::path::Path, program: &std::path::Path) -> String {
    let out = mtasc()
        .arg("run")
        .arg(program)
        .args(["--max-cycles", "10000", "--runs-dir"])
        .arg(runs_dir)
        .output()
        .expect("run mtasc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("recorded run "))
        .unwrap_or_else(|| panic!("no recorded-run line in: {stdout}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string()
}

fn write_program(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("prog.asc");
    std::fs::write(&path, "        pidx   p1\n        rmax   s1, p1\n        halt\n").unwrap();
    path
}

#[test]
fn api_listing_matches_cli_listing_byte_for_byte() {
    let runs_dir = tmp_dir("list");
    let program = write_program(&runs_dir);
    record_run(&runs_dir, &program);
    record_run(&runs_dir, &program);

    let daemon = Daemon::start(&runs_dir);
    let (status, http_body) = daemon.get("/api/v1/runs");
    assert_eq!(status, 200);

    let cli =
        mtasc().args(["runs", "list", "--json", "--runs-dir"]).arg(&runs_dir).output().unwrap();
    assert!(cli.status.success());
    assert_eq!(
        http_body,
        String::from_utf8(cli.stdout).unwrap(),
        "GET /api/v1/runs and `mtasc runs list --json` must be byte-for-byte identical"
    );

    // the HTTP listing also validates through `mtasc stats validate`
    let payload = runs_dir.join("listing.json");
    std::fs::write(&payload, &http_body).unwrap();
    let validate = mtasc().args(["stats", "validate"]).arg(&payload).output().unwrap();
    assert!(validate.status.success(), "{}", String::from_utf8_lossy(&validate.stderr));
    let summary = String::from_utf8(validate.stdout).unwrap();
    assert!(summary.contains("mtasc.run_meta.v1 list"), "{summary}");

    // /metrics carries registry totals and the server's own counters
    let (status, metrics) = daemon.get("/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("mtasc_runs_total{status=\"ok\"} 2"), "{metrics}");
    assert!(
        metrics.contains("mtasc_http_requests_total{route=\"/api/v1/runs\",status=\"200\"} 1"),
        "{metrics}"
    );
    assert!(metrics.contains("mtasc_http_request_duration_ms_count"), "{metrics}");

    let (status, health) = daemon.get("/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
}

#[test]
fn sse_streams_live_heartbeats_from_an_in_flight_run() {
    let runs_dir = tmp_dir("sse");
    // forge an in-flight run the way the recorder would create it
    let store = RunStore::open(&runs_dir).unwrap();
    let meta = RunMeta::begin("run", "live.asc", program_hash("live.asc"), "pes=16".into(), 16);
    let handle = store.begin(meta).unwrap();
    let id = handle.id().to_string();
    let heartbeat = store.run_dir(&id).join(HEARTBEAT_FILE);
    let sample = |cycle: u64, final_sample: bool| {
        ProgressSample { cycle, issued: cycle, final_sample, ..ProgressSample::default() }
            .to_json()
            .to_compact()
            + "\n"
    };
    std::fs::write(&heartbeat, sample(100, false) + &sample(200, false)).unwrap();

    let daemon = Daemon::start(&runs_dir);
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    write!(
        stream,
        "GET /api/v1/runs/{id}/progress HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream);
    // skip response head
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" {
            break;
        }
    }
    let read_event = |reader: &mut BufReader<TcpStream>| -> (String, Json) {
        let mut name = String::new();
        loop {
            let mut line = String::new();
            assert_ne!(reader.read_line(&mut line).unwrap(), 0, "stream ended early");
            let line = line.trim_end();
            if let Some(n) = line.strip_prefix("event: ") {
                name = n.to_string();
            } else if let Some(data) = line.strip_prefix("data: ") {
                return (name, Json::parse(data).unwrap());
            }
        }
    };

    // the two pre-existing heartbeats replay immediately — live proof #1 and #2
    for expect in [100u64, 200] {
        let (name, data) = read_event(&mut reader);
        assert_eq!(name, "progress");
        assert_eq!(data.get("cycle").and_then(Json::as_u64), Some(expect));
    }
    // now append while the stream is open: the tail must pick it up live
    let mut f = std::fs::OpenOptions::new().append(true).open(&heartbeat).unwrap();
    f.write_all(sample(300, true).as_bytes()).unwrap();
    drop(f);
    handle.finish_ok(300, 300).unwrap();
    let (name, data) = read_event(&mut reader);
    assert_eq!(name, "progress");
    assert_eq!(data.get("cycle").and_then(Json::as_u64), Some(300));
    assert_eq!(data.get("final"), Some(&Json::Bool(true)));
    let (name, data) = read_event(&mut reader);
    assert_eq!(name, "end");
    assert!(data.get("status").and_then(Json::as_str).is_some());
}

#[cfg(unix)]
#[test]
fn sigterm_shuts_the_daemon_down_cleanly() {
    let runs_dir = tmp_dir("sigterm");
    let mut daemon = Daemon::start(&runs_dir);
    let (status, _) = daemon.get("/healthz");
    assert_eq!(status, 200);

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let exit = daemon.child.wait().unwrap();
    assert!(exit.success(), "SIGTERM exit should be clean, got {exit:?}");
    let mut rest = String::new();
    daemon.stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("mtasc serve stopped"), "{rest:?}");
}
