//! `mtasc` binary: thin wrapper over [`asc_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match asc_cli::dispatch(args) {
        Ok(out) => print!("{out}"),
        Err(asc_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(asc_cli::CliError::Failure(msg)) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
