#![warn(missing_docs)]

//! # asc-cli — the `mtasc` command-line tool
//!
//! ```text
//! mtasc run prog.asc [--pes N] [--threads T] [--arity K] [--width W]
//!                    [--trace] [--max-cycles N] [--no-forwarding]
//! mtasc asm prog.asc              # assemble to hex words
//! mtasc disasm prog.hex           # hex words back to assembly
//! mtasc info [--pes N ...]        # machine geometry + FPGA resources
//! ```
//!
//! The library exposes the argument parsing and subcommand logic so it can
//! be unit-tested; `main.rs` is a thin wrapper.

use std::fmt::Write as _;

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use asc_core::obs::{
    chrome_trace, chrome_trace_text, diff_registries, parse_json_lines, render_diff, Json,
    JsonLinesProgress, JsonLinesSink, MemorySink, Profile, ProgressHandle, ProgressSample,
    ProgressSampler, ProgressSink, Registry, RegressionCheck, RunReport, SinkHandle,
    PROFILE_SCHEMA, PROGRESS_SCHEMA, REPORT_SCHEMA, STATS_DIFF_SCHEMA,
};
use asc_core::pipeline::{control_unit_organization, hazard_diagram, pipeline_organization};
use asc_core::{Machine, MachineConfig};
use asc_fpga::{ClockModel, Device, FpgaConfig, ResourceReport};
use asc_isa::Width;
use asc_obs_store::{
    config_fingerprint, filter_list, list_to_json, program_hash, render_list, HeartbeatTail,
    Resolve, RunHandle, RunMeta, RunStatus, RunStore, HEARTBEAT_FILE, META_FILE, RUN_META_SCHEMA,
};
use asc_serve::{install_signal_shutdown, ServeOpts, Server, HTTP_SCHEMA};

/// Errors surfaced to the user with exit code 1/2.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (prints usage, exit 2).
    Usage(String),
    /// Runtime failure (exit 1).
    Failure(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failure(m) => f.write_str(m),
        }
    }
}

/// Parsed machine options shared by the subcommands.
#[derive(Debug, Clone)]
pub struct MachineOpts {
    /// PE count.
    pub pes: usize,
    /// Hardware threads.
    pub threads: usize,
    /// Broadcast arity.
    pub arity: usize,
    /// Datapath width.
    pub width: Width,
    /// Forwarding enabled.
    pub forwarding: bool,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Record and print the pipeline diagram.
    pub trace: bool,
    /// Write a JSON run report to this path after `run`.
    pub report: Option<String>,
    /// Stream trace events (JSON-Lines) to this path during `run`.
    pub trace_json: Option<String>,
    /// Write a Chrome `trace_event` (Perfetto-loadable) trace to this
    /// path after `run`.
    pub trace_chrome: Option<String>,
    /// Block-fusion engine enabled (`--no-fuse` clears it).
    pub fusion: bool,
    /// SIMD dispatch enabled (`--no-simd` clears it; `MTASC_NO_SIMD`
    /// overrides either way).
    pub simd: bool,
    /// Requested segment count for the core-affine PE-array sharding
    /// (`--segments N`; 0 = automatic, 1 = monolithic; `MTASC_SEGMENTS`
    /// overrides either way). Bit-identical results at every count.
    pub segments: usize,
    /// Schedule-perturbation seed (`--sched-seed N`; 0 = the exact
    /// unperturbed rotating-priority baseline; `MTASC_SCHED_SEED`
    /// overrides either way). Race-free programs reach the same
    /// architectural state under every seed.
    pub sched_seed: u64,
    /// Print block-fusion statistics after `run`.
    pub fusion_stats: bool,
    /// Record this invocation into the run registry. Defaults to `false`
    /// for direct library construction (tests stay hermetic) and `true`
    /// on the real command line ([`MachineOpts::parse`]); `--no-record`
    /// opts out there.
    pub record: bool,
    /// Registry root override (`--runs-dir`); falls back to
    /// `$MTASC_RUNS_DIR`, then `.mtasc/runs`.
    pub runs_dir: Option<String>,
    /// Stream `mtasc.progress.v1` heartbeats to stderr every this many
    /// cycles during `run` (0 = off; `--progress` picks the default
    /// cadence, `--progress-every N` an explicit one).
    pub progress_every: u64,
    /// Display name for the registry manifest (the source path; set by
    /// `dispatch`).
    pub name: Option<String>,
}

/// Cadence of `--progress` when no explicit `--progress-every` is given,
/// and of the heartbeat artifact recorded into the registry.
pub const DEFAULT_PROGRESS_EVERY: u64 = 4096;

/// Bound on the in-memory progress ring (the heartbeat file holds the
/// full stream; the ring only feeds end-of-run summaries).
const PROGRESS_RING: usize = 1024;

impl Default for MachineOpts {
    fn default() -> Self {
        MachineOpts {
            pes: 16,
            threads: 16,
            arity: 4,
            width: Width::W16,
            forwarding: true,
            max_cycles: 100_000_000,
            trace: false,
            report: None,
            trace_json: None,
            trace_chrome: None,
            fusion: true,
            simd: true,
            segments: 0,
            sched_seed: 0,
            fusion_stats: false,
            record: false,
            runs_dir: None,
            progress_every: 0,
            name: None,
        }
    }
}

impl MachineOpts {
    /// Build the machine configuration.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::new(self.pes)
            .with_threads(self.threads)
            .with_arity(self.arity)
            .with_width(self.width);
        if !self.forwarding {
            cfg = cfg.without_forwarding();
        }
        if !self.fusion {
            cfg = cfg.without_fusion();
        }
        if !self.simd {
            cfg = cfg.without_simd();
        }
        cfg.with_segments(self.segments).with_sched_seed(self.sched_seed)
    }

    /// Consume recognized flags from `args`, leaving positional arguments.
    pub fn parse(args: &mut Vec<String>) -> Result<MachineOpts, CliError> {
        // the real command line records by default; --no-record opts out
        let mut opts = MachineOpts { record: true, ..MachineOpts::default() };
        let mut rest = Vec::new();
        let mut it = args.drain(..);
        while let Some(a) = it.next() {
            let take = |it: &mut std::vec::Drain<String>| {
                it.next().ok_or_else(|| CliError::Usage(format!("{a} needs a value")))
            };
            match a.as_str() {
                "--pes" => opts.pes = parse_num(&take(&mut it)?)?,
                "--threads" => opts.threads = parse_num(&take(&mut it)?)?,
                "--arity" => opts.arity = parse_num(&take(&mut it)?)?,
                "--max-cycles" => opts.max_cycles = parse_num(&take(&mut it)?)? as u64,
                "--width" => {
                    opts.width = match take(&mut it)?.as_str() {
                        "8" => Width::W8,
                        "16" => Width::W16,
                        "32" => Width::W32,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--width must be 8, 16 or 32, got {other}"
                            )))
                        }
                    }
                }
                "--no-forwarding" => opts.forwarding = false,
                "--no-record" => opts.record = false,
                "--runs-dir" => opts.runs_dir = Some(take(&mut it)?),
                "--progress" => {
                    if opts.progress_every == 0 {
                        opts.progress_every = DEFAULT_PROGRESS_EVERY;
                    }
                }
                "--progress-every" => {
                    opts.progress_every = (parse_num(&take(&mut it)?)? as u64).max(1)
                }
                "--no-fuse" => opts.fusion = false,
                "--no-simd" => opts.simd = false,
                "--segments" => opts.segments = parse_num(&take(&mut it)?)?,
                "--sched-seed" => opts.sched_seed = parse_num(&take(&mut it)?)? as u64,
                "--fusion-stats" => opts.fusion_stats = true,
                "--trace" => opts.trace = true,
                "--report" => opts.report = Some(take(&mut it)?),
                "--trace-json" => opts.trace_json = Some(take(&mut it)?),
                "--trace-chrome" => opts.trace_chrome = Some(take(&mut it)?),
                _ => rest.push(a),
            }
        }
        drop(it);
        *args = rest;
        Ok(opts)
    }
}

fn parse_num(s: &str) -> Result<usize, CliError> {
    s.parse().map_err(|_| CliError::Usage(format!("not a number: {s}")))
}

/// Usage text.
pub const USAGE: &str = "\
mtasc — Multithreaded ASC Processor toolchain

USAGE:
  mtasc run <prog.asc|.ascl> [options]  assemble/compile and simulate
  mtasc asm <prog.asc|.ascl>            assemble to hex words (stdout)
  mtasc lower <prog.ascl>               compile ASCL to assembly (stdout)
  mtasc lint <prog.asc|.ascl> [lint options]
                                        static analysis: errors, warnings,
                                        performance notes (exit 1 on findings)
  mtasc disasm <prog.hex>               disassemble hex words (stdout)
  mtasc profile <prog.asc|.ascl> [--top N] [--json F] [options]
                                        cycle-attribution profile: hot
                                        instructions, stall reasons, blocks
  mtasc trace convert <trace.jsonl> [--out F]
                                        convert a JSON-Lines trace to Chrome
                                        trace_event JSON (load in Perfetto)
  mtasc stats <report.json>             summarize a saved run report
  mtasc stats diff <a.json> <b.json> [--fail-on-regress PCT] [--all]
                                        per-metric deltas between two run
                                        reports, profiles, or benchmark
                                        tables (BENCH_*.json); `-` reads
                                        one side from stdin.
                                        exit codes: 0 ok / 1 regression
                                        (or failure) / 2 usage error
  mtasc stats validate <files...>       check saved JSON artifacts against
                                        their declared schemas
  mtasc runs list [--status S] [--program P] [--limit N] [--offset N]
                  [--json]              recorded runs, newest first
                                        (--program filters by program
                                        hash: a source path, a full
                                        fnv1a64 hash, or a hex prefix)
  mtasc runs show <id> [--top N]        one run's manifest + recorded
                                        hot-spot table (ids may be unique
                                        prefixes)
  mtasc runs diff <a> <b> [--fail-on-regress PCT] [--all]
                                        stats diff over two recorded runs
                                        (registry ids or artifact paths)
  mtasc runs watch <id> [--no-follow] [--interval-ms N]
                                        tail a run's live progress
                                        heartbeats (mtasc.progress.v1);
                                        --poll-ms is an alias
  mtasc runs gc --keep N                prune all but the newest N runs
  mtasc runs export --prometheus [--out F]
                                        registry metrics in Prometheus
                                        text exposition format
  mtasc serve [--addr HOST:PORT] [--workers N]
                                        HTTP observability daemon over the
                                        run registry: run listing & diffs
                                        (/api/v1/runs), SSE progress
                                        streams, /metrics scrape, embedded
                                        dashboard at /
                                        (default addr 127.0.0.1:7878;
                                        honours --runs-dir)
  mtasc info [options]                  machine geometry + FPGA resources
  mtasc --version                       tool version + emitted schemas

OPTIONS:
  --pes N          processing elements        (default 16)
  --threads T      hardware thread contexts   (default 16)
  --arity K        broadcast tree arity       (default 4)
  --width 8|16|32  datapath width             (default 16)
  --max-cycles N   simulation cycle budget
  --no-forwarding  disable forwarding paths (ablation)
  --no-fuse        disable the block-fusion engine (identical results,
                   instruction-major execution — for cross-checking)
  --no-simd        force the scalar reference loops instead of AVX2/AVX-512
                   kernels (identical results; MTASC_NO_SIMD=1 also works)
  --segments N     core-affine PE-array segments (0 = auto, one per 4096
                   lanes; 1 = monolithic; identical results at every
                   count; MTASC_SEGMENTS=N also works)
  --sched-seed N   perturb the thread scheduler with seed N (0 = exact
                   baseline; every seed is a legal schedule, so race-free
                   programs reach identical architectural state;
                   MTASC_SCHED_SEED=N also works)
  --fusion-stats   print block-fusion and kernel-compilation statistics
  --trace          print the stage-by-cycle pipeline diagram
  --report F       write a JSON run report to F
  --trace-json F   stream trace events (JSON-Lines) to F
  --trace-chrome F write a Chrome trace_event JSON trace to F (Perfetto)
  --progress       stream mtasc.progress.v1 heartbeats to stderr during run
  --progress-every N
                   heartbeat cadence in cycles (default 4096; implies
                   --progress)
  --no-record      do not record this invocation into the run registry
  --runs-dir DIR   registry root (default $MTASC_RUNS_DIR or .mtasc/runs)

LINT OPTIONS:
  --json           emit the mtasc.lint.v1 JSON report instead of text
  --deny warnings  treat warnings as fatal (notes never fail a program)
  --explain CODE   print the long-form explanation of a diagnostic code
                   (--explain all dumps the whole catalog)
  --kernels        lint every program in the asc-kernels corpus instead
                   of a file
  --schedules N    additionally execute the program under N perturbed
                   legal schedules (seeds 0..N) and fail if the final
                   architectural state diverges — the dynamic check
                   behind the E6001 severity contract
";

/// Dispatch a command line (without argv\[0\]); returns the text to print.
pub fn dispatch(mut args: Vec<String>) -> Result<String, CliError> {
    let mut opts = MachineOpts::parse(&mut args)?;
    let mut it = args.into_iter();
    let cmd = it.next().ok_or_else(|| CliError::Usage(USAGE.into()))?;
    match cmd.as_str() {
        "--version" | "-V" | "version" => Ok(version_text()),
        "run" => {
            let path = it.next().ok_or_else(|| CliError::Usage("run needs a file".into()))?;
            let src = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let src = lower_if_ascl(&path, &src)?;
            opts.name = Some(path);
            cmd_run(&src, opts)
        }
        "asm" => {
            let path = it.next().ok_or_else(|| CliError::Usage("asm needs a file".into()))?;
            let src = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let src = lower_if_ascl(&path, &src)?;
            cmd_asm(&src)
        }
        "lower" => {
            let path = it.next().ok_or_else(|| CliError::Usage("lower needs a file".into()))?;
            let src = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            asc_lang::compile(&src).map_err(|e| CliError::Failure(e.to_string()))
        }
        "disasm" => {
            let path = it.next().ok_or_else(|| CliError::Usage("disasm needs a file".into()))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            cmd_disasm(&text)
        }
        "lint" => {
            let mut lint = LintOpts::default();
            let mut path = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => lint.json = true,
                    "--kernels" => lint.kernels = true,
                    "--deny" => {
                        let what = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--deny needs a value".into()))?;
                        if what != "warnings" {
                            return Err(CliError::Usage(format!(
                                "--deny only knows `warnings`, got `{what}`"
                            )));
                        }
                        lint.deny_warnings = true;
                    }
                    "--explain" => {
                        let code = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--explain needs a code".into()))?;
                        return cmd_explain(&code);
                    }
                    "--schedules" => {
                        let n = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--schedules needs a count".into()))?;
                        let n = parse_num(&n)? as u64;
                        if n < 2 {
                            return Err(CliError::Usage(
                                "--schedules needs at least 2 seeds to compare".into(),
                            ));
                        }
                        lint.schedules = Some(n);
                    }
                    other if !other.starts_with('-') && path.is_none() => {
                        path = Some(a);
                    }
                    other => return Err(CliError::Usage(format!("unknown lint option `{other}`"))),
                }
            }
            if lint.kernels {
                return cmd_lint_kernels(&opts.config(), &lint);
            }
            let path = path.ok_or_else(|| {
                CliError::Usage("lint needs a file (or --kernels / --explain CODE)".into())
            })?;
            let src = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let src = lower_if_ascl(&path, &src)?;
            cmd_lint(&src, &path, &opts.config(), &lint)
        }
        "profile" => {
            let mut top = 10usize;
            let mut json_out = None;
            let mut path = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = parse_num(
                            &it.next().ok_or_else(|| CliError::Usage("--top needs N".into()))?,
                        )?
                    }
                    "--json" => {
                        json_out = Some(
                            it.next()
                                .ok_or_else(|| CliError::Usage("--json needs a file".into()))?,
                        )
                    }
                    other if !other.starts_with('-') && path.is_none() => path = Some(a),
                    other => {
                        return Err(CliError::Usage(format!("unknown profile option `{other}`")))
                    }
                }
            }
            let path = path.ok_or_else(|| CliError::Usage("profile needs a file".into()))?;
            let src = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let src = lower_if_ascl(&path, &src)?;
            opts.name = Some(path);
            cmd_profile(&src, opts, top, json_out.as_deref())
        }
        "trace" => {
            let sub = it.next().ok_or_else(|| CliError::Usage("trace needs `convert`".into()))?;
            if sub != "convert" {
                return Err(CliError::Usage(format!("unknown trace subcommand `{sub}`")));
            }
            let mut out_path = None;
            let mut path = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => {
                        out_path = Some(
                            it.next()
                                .ok_or_else(|| CliError::Usage("--out needs a file".into()))?,
                        )
                    }
                    other if !other.starts_with('-') && path.is_none() => path = Some(a),
                    other => {
                        return Err(CliError::Usage(format!("unknown convert option `{other}`")))
                    }
                }
            }
            let path =
                path.ok_or_else(|| CliError::Usage("trace convert needs a .jsonl file".into()))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            cmd_trace_convert(&text, &opts, out_path.as_deref())
        }
        "stats" => {
            let first = it.next().ok_or_else(|| CliError::Usage("stats needs a file".into()))?;
            match first.as_str() {
                "diff" => {
                    let mut fail_on = None;
                    let mut all = false;
                    let mut files = Vec::new();
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--fail-on-regress" => {
                                let v = it.next().ok_or_else(|| {
                                    CliError::Usage("--fail-on-regress needs a percentage".into())
                                })?;
                                fail_on = Some(v.parse::<f64>().map_err(|_| {
                                    CliError::Usage(format!("not a percentage: {v}"))
                                })?);
                            }
                            "--all" => all = true,
                            // `-` is stdin, not an option
                            other if other == "-" || !other.starts_with('-') => {
                                files.push(a.clone())
                            }
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown diff option `{other}`"
                                )))
                            }
                        }
                    }
                    if files.len() != 2 {
                        return Err(CliError::Usage("stats diff needs exactly two files".into()));
                    }
                    if files[0] == "-" && files[1] == "-" {
                        return Err(CliError::Usage(
                            "stats diff can read stdin (`-`) on only one side".into(),
                        ));
                    }
                    cmd_stats_diff(&files[0], &files[1], fail_on, all)
                }
                "validate" => {
                    let files: Vec<String> = it.collect();
                    if files.is_empty() {
                        return Err(CliError::Usage("stats validate needs files".into()));
                    }
                    cmd_stats_validate(&files)
                }
                _ => {
                    let text = std::fs::read_to_string(&first)
                        .map_err(|e| CliError::Failure(format!("{first}: {e}")))?;
                    cmd_stats(&text)
                }
            }
        }
        "runs" => {
            let sub = it.next().ok_or_else(|| {
                CliError::Usage("runs needs a subcommand (list/show/diff/watch/gc/export)".into())
            })?;
            // opened lazily per branch, after argument validation — a
            // usage error must not create the registry directory
            let store = || open_store(&opts);
            match sub.as_str() {
                "list" => {
                    let mut status = None;
                    let mut program = None;
                    let mut limit = None;
                    let mut offset = 0usize;
                    let mut json = false;
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--status" => {
                                let s = it.next().ok_or_else(|| {
                                    CliError::Usage("--status needs running|ok|fault".into())
                                })?;
                                status = Some(RunStatus::from_label(&s).ok_or_else(|| {
                                    CliError::Usage(format!(
                                        "--status must be running, ok or fault, got `{s}`"
                                    ))
                                })?);
                            }
                            "--program" => {
                                let operand = it.next().ok_or_else(|| {
                                    CliError::Usage("--program needs a source path or hash".into())
                                })?;
                                program = Some(program_query(&operand)?);
                            }
                            "--limit" => {
                                limit =
                                    Some(parse_num(&it.next().ok_or_else(|| {
                                        CliError::Usage("--limit needs N".into())
                                    })?)?)
                            }
                            "--offset" => {
                                offset =
                                    parse_num(&it.next().ok_or_else(|| {
                                        CliError::Usage("--offset needs N".into())
                                    })?)?
                            }
                            "--json" => json = true,
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs list option `{other}`"
                                )))
                            }
                        }
                    }
                    cmd_runs_list(&store()?, status, program.as_deref(), limit, offset, json)
                }
                "show" => {
                    let mut top = 10usize;
                    let mut id = None;
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--top" => {
                                top = parse_num(
                                    &it.next()
                                        .ok_or_else(|| CliError::Usage("--top needs N".into()))?,
                                )?
                            }
                            other if !other.starts_with('-') && id.is_none() => id = Some(a),
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs show option `{other}`"
                                )))
                            }
                        }
                    }
                    let id =
                        id.ok_or_else(|| CliError::Usage("runs show needs a run id".into()))?;
                    cmd_runs_show(&store()?, &id, top)
                }
                "diff" => {
                    let mut fail_on = None;
                    let mut all = false;
                    let mut refs = Vec::new();
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--fail-on-regress" => {
                                let v = it.next().ok_or_else(|| {
                                    CliError::Usage("--fail-on-regress needs a percentage".into())
                                })?;
                                fail_on = Some(v.parse::<f64>().map_err(|_| {
                                    CliError::Usage(format!("not a percentage: {v}"))
                                })?);
                            }
                            "--all" => all = true,
                            other if !other.starts_with('-') => refs.push(a.clone()),
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs diff option `{other}`"
                                )))
                            }
                        }
                    }
                    if refs.len() != 2 {
                        return Err(CliError::Usage(
                            "runs diff needs exactly two run ids or artifact paths".into(),
                        ));
                    }
                    let store = store()?;
                    let a = resolve_diffable(&store, &refs[0])?;
                    let b = resolve_diffable(&store, &refs[1])?;
                    cmd_stats_diff(&a, &b, fail_on, all)
                }
                "watch" => {
                    let mut follow = true;
                    let mut poll_ms = 200u64;
                    let mut id = None;
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--no-follow" => follow = false,
                            "--interval-ms" | "--poll-ms" => {
                                poll_ms = parse_num(
                                    &it.next()
                                        .ok_or_else(|| CliError::Usage(format!("{a} needs N")))?,
                                )? as u64
                            }
                            other if !other.starts_with('-') && id.is_none() => id = Some(a),
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs watch option `{other}`"
                                )))
                            }
                        }
                    }
                    let id =
                        id.ok_or_else(|| CliError::Usage("runs watch needs a run id".into()))?;
                    cmd_runs_watch(&store()?, &id, follow, poll_ms)
                }
                "gc" => {
                    let mut keep = None;
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--keep" => {
                                keep =
                                    Some(parse_num(&it.next().ok_or_else(|| {
                                        CliError::Usage("--keep needs N".into())
                                    })?)?)
                            }
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs gc option `{other}`"
                                )))
                            }
                        }
                    }
                    let keep =
                        keep.ok_or_else(|| CliError::Usage("runs gc needs --keep N".into()))?;
                    cmd_runs_gc(&store()?, keep)
                }
                "export" => {
                    let mut prometheus = false;
                    let mut out_path = None;
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--prometheus" => prometheus = true,
                            "--out" => {
                                out_path =
                                    Some(it.next().ok_or_else(|| {
                                        CliError::Usage("--out needs a file".into())
                                    })?)
                            }
                            other => {
                                return Err(CliError::Usage(format!(
                                    "unknown runs export option `{other}`"
                                )))
                            }
                        }
                    }
                    if !prometheus {
                        return Err(CliError::Usage(
                            "runs export needs a format flag (--prometheus)".into(),
                        ));
                    }
                    cmd_runs_export_prometheus(&store()?, out_path.as_deref())
                }
                other => Err(CliError::Usage(format!("unknown runs subcommand `{other}`"))),
            }
        }
        "serve" => {
            let mut addr = "127.0.0.1:7878".to_string();
            let mut workers = 4usize;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--addr needs HOST:PORT".into()))?
                    }
                    "--workers" => {
                        workers = parse_num(
                            &it.next()
                                .ok_or_else(|| CliError::Usage("--workers needs N".into()))?,
                        )?
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown serve option `{other}`")))
                    }
                }
            }
            cmd_serve(&opts, &addr, workers)
        }
        "info" => Ok(cmd_info(opts)),
        other => Err(CliError::Usage(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// `mtasc --version`: crate version, every schema this tool emits, and
/// the resolved execution strategy (host SIMD tier, segment slicing,
/// Rayon threshold — all after their env overrides), so a pasted version
/// line pins down how wall times were produced.
pub fn version_text() -> String {
    let cfg = MachineConfig::new(MachineOpts::default().pes);
    let segments = match cfg.effective_segments() {
        0 => "auto".to_string(),
        n => n.to_string(),
    };
    format!(
        "mtasc {}\nschemas: {REPORT_SCHEMA}, {PROFILE_SCHEMA}, mtasc.lint.v1, \
         {RUN_META_SCHEMA}, {PROGRESS_SCHEMA}, {STATS_DIFF_SCHEMA}, {HTTP_SCHEMA}\n\
         execution: simd {} (MTASC_NO_SIMD), segments {} (MTASC_SEGMENTS), \
         par-threshold {} (MTASC_PAR_THRESHOLD)\n",
        env!("CARGO_PKG_VERSION"),
        cfg.simd_level().label(),
        segments,
        cfg.effective_parallel_threshold(),
    )
}

/// Compile `.ascl` sources down to assembly; pass `.asc` through.
fn lower_if_ascl(path: &str, src: &str) -> Result<String, CliError> {
    if path.ends_with(".ascl") {
        asc_lang::compile(src).map_err(|e| CliError::Failure(e.to_string()))
    } else {
        Ok(src.to_string())
    }
}

/// Open the run registry honouring `--runs-dir` (then `$MTASC_RUNS_DIR`,
/// then `.mtasc/runs`).
fn open_store(opts: &MachineOpts) -> Result<RunStore, CliError> {
    let root = match &opts.runs_dir {
        Some(dir) => PathBuf::from(dir),
        None => RunStore::default_root(),
    };
    RunStore::open(&root)
        .map_err(|e| CliError::Failure(format!("run registry {}: {e}", root.display())))
}

/// Record a `running` manifest for this invocation, unless recording is
/// disabled (`--no-record`, or direct library callers).
fn begin_record(
    kind: &str,
    opts: &MachineOpts,
    source: &str,
    m: &Machine,
) -> Result<Option<RunHandle>, CliError> {
    if !opts.record {
        return Ok(None);
    }
    let store = open_store(opts)?;
    let machine = RunReport::from_machine(m).machine;
    let name = opts.name.as_deref().unwrap_or("<memory>");
    let meta =
        RunMeta::begin(kind, name, program_hash(source), config_fingerprint(&machine), machine.pes);
    let handle = store.begin(meta).map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
    Ok(Some(handle))
}

/// Fan one progress stream out to several sinks (heartbeat file + stderr).
struct TeeProgress(Vec<ProgressHandle>);

impl ProgressSink for TeeProgress {
    fn on_sample(&mut self, sample: &ProgressSample) {
        for h in &self.0 {
            h.emit(sample);
        }
    }

    fn flush_progress(&mut self) -> std::io::Result<()> {
        for h in &self.0 {
            h.flush()?;
        }
        Ok(())
    }
}

/// Attach a [`ProgressSampler`] when heartbeats are wanted: always when
/// recording (the registry's `progress.jsonl` artifact feeds `runs
/// watch`), and to stderr when `--progress[-every]` asks for a live
/// stream.
fn attach_progress(
    m: &mut Machine,
    opts: &MachineOpts,
    rec: Option<&RunHandle>,
) -> Result<bool, CliError> {
    let mut sinks = Vec::new();
    if let Some(rec) = rec {
        let path = rec.artifact_path(HEARTBEAT_FILE);
        let sink = JsonLinesProgress::create(&path.display().to_string())
            .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
        sinks.push(ProgressHandle::new(sink));
    }
    if opts.progress_every > 0 {
        sinks.push(ProgressHandle::new(JsonLinesProgress::new(std::io::stderr())));
    }
    if sinks.is_empty() {
        return Ok(false);
    }
    let every = if opts.progress_every > 0 { opts.progress_every } else { DEFAULT_PROGRESS_EVERY };
    let handle = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        ProgressHandle::new(TeeProgress(sinks))
    };
    m.attach_progress(ProgressSampler::new(every, PROGRESS_RING).with_sink(handle));
    Ok(true)
}

/// `mtasc run`: assemble, simulate, report.
pub fn cmd_run(source: &str, opts: MachineOpts) -> Result<String, CliError> {
    let program = asc_asm::assemble(source)
        .map_err(|errs| CliError::Failure(asc_asm::render_errors(&errs)))?;
    let cfg = opts.config();
    let mut m =
        Machine::with_program(cfg, &program).map_err(|e| CliError::Failure(e.to_string()))?;
    let mut rec = begin_record("run", &opts, source, &m)?;
    let sampled = attach_progress(&mut m, &opts, rec.as_ref())?;
    if opts.trace {
        m.enable_trace();
    }
    // --trace-chrome needs the whole event stream in memory; when it is
    // requested the JSON-Lines file (if any) is written from the same
    // buffer after the run instead of streaming.
    let mem = if opts.trace_chrome.is_some() {
        let mem = Rc::new(RefCell::new(MemorySink::new()));
        m.attach_sink(SinkHandle::shared(mem.clone()));
        Some(mem)
    } else {
        if let Some(path) = &opts.trace_json {
            let sink = JsonLinesSink::create(path)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            m.attach_sink(SinkHandle::new(sink));
        }
        None
    };
    let stats = match m.run(opts.max_cycles) {
        Ok(stats) => stats,
        Err(e) => {
            // the manifest keeps the fault: a crashed run stays visible
            // (and diagnosable) in `mtasc runs list --status fault`
            if let Some(rec) = rec.take() {
                let _ = rec.finish_fault(&e.to_string(), m.cycle(), m.stats().issued);
            }
            return Err(CliError::Failure(e.to_string()));
        }
    };
    let mut out = String::new();
    let t = m.timing();
    let _ = writeln!(
        out,
        "machine: {} PEs, {} threads, b={}, r={}",
        cfg.num_pes, cfg.threads, t.b, t.r
    );
    out.push_str(&stats.report());
    if opts.fusion_stats {
        let fs = m.fusion_stats();
        let _ = writeln!(out, "\nblock fusion:");
        let _ = writeln!(
            out,
            "  static:  {} blocks covering {} instructions (mean length {:.2})",
            fs.static_blocks,
            fs.static_fused_instrs,
            fs.mean_block_len()
        );
        let _ = writeln!(
            out,
            "  dynamic: {} blocks executed, {} of {} issued instructions fused ({:.1}%)",
            fs.blocks_executed,
            fs.instrs_fused,
            stats.issued,
            100.0 * fs.fused_fraction(stats.issued)
        );
        let _ = writeln!(
            out,
            "  compile: {} kernel ops ({} SIMD-bound at {}), {} tile chain dispatches",
            fs.compiled_ops,
            fs.simd_ops,
            m.simd_level().label(),
            fs.tile_chains
        );
    }
    let _ = writeln!(out, "\nscalar registers (thread 0):");
    for r in 1..16 {
        let v = m.sreg(0, r);
        if v.to_u32() != 0 {
            let _ = writeln!(out, "  s{r:<2} = {:>6}  ({})", v.to_u32(), v.to_i64(cfg.width));
        }
    }
    if opts.trace {
        let _ = writeln!(out, "\npipeline diagram:");
        out.push_str(&hazard_diagram(m.trace().unwrap(), &t));
    }
    if let Some(path) = &opts.report {
        let report = RunReport::from_machine(&m);
        std::fs::write(path, report.to_json().to_pretty())
            .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
        let _ = writeln!(out, "\nrun report written to {path}");
    }
    if let Some(mem) = &mem {
        let mem = mem.borrow();
        if let Some(path) = &opts.trace_json {
            let mut text = String::new();
            for ev in mem.events() {
                text.push_str(&ev.to_json().to_compact());
                text.push('\n');
            }
            std::fs::write(path, text).map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let _ = writeln!(out, "trace events written to {path}");
        }
        if let Some(path) = &opts.trace_chrome {
            let trace = chrome_trace(mem.events(), &t);
            std::fs::write(path, chrome_trace_text(&trace))
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            let _ = writeln!(out, "chrome trace written to {path} (load at ui.perfetto.dev)");
        }
    } else if let Some(path) = &opts.trace_json {
        // the machine flushed the sink at end of run
        let _ = writeln!(out, "trace events written to {path}");
    }
    if let Some(sink) = m.sink() {
        let (dropped, errors) = (sink.dropped_events(), sink.write_errors());
        if dropped > 0 || errors > 0 {
            let _ = writeln!(
                out,
                "warning: trace is lossy ({dropped} events dropped, {errors} write errors)"
            );
        }
    }
    if let Some(mut rec) = rec {
        let report = RunReport::from_machine(&m);
        let path = rec.artifact_path("report.json");
        std::fs::write(&path, report.to_json().to_pretty())
            .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
        rec.add_artifact("report.json");
        if sampled {
            rec.add_artifact(HEARTBEAT_FILE);
        }
        let meta = rec
            .finish_ok(stats.cycles, stats.issued)
            .map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
        let _ = writeln!(out, "\nrecorded run {}", meta.id);
    }
    Ok(out)
}

/// `mtasc profile`: run under the cycle-attribution profiler and render
/// the hot-spot table (optionally also writing the `mtasc.profile.v1`
/// JSON document).
pub fn cmd_profile(
    source: &str,
    opts: MachineOpts,
    top: usize,
    json_out: Option<&str>,
) -> Result<String, CliError> {
    let program = asc_asm::assemble(source)
        .map_err(|errs| CliError::Failure(asc_asm::render_errors(&errs)))?;
    let cfg = opts.config();
    let mut m =
        Machine::with_program(cfg, &program).map_err(|e| CliError::Failure(e.to_string()))?;
    let mut rec = begin_record("profile", &opts, source, &m)?;
    let sampled = attach_progress(&mut m, &opts, rec.as_ref())?;
    m.attach_profiler();
    let stats = match m.run(opts.max_cycles) {
        Ok(stats) => stats,
        Err(e) => {
            if let Some(rec) = rec.take() {
                let _ = rec.finish_fault(&e.to_string(), m.cycle(), m.stats().issued);
            }
            return Err(CliError::Failure(e.to_string()));
        }
    };
    let profile = m.take_profile().expect("profiler was attached");
    let mut out = String::new();
    let t = m.timing();
    let _ = writeln!(
        out,
        "machine: {} PEs, {} threads, b={}, r={}",
        cfg.num_pes, cfg.threads, t.b, t.r
    );
    out.push_str(&profile.render_table(Some(&program), Some(source), top));
    if let Some(path) = json_out {
        std::fs::write(path, profile.to_json().to_pretty())
            .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
        let _ = writeln!(out, "\nprofile written to {path}");
    }
    if let Some(mut rec) = rec {
        let path = rec.artifact_path("profile.json");
        std::fs::write(&path, profile.to_json().to_pretty())
            .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
        rec.add_artifact("profile.json");
        if sampled {
            rec.add_artifact(HEARTBEAT_FILE);
        }
        let meta = rec
            .finish_ok(stats.cycles, stats.issued)
            .map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
        let _ = writeln!(out, "\nrecorded run {}", meta.id);
    }
    Ok(out)
}

/// `mtasc trace convert`: JSON-Lines trace → Chrome `trace_event` JSON.
pub fn cmd_trace_convert(
    text: &str,
    opts: &MachineOpts,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let events = parse_json_lines(text)
        .map_err(|line| CliError::Failure(format!("malformed trace event on line {line}")))?;
    let trace = chrome_trace(&events, &opts.config().timing());
    let rendered = chrome_trace_text(&trace);
    match out_path {
        Some(path) => {
            std::fs::write(path, rendered)
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            Ok(format!("chrome trace written to {path} (load at ui.perfetto.dev)\n"))
        }
        None => Ok(rendered),
    }
}

/// Read a whole input, treating `-` as standard input.
fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
            .map_err(|e| CliError::Failure(format!("<stdin>: {e}")))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Failure(format!("{path}: {e}")))
    }
}

/// How an input path is reported in diagnostics (`-` → `<stdin>`).
fn display_name(path: &str) -> &str {
    if path == "-" {
        "<stdin>"
    } else {
        path
    }
}

/// Resolve one `runs` query to exactly one manifest, or explain why not.
fn resolve_one(store: &RunStore, query: &str) -> Result<RunMeta, CliError> {
    match store.find(query).map_err(|e| CliError::Failure(format!("run registry: {e}")))? {
        Resolve::One(meta) => Ok(*meta),
        Resolve::Ambiguous(ids) => Err(CliError::Failure(format!(
            "run id `{query}` is ambiguous; it matches: {}",
            ids.join(", ")
        ))),
        Resolve::NotFound => Err(CliError::Failure(format!(
            "no run matching `{query}` in {}",
            store.root().display()
        ))),
    }
}

/// Turn a `runs diff` operand into a diffable artifact path: existing
/// paths (and `-` for stdin) pass through, anything else resolves in the
/// registry, preferring the recorded run report over the profile.
fn resolve_diffable(store: &RunStore, operand: &str) -> Result<String, CliError> {
    if operand == "-" || Path::new(operand).is_file() {
        return Ok(operand.to_string());
    }
    let meta = resolve_one(store, operand)?;
    let dir = store.run_dir(&meta.id);
    for name in ["report.json", "profile.json"] {
        let p = dir.join(name);
        if p.is_file() {
            return Ok(p.display().to_string());
        }
    }
    Err(CliError::Failure(format!(
        "run {} recorded no diffable artifact (report.json / profile.json)",
        meta.id
    )))
}

/// `mtasc runs list`: paginated, status-filtered registry listing.
pub fn cmd_runs_list(
    store: &RunStore,
    status: Option<RunStatus>,
    program: Option<&str>,
    limit: Option<usize>,
    offset: usize,
    json: bool,
) -> Result<String, CliError> {
    let (metas, skipped) =
        store.list().map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
    // the same filter/paginate pipeline backs the server's /api/v1/runs,
    // keeping the two JSON surfaces byte-for-byte interchangeable
    let (page, total) = filter_list(metas, status, program, limit, offset);
    if json {
        return Ok(list_to_json(&page).to_pretty() + "\n");
    }
    let mut out = render_list(&page);
    if page.len() < total {
        let _ = writeln!(out, "({} of {} runs shown)", page.len(), total);
    }
    if skipped > 0 {
        let _ = writeln!(out, "warning: skipped {skipped} malformed index line(s)");
    }
    Ok(out)
}

/// Resolve a `--program` operand: an existing source file is lowered
/// (if ASCL) and hashed the same way run recording hashes it; anything
/// else is taken as a literal `fnv1a64:` hash or hex prefix.
fn program_query(operand: &str) -> Result<String, CliError> {
    if Path::new(operand).is_file() {
        let src = std::fs::read_to_string(operand)
            .map_err(|e| CliError::Failure(format!("{operand}: {e}")))?;
        let src = lower_if_ascl(operand, &src)?;
        Ok(program_hash(&src))
    } else {
        Ok(operand.to_string())
    }
}

/// `mtasc runs show`: manifest plus whatever recorded tables the run has
/// (profile hot spots, or the run report's counters).
pub fn cmd_runs_show(store: &RunStore, id: &str, top: usize) -> Result<String, CliError> {
    let meta = resolve_one(store, id)?;
    let dir = store.run_dir(&meta.id);
    let mut out = meta.to_text();
    let profile_path = dir.join("profile.json");
    let report_path = dir.join("report.json");
    if profile_path.is_file() {
        let text = std::fs::read_to_string(&profile_path)
            .map_err(|e| CliError::Failure(format!("{}: {e}", profile_path.display())))?;
        let profile = Profile::parse(&text)
            .map_err(|e| CliError::Failure(format!("{}: {e}", profile_path.display())))?;
        out.push('\n');
        out.push_str(&profile.render_table(None, None, top));
    } else if report_path.is_file() {
        let text = std::fs::read_to_string(&report_path)
            .map_err(|e| CliError::Failure(format!("{}: {e}", report_path.display())))?;
        let v = Json::parse(&text)
            .map_err(|e| CliError::Failure(format!("{}: {e}", report_path.display())))?;
        let report = RunReport::from_json(&v).ok_or_else(|| {
            CliError::Failure(format!("{}: malformed run report", report_path.display()))
        })?;
        out.push('\n');
        out.push_str(&report.totals.report());
    }
    Ok(out)
}

/// `mtasc runs gc`: keep the newest N runs, prune the rest.
pub fn cmd_runs_gc(store: &RunStore, keep: usize) -> Result<String, CliError> {
    let removed = store.gc(keep).map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
    if removed.is_empty() {
        return Ok(format!("nothing to prune (keeping up to {keep})\n"));
    }
    let mut out = format!("pruned {} run(s):\n", removed.len());
    for id in &removed {
        let _ = writeln!(out, "  {id}");
    }
    Ok(out)
}

/// `mtasc runs export --prometheus`: text exposition format.
pub fn cmd_runs_export_prometheus(
    store: &RunStore,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let text = store.prometheus().map_err(|e| CliError::Failure(format!("run registry: {e}")))?;
    match out_path {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            Ok(format!("prometheus metrics written to {path}\n"))
        }
        None => Ok(text),
    }
}

/// `mtasc runs watch`: render a run's recorded heartbeats; with follow
/// (the default) keep tailing the file until the final sample lands.
pub fn cmd_runs_watch(
    store: &RunStore,
    id: &str,
    follow: bool,
    poll_ms: u64,
) -> Result<String, CliError> {
    let meta = resolve_one(store, id)?;
    let dir = store.run_dir(&meta.id);
    let path = dir.join(HEARTBEAT_FILE);
    // the same torn-tail-tolerant follower backs the server's SSE streams
    let mut tail = HeartbeatTail::new(&path);
    if !follow {
        if !path.is_file() {
            return Err(CliError::Failure(format!("{}: no heartbeats recorded", path.display())));
        }
        let batch = drain_heartbeats(&mut tail)?;
        let mut out = format!("run {} ({} {})\n", meta.id, meta.kind, meta.name);
        for s in &batch {
            out.push_str(&s.render());
            out.push('\n');
        }
        return Ok(out);
    }
    println!("watching run {} ({} {})", meta.id, meta.kind, meta.name);
    let mut finished = false;
    loop {
        for s in &drain_heartbeats(&mut tail)? {
            println!("{}", s.render());
            finished |= s.final_sample;
        }
        if finished {
            break;
        }
        // a run that died without a final heartbeat still terminates the
        // watch once its manifest leaves the `running` state — after one
        // more drain so recorded-but-unread samples are not dropped
        if let Ok(text) = std::fs::read_to_string(dir.join(META_FILE)) {
            finished = RunMeta::parse(&text).is_ok_and(|m| m.status != RunStatus::Running);
        }
        if !finished {
            std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(10)));
        }
    }
    let final_meta = resolve_one(store, &meta.id)?;
    Ok(format!("run {} finished: {}\n", final_meta.id, final_meta.status))
}

/// Poll a heartbeat tail once, promoting malformed lines to errors (the
/// watcher is strict where the server merely skips).
fn drain_heartbeats(tail: &mut HeartbeatTail) -> Result<Vec<ProgressSample>, CliError> {
    let batch =
        tail.poll().map_err(|e| CliError::Failure(format!("{}: {e}", tail.path().display())))?;
    if let Some(&line) = batch.malformed.first() {
        return Err(CliError::Failure(format!(
            "{}: malformed heartbeat on line {line}",
            tail.path().display()
        )));
    }
    Ok(batch.samples)
}

/// `mtasc serve`: the HTTP observability daemon. Binds first (so an
/// ephemeral `:0` port is resolved), prints the listening line
/// immediately — scripts parse it to find the port — then blocks in the
/// accept loop until SIGINT/SIGTERM (or the shutdown flag) stops it.
pub fn cmd_serve(opts: &MachineOpts, addr: &str, workers: usize) -> Result<String, CliError> {
    let runs_dir = match &opts.runs_dir {
        Some(dir) => PathBuf::from(dir),
        None => RunStore::default_root(),
    };
    let serve_opts = ServeOpts {
        addr: addr.to_string(),
        runs_dir: Some(runs_dir),
        workers,
        ..ServeOpts::default()
    };
    let server =
        Server::bind(&serve_opts).map_err(|e| CliError::Failure(format!("bind {addr}: {e}")))?;
    install_signal_shutdown(server.shutdown_handle());
    println!(
        "mtasc serve listening on http://{} (registry {})",
        server.local_addr(),
        server.root().display()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| CliError::Failure(format!("serve: {e}")))?;
    Ok("mtasc serve stopped\n".to_string())
}

/// Load the metrics registry out of a saved JSON artifact: a
/// `mtasc.run_report.v1` document contributes its full registry, a
/// `mtasc.profile.v1` document its summary registry, and the benchmark
/// tables (`mtasc.kernels.v1` / `mtasc.pe_scaling.v1`) lower each entry
/// into per-kernel/per-size wall-time and throughput metrics. Returns the
/// artifact kind alongside so mixed-kind diffs can be rejected.
fn load_registry(path: &str) -> Result<(&'static str, Registry), CliError> {
    let text = read_input(path)?;
    let path = display_name(path);
    let v = Json::parse(&text).map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
    match v.get("schema").and_then(Json::as_str) {
        Some(REPORT_SCHEMA) => {
            let report = RunReport::from_json(&v)
                .ok_or_else(|| CliError::Failure(format!("{path}: malformed run report")))?;
            Ok(("run report", report.metrics))
        }
        Some(PROFILE_SCHEMA) => {
            let profile = Profile::from_json(&v)
                .ok_or_else(|| CliError::Failure(format!("{path}: malformed profile")))?;
            Ok(("profile", profile.summary_registry()))
        }
        Some("mtasc.kernels.v1") => {
            let reg = bench_registry(&v, "kernels", "name", "kernel")
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            Ok(("kernel bench table", reg))
        }
        Some("mtasc.pe_scaling.v1") => {
            let reg = bench_registry(&v, "points", "num_pes", "pes")
                .map_err(|e| CliError::Failure(format!("{path}: {e}")))?;
            Ok(("pe-scaling sweep", reg))
        }
        Some(other) => {
            Err(CliError::Failure(format!("{path}: schema `{other}` has no metrics to diff")))
        }
        None => Err(CliError::Failure(format!("{path}: missing `schema` field"))),
    }
}

/// Lower one benchmark table into a metrics registry: each entry of the
/// `rows` array (keyed by `key`) becomes `{prefix}.{key}.wall_ms` /
/// `.instr_per_sec` gauges (which `direction_of` knows how to gate) plus
/// neutral `.instructions` / `.cycles` counters. Kernel tables also get a
/// `geomean.wall_ms` gauge — the suite-wide speedup summary that CI's
/// `--fail-on-regress` and speedup checks key off.
fn bench_registry(v: &Json, rows: &str, key: &str, prefix: &str) -> Result<Registry, String> {
    let entries = v.get(rows).and_then(Json::as_arr).ok_or(format!("missing `{rows}` array"))?;
    let mut reg = Registry::new();
    let mut log_sum = 0.0;
    for (i, e) in entries.iter().enumerate() {
        let label = match e.get(key) {
            Some(Json::U64(n)) => n.to_string(),
            Some(k) => k.as_str().ok_or(format!("{rows}[{i}]: bad `{key}`"))?.to_string(),
            None => return Err(format!("{rows}[{i}]: missing `{key}`")),
        };
        let f64_field = |field: &str| {
            e.get(field).and_then(Json::as_f64).ok_or(format!("{rows}[{i}]: missing `{field}`"))
        };
        let wall_ms = f64_field("wall_seconds")? * 1e3;
        reg.gauge_set(&format!("{prefix}.{label}.wall_ms"), wall_ms);
        reg.gauge_set(&format!("{prefix}.{label}.instr_per_sec"), f64_field("instr_per_sec")?);
        for counter in ["instructions", "cycles"] {
            let n = e
                .get(counter)
                .and_then(Json::as_u64)
                .ok_or(format!("{rows}[{i}]: missing `{counter}`"))?;
            reg.counter_add(&format!("{prefix}.{label}.{counter}"), n);
        }
        // scale-out sweep extras, when present. `wall_ms_1seg` must NOT
        // end in `.wall_ms`: the monolithic reference is context, not a
        // gated latency, so it stays Neutral under `--fail-on-regress`.
        if let Some(w1) = e.get("wall_seconds_1seg").and_then(Json::as_f64) {
            reg.gauge_set(&format!("{prefix}.{label}.wall_ms_1seg"), w1 * 1e3);
        }
        if let Some(bpp) = e.get("bytes_per_pe").and_then(Json::as_f64) {
            reg.gauge_set(&format!("{prefix}.{label}.bytes_per_pe"), bpp);
        }
        log_sum += wall_ms.ln();
    }
    if prefix == "kernel" && !entries.is_empty() {
        reg.gauge_set("geomean.wall_ms", (log_sum / entries.len() as f64).exp());
    }
    Ok(reg)
}

/// `mtasc stats diff`: per-metric deltas between two saved artifacts,
/// with an optional `--fail-on-regress PCT` CI gate.
pub fn cmd_stats_diff(
    a_path: &str,
    b_path: &str,
    fail_on_regress: Option<f64>,
    all: bool,
) -> Result<String, CliError> {
    let (kind_a, reg_a) = load_registry(a_path)?;
    let (kind_b, reg_b) = load_registry(b_path)?;
    let (a_path, b_path) = (display_name(a_path), display_name(b_path));
    if kind_a != kind_b {
        return Err(CliError::Failure(format!(
            "cannot diff a {kind_a} ({a_path}) against a {kind_b} ({b_path})"
        )));
    }
    let entries = diff_registries(&reg_a, &reg_b);
    let mut out = format!("{kind_a} diff: {a_path} -> {b_path}\n");
    out.push_str(&render_diff(&entries, all));
    if let Some(threshold) = fail_on_regress {
        let gate = RegressionCheck { threshold_pct: threshold };
        let regressions = gate.regressions(&entries);
        if regressions.is_empty() {
            let _ = writeln!(out, "regression gate: ok (threshold {threshold}%)");
        } else {
            let _ = writeln!(
                out,
                "regression gate FAILED: {} metric(s) regressed past {threshold}%:",
                regressions.len()
            );
            for e in regressions {
                out.push_str(&e.render());
                out.push('\n');
            }
            return Err(CliError::Failure(out.trim_end().to_string()));
        }
    }
    Ok(out)
}

/// Structural check of one benchmark-table entry (used by the
/// `mtasc.kernels.v1` / `mtasc.pe_scaling.v1` validators).
fn check_bench_point(v: &Json, fields: &[&str]) -> Result<(), String> {
    for field in fields {
        let val = v.get(field).ok_or_else(|| format!("missing field `{field}`"))?;
        let ok = match *field {
            "name" => val.as_str().is_some(),
            _ => val.as_u64().is_some() || val.as_f64().is_some(),
        };
        if !ok {
            return Err(format!("field `{field}` has the wrong type"));
        }
    }
    Ok(())
}

/// `mtasc stats validate`: check saved JSON artifacts against their
/// declared schemas. Full parse for run reports and profiles, structural
/// checks for benchmark tables.
pub fn cmd_stats_validate(paths: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    let mut bad = 0usize;
    for path in paths {
        let verdict = validate_one(path);
        match verdict {
            Ok(schema) => {
                let _ = writeln!(out, "{path}: ok ({schema})");
            }
            Err(msg) => {
                bad += 1;
                let _ = writeln!(out, "{path}: FAIL ({msg})");
            }
        }
    }
    if bad == 0 {
        Ok(out)
    } else {
        let _ = write!(out, "{bad} file(s) failed validation");
        Err(CliError::Failure(out))
    }
}

fn validate_one(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = Json::parse(&text).map_err(|e| e.to_string())?;
    // a bare array is a run listing — the `runs list --json` document,
    // also served as `GET /api/v1/runs`: every element must be a manifest
    if let Json::Arr(items) = &v {
        for (i, item) in items.iter().enumerate() {
            let schema = item
                .get("schema")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("[{i}]: missing `schema` field"))?;
            if schema != RUN_META_SCHEMA {
                return Err(format!(
                    "[{i}]: expected {RUN_META_SCHEMA} in a run listing, got `{schema}`"
                ));
            }
            RunMeta::from_json(item).ok_or_else(|| format!("[{i}]: malformed run manifest"))?;
        }
        return Ok(format!("{RUN_META_SCHEMA} list, {} run(s)", items.len()));
    }
    let schema = v.get("schema").and_then(Json::as_str).ok_or("missing `schema` field")?;
    match schema {
        REPORT_SCHEMA => {
            RunReport::from_json(&v).ok_or("malformed run report")?;
        }
        PROFILE_SCHEMA => {
            Profile::from_json(&v).ok_or("malformed profile")?;
        }
        RUN_META_SCHEMA => {
            RunMeta::from_json(&v).ok_or("malformed run manifest")?;
        }
        "mtasc.lint.v1" => {
            v.get("program")
                .and_then(|p| p.get("len"))
                .and_then(Json::as_u64)
                .ok_or("missing `program.len`")?;
            let diags =
                v.get("diagnostics").and_then(Json::as_arr).ok_or("missing `diagnostics`")?;
            let mut counts = [0u64; 3]; // errors, warnings, notes
            for (i, d) in diags.iter().enumerate() {
                let sev = d
                    .get("severity")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("diagnostics[{i}]: missing `severity`"))?;
                let slot = match sev {
                    "error" => 0,
                    "warning" => 1,
                    "note" => 2,
                    other => return Err(format!("diagnostics[{i}]: unknown severity `{other}`")),
                };
                counts[slot] += 1;
                let code = d
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("diagnostics[{i}]: missing `code`"))?;
                if asc_verify::explain(code).is_none() {
                    return Err(format!("diagnostics[{i}]: code `{code}` not in the catalog"));
                }
                d.get("pc")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("diagnostics[{i}]: missing `pc`"))?;
                d.get("message")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("diagnostics[{i}]: missing `message`"))?;
            }
            let summary = v.get("summary").ok_or("missing `summary`")?;
            for (field, expect) in ["errors", "warnings", "notes"].iter().zip(counts) {
                let got = summary
                    .get(field)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("summary: missing `{field}`"))?;
                if got != expect {
                    return Err(format!(
                        "summary: `{field}` says {got} but the report lists {expect}"
                    ));
                }
            }
        }
        "mtasc.kernels.v1" => {
            v.get("num_pes").and_then(Json::as_u64).ok_or("missing `num_pes`")?;
            let kernels = v.get("kernels").and_then(Json::as_arr).ok_or("missing `kernels`")?;
            for (i, k) in kernels.iter().enumerate() {
                check_bench_point(
                    k,
                    &["name", "instructions", "cycles", "wall_seconds", "instr_per_sec"],
                )
                .map_err(|e| format!("kernels[{i}]: {e}"))?;
            }
        }
        "mtasc.pe_scaling.v1" => {
            v.get("kernel").and_then(Json::as_str).ok_or("missing `kernel`")?;
            let points = v.get("points").and_then(Json::as_arr).ok_or("missing `points`")?;
            for (i, p) in points.iter().enumerate() {
                check_bench_point(
                    p,
                    &["num_pes", "instructions", "cycles", "wall_seconds", "instr_per_sec"],
                )
                .map_err(|e| format!("points[{i}]: {e}"))?;
                // optional fields added by the scale-out sweep: typed when
                // present, absent in pre-segmentation tables
                for field in
                    ["segments", "queries", "wall_seconds_1seg", "committed_bytes", "bytes_per_pe"]
                {
                    if let Some(val) = p.get(field) {
                        if val.as_u64().is_none() && val.as_f64().is_none() {
                            return Err(format!("points[{i}]: field `{field}` has the wrong type"));
                        }
                    }
                }
            }
        }
        other => return Err(format!("unknown schema `{other}`")),
    }
    Ok(schema.to_string())
}

/// `mtasc stats`: pretty-print a saved JSON run report.
pub fn cmd_stats(text: &str) -> Result<String, CliError> {
    let report =
        RunReport::parse(text).map_err(|e| CliError::Failure(format!("bad run report: {e}")))?;
    Ok(report.to_text())
}

/// `mtasc asm`: hex words, one per line.
pub fn cmd_asm(source: &str) -> Result<String, CliError> {
    let program = asc_asm::assemble(source)
        .map_err(|errs| CliError::Failure(asc_asm::render_errors(&errs)))?;
    let mut out = String::new();
    for w in program.words() {
        let _ = writeln!(out, "{w:08x}");
    }
    Ok(out)
}

/// `mtasc disasm`: hex words (one per line, `#` comments allowed) back to
/// text.
pub fn cmd_disasm(text: &str) -> Result<String, CliError> {
    let mut out = String::new();
    for (lineno, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let word = u32::from_str_radix(body.trim_start_matches("0x"), 16)
            .map_err(|_| CliError::Failure(format!("line {}: bad hex `{body}`", lineno + 1)))?;
        match asc_isa::decode(word) {
            Ok(i) => {
                let _ = writeln!(out, "{}", asc_asm::disassemble(&i));
            }
            Err(e) => {
                let _ = writeln!(out, "; {word:08x}: {e}");
            }
        }
    }
    Ok(out)
}

/// Parsed `mtasc lint` flags.
#[derive(Debug, Clone, Default)]
pub struct LintOpts {
    /// Emit the `mtasc.lint.v1` JSON report instead of text.
    pub json: bool,
    /// Treat warnings as fatal (notes never fail a program).
    pub deny_warnings: bool,
    /// Lint the asc-kernels corpus instead of a file.
    pub kernels: bool,
    /// Additionally run the program under this many perturbed schedules
    /// (seeds `0..N`) and fail on architectural-state divergence.
    pub schedules: Option<u64>,
}

/// `mtasc lint <file>`: assemble and statically analyze one program.
/// Returns `Err(CliError::Failure)` carrying the rendered report when the
/// program is not clean, so the findings are printed *and* the exit code
/// is 1.
pub fn cmd_lint(
    source: &str,
    path: &str,
    cfg: &MachineConfig,
    opts: &LintOpts,
) -> Result<String, CliError> {
    let program = asc_asm::assemble(source)
        .map_err(|errs| CliError::Failure(asc_asm::render_errors_with_source(source, &errs)))?;
    let report = asc_verify::analyze(&program, cfg);
    let mut out = if opts.json {
        report.to_json().to_pretty() + "\n"
    } else {
        report.render(Some(source), path)
    };
    let mut diverged = false;
    if let Some(seeds) = opts.schedules {
        let (section, div) = explore_schedules(&program, cfg, seeds);
        diverged = div;
        if !opts.json {
            out.push_str(&section);
        }
    }
    if report.is_clean(opts.deny_warnings) && !diverged {
        Ok(out)
    } else {
        Err(CliError::Failure(out.trim_end().to_string()))
    }
}

/// Cycle budget for one `--schedules` exploration run; programs a lint
/// invocation looks at finish far below this, and a runaway program is
/// reported as a fault outcome rather than hanging the lint.
const SCHEDULE_BUDGET: u64 = 10_000_000;

/// Execute the program under `seeds` perturbed legal schedules (seed 0
/// is the unperturbed rotating-priority baseline) and compare the final
/// architectural state digests. Returns the rendered section and whether
/// the outcomes diverged.
fn explore_schedules(
    program: &asc_asm::Program,
    cfg: &MachineConfig,
    seeds: u64,
) -> (String, bool) {
    let mut outcomes: Vec<(u64, String)> = Vec::new();
    for seed in 0..seeds {
        let outcome = match Machine::with_program(cfg.with_sched_seed(seed), program) {
            Ok(mut m) => match m.run(SCHEDULE_BUDGET) {
                Ok(_) => format!("state digest {:#018x}", m.arch_digest()),
                Err(e) => format!("fault: {e}"),
            },
            Err(e) => format!("load error: {e}"),
        };
        outcomes.push((seed, outcome));
    }
    let distinct: BTreeSet<&String> = outcomes.iter().map(|(_, o)| o).collect();
    let diverged = distinct.len() > 1;
    let mut section = format!("schedule exploration: {seeds} seeds\n");
    for (seed, outcome) in &outcomes {
        let _ = writeln!(section, "  seed {seed:>3}: {outcome}");
    }
    if diverged {
        let _ = writeln!(
            section,
            "DIVERGENT: {} distinct outcomes — the schedule alone decides the result",
            distinct.len()
        );
    } else {
        let _ = writeln!(section, "schedule-invariant: all seeds agree");
    }
    (section, diverged)
}

/// `mtasc lint --kernels`: lint every program in the asc-kernels corpus.
/// One status line per kernel; findings (if any) printed underneath.
pub fn cmd_lint_kernels(cfg: &MachineConfig, opts: &LintOpts) -> Result<String, CliError> {
    let mut out = String::new();
    let mut dirty = 0usize;
    for (name, src) in asc_kernels::harness::corpus() {
        let program = asc_asm::assemble(&src).map_err(|errs| {
            CliError::Failure(format!(
                "kernel `{name}` failed to assemble:\n{}",
                asc_asm::render_errors_with_source(&src, &errs)
            ))
        })?;
        let report = asc_verify::analyze(&program, cfg);
        let clean = report.is_clean(opts.deny_warnings);
        let _ = writeln!(
            out,
            "{name}: {} ({} instructions, {} errors, {} warnings, {} notes)",
            if clean { "ok" } else { "FAIL" },
            report.program_len,
            report.error_count(),
            report.warning_count(),
            report.note_count()
        );
        if !clean {
            dirty += 1;
            for line in report.render(Some(&src), &name).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    if dirty == 0 {
        Ok(out)
    } else {
        let _ = write!(out, "{dirty} kernel(s) failed lint");
        Err(CliError::Failure(out))
    }
}

/// `mtasc lint --explain CODE`: the long-form description of a
/// diagnostic code from the [`asc_verify::CODES`] catalog. `--explain
/// all` dumps the whole catalog; an unknown code fails with a
/// nearest-code hint.
pub fn cmd_explain(code: &str) -> Result<String, CliError> {
    if code.eq_ignore_ascii_case("all") {
        let mut out = String::new();
        for info in asc_verify::CODES {
            let _ = writeln!(
                out,
                "{}[{}]: {}\n\n{}\n",
                info.severity.label(),
                info.code,
                info.summary,
                info.explanation
            );
        }
        return Ok(out);
    }
    let info = asc_verify::explain(code).ok_or_else(|| {
        let nearest = asc_verify::CODES
            .iter()
            .min_by_key(|i| edit_distance(&code.to_ascii_uppercase(), i.code))
            .map(|i| i.code)
            .unwrap_or("E0001");
        CliError::Failure(format!(
            "unknown diagnostic code `{code}`; did you mean `{nearest}`? (`mtasc lint \
             --explain all` lists the whole catalog; see docs/static-analysis.md)"
        ))
    })?;
    Ok(format!(
        "{}[{}]: {}\n\n{}\n",
        info.severity.label(),
        info.code,
        info.summary,
        info.explanation
    ))
}

/// Levenshtein distance, for the `--explain` nearest-code hint. Codes
/// are 5 bytes, so the quadratic table is trivially small.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = (prev + usize::from(ca != cb)).min(row[j] + 1).min(cur + 1);
            prev = cur;
        }
    }
    row[b.len()]
}

/// `mtasc info`: geometry, figures, resource model.
pub fn cmd_info(opts: MachineOpts) -> String {
    let cfg = opts.config();
    let t = cfg.timing();
    let fc = FpgaConfig::from_machine(&cfg);
    let report = ResourceReport::model(&fc);
    let clock = ClockModel::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MTASC machine: {} PEs ({}), {} threads, broadcast arity {}",
        cfg.num_pes, cfg.width, cfg.threads, cfg.broadcast_arity
    );
    let _ = writeln!(out, "latencies: broadcast b = {}, reduction r = {} cycles", t.b, t.r);
    let _ = writeln!(
        out,
        "estimated clock: {:.1} MHz pipelined ({:.1} MHz if non-pipelined)\n",
        clock.pipelined_mhz(&fc),
        clock.nonpipelined_mhz(&fc)
    );
    out.push_str(&pipeline_organization(&t));
    out.push('\n');
    out.push_str(&control_unit_organization(&cfg));
    out.push('\n');
    out.push_str(&report.render_table(&Device::ep2c35()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_options() {
        let mut args: Vec<String> =
            ["run", "--pes", "64", "x.asc", "--trace", "--width", "8", "--no-forwarding"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let opts = MachineOpts::parse(&mut args).unwrap();
        assert_eq!(opts.pes, 64);
        assert_eq!(opts.width, Width::W8);
        assert!(opts.trace);
        assert!(!opts.forwarding);
        assert_eq!(args, vec!["run", "x.asc"]);
    }

    #[test]
    fn parse_fusion_flags() {
        let mut args: Vec<String> = ["run", "x.asc", "--no-fuse", "--no-simd", "--fusion-stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = MachineOpts::parse(&mut args).unwrap();
        assert!(!opts.fusion);
        assert!(!opts.simd);
        assert!(opts.fusion_stats);
        assert!(!opts.config().fusion);
        assert!(!opts.config().simd);
        assert_eq!(opts.config().simd_level(), asc_core::SimdLevel::Scalar);
        assert!(MachineOpts::default().config().fusion, "fusion is the default");
        assert!(MachineOpts::default().config().simd, "SIMD dispatch is the default");
    }

    #[test]
    fn parse_segments_flag() {
        let mut args: Vec<String> =
            ["run", "x.asc", "--segments", "4"].iter().map(|s| s.to_string()).collect();
        let opts = MachineOpts::parse(&mut args).unwrap();
        assert_eq!(opts.segments, 4);
        assert_eq!(opts.config().segments, 4);
        assert_eq!(MachineOpts::default().config().segments, 0, "auto slicing is the default");
    }

    #[test]
    fn version_surfaces_execution_strategy() {
        let text = version_text();
        assert!(text.contains(REPORT_SCHEMA), "{text}");
        assert!(text.contains("execution: simd "), "{text}");
        assert!(text.contains("segments "), "{text}");
        assert!(text.contains("MTASC_SEGMENTS"), "{text}");
        assert!(text.contains("MTASC_PAR_THRESHOLD"), "{text}");
    }

    #[test]
    fn fusion_stats_are_printed_and_identical_without_fusion() {
        let src = "pidx p1\npaddi p2, p1, 3\npclti pf1, p2, 4\nrcount s1, pf1\nhalt\n";
        let fused =
            cmd_run(src, MachineOpts { fusion_stats: true, ..MachineOpts::default() }).unwrap();
        assert!(fused.contains("block fusion:"), "{fused}");
        assert!(fused.contains("1 blocks executed"), "{fused}");
        let unfused = cmd_run(
            src,
            MachineOpts { fusion: false, fusion_stats: true, ..MachineOpts::default() },
        )
        .unwrap();
        assert!(unfused.contains("0 blocks executed"), "{unfused}");
        // identical run output apart from the fusion block
        let strip = |s: &str| {
            s.lines()
                .filter(|l| {
                    !l.contains("fusion")
                        && !l.contains("static")
                        && !l.contains("dynamic")
                        && !l.contains("compile")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&fused), strip(&unfused));
        // and the scalar-kernel escape hatch changes nothing either
        let no_simd =
            cmd_run(src, MachineOpts { simd: false, fusion_stats: true, ..MachineOpts::default() })
                .unwrap();
        assert!(no_simd.contains("0 SIMD-bound at scalar"), "{no_simd}");
        assert_eq!(strip(&fused), strip(&no_simd));
    }

    #[test]
    fn bad_option_values() {
        let mut args: Vec<String> = ["--pes", "lots"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(MachineOpts::parse(&mut args), Err(CliError::Usage(_))));
        let mut args: Vec<String> = ["--width", "12"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(MachineOpts::parse(&mut args), Err(CliError::Usage(_))));
        let mut args: Vec<String> = vec!["--pes".to_string()];
        assert!(matches!(MachineOpts::parse(&mut args), Err(CliError::Usage(_))));
    }

    #[test]
    fn run_reports_results() {
        let out = cmd_run(
            "pidx p1\nrsum s1, p1\nhalt\n",
            MachineOpts { trace: true, ..MachineOpts::default() },
        )
        .unwrap();
        assert!(out.contains("s1"));
        assert!(out.contains("120")); // sum 0..=15
        assert!(out.contains("IPC"));
        assert!(out.contains("WB"), "trace diagram present");
    }

    #[test]
    fn report_and_trace_json_flags() {
        let dir = std::env::temp_dir().join("mtasc_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let trace_path = dir.join("trace.jsonl");
        let out = cmd_run(
            "pidx p1\nrsum s1, p1\nhalt\n",
            MachineOpts {
                report: Some(report_path.to_string_lossy().into_owned()),
                trace_json: Some(trace_path.to_string_lossy().into_owned()),
                ..MachineOpts::default()
            },
        )
        .unwrap();
        assert!(out.contains("run report written to"));
        assert!(out.contains("trace events written to"));

        // the report's totals must exactly match what the text run printed
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report = RunReport::parse(&text).unwrap();
        assert!(out.contains(&format!("cycles: {}", report.totals.cycles)));
        assert!(out.contains(&format!("issued: {} ", report.totals.issued)));
        let summary = cmd_stats(&text).unwrap();
        assert!(summary.starts_with("machine: 16 PEs"));
        assert!(summary.contains("IPC"));

        // the trace parses back and has one issue event per instruction
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        let events = asc_core::obs::parse_json_lines(&trace_text).unwrap();
        let issues =
            events.iter().filter(|e| matches!(e, asc_core::obs::TraceEvent::Issue { .. })).count()
                as u64;
        assert_eq!(issues, report.totals.issued);
    }

    #[test]
    fn profile_reports_conservation_and_hot_spots() {
        let dir = std::env::temp_dir().join("mtasc_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("profile.json");
        let out = cmd_profile(
            "pidx p1\nrsum s1, p1\nadd s2, s1, s1\nhalt\n",
            MachineOpts::default(),
            5,
            Some(&json_path.to_string_lossy()),
        )
        .unwrap();
        assert!(out.contains("conservation: exact"), "{out}");
        assert!(out.contains("rsum"), "hot table shows disassembly: {out}");
        assert!(out.contains("profile written to"), "{out}");
        // the JSON document round-trips losslessly
        let text = std::fs::read_to_string(&json_path).unwrap();
        let profile = Profile::parse(&text).unwrap();
        assert_eq!(profile.to_json().to_pretty(), text);
    }

    #[test]
    fn profile_dispatch_parses_flags() {
        let dir = std::env::temp_dir().join("mtasc_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("prog.asc");
        std::fs::write(&f, "pidx p1\nrsum s1, p1\nhalt\n").unwrap();
        let path = f.to_string_lossy().into_owned();
        let out = dispatch(vec![
            "profile".into(),
            path.clone(),
            "--top".into(),
            "3".into(),
            "--no-record".into(),
        ])
        .unwrap();
        assert!(out.contains("cycles:"), "{out}");
        assert!(matches!(dispatch(vec!["profile".into()]), Err(CliError::Usage(_))));
        assert!(matches!(
            dispatch(vec!["profile".into(), path, "--bogus".into(), "--no-record".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_chrome_writes_a_loadable_trace() {
        let dir = std::env::temp_dir().join("mtasc_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let chrome_path = dir.join("trace.chrome.json");
        let jsonl_path = dir.join("trace.jsonl");
        let out = cmd_run(
            "pidx p1\nrsum s1, p1\nhalt\n",
            MachineOpts {
                trace_chrome: Some(chrome_path.to_string_lossy().into_owned()),
                trace_json: Some(jsonl_path.to_string_lossy().into_owned()),
                ..MachineOpts::default()
            },
        )
        .unwrap();
        assert!(out.contains("chrome trace written to"), "{out}");
        assert!(out.contains("trace events written to"), "{out}");
        // the chrome trace is valid JSON with a traceEvents array
        let text = std::fs::read_to_string(&chrome_path).unwrap();
        let v = Json::parse(&text).unwrap();
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        // the buffered JSON-Lines file parses back
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(!parse_json_lines(&jsonl).unwrap().is_empty());
    }

    #[test]
    fn trace_convert_round_trips_a_jsonl_trace() {
        let dir = std::env::temp_dir().join("mtasc_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl_path = dir.join("conv.jsonl");
        cmd_run(
            "pidx p1\nrsum s1, p1\nhalt\n",
            MachineOpts {
                trace_json: Some(jsonl_path.to_string_lossy().into_owned()),
                ..MachineOpts::default()
            },
        )
        .unwrap();
        let out = dispatch(vec![
            "trace".into(),
            "convert".into(),
            jsonl_path.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let v = Json::parse(&out).unwrap();
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        assert!(matches!(
            dispatch(vec!["trace".into(), "frobnicate".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stats_diff_and_regression_gate() {
        let dir = std::env::temp_dir().join("mtasc_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fast = dir.join("fast.json");
        let slow = dir.join("slow.json");
        for (path, forwarding) in [(&fast, true), (&slow, false)] {
            cmd_run(
                "pidx p1\nrsum s1, p1\nadd s2, s1, s1\nhalt\n",
                MachineOpts {
                    forwarding,
                    report: Some(path.to_string_lossy().into_owned()),
                    ..MachineOpts::default()
                },
            )
            .unwrap();
        }
        let fast_s = fast.to_string_lossy().into_owned();
        let slow_s = slow.to_string_lossy().into_owned();
        let out =
            dispatch(vec!["stats".into(), "diff".into(), fast_s.clone(), fast_s.clone()]).unwrap();
        assert!(out.contains("no metric changes"), "{out}");
        // same report twice always passes the gate
        assert!(dispatch(vec![
            "stats".into(),
            "diff".into(),
            fast_s.clone(),
            fast_s.clone(),
            "--fail-on-regress".into(),
            "0".into()
        ])
        .is_ok());
        assert!(matches!(
            dispatch(vec!["stats".into(), "diff".into(), fast_s.clone()]),
            Err(CliError::Usage(_))
        ));
        let out = dispatch(vec!["stats".into(), "diff".into(), fast_s, slow_s]).unwrap();
        assert!(out.contains("metric(s) changed"), "{out}");
    }

    #[test]
    fn stats_diff_profiles_and_rejects_mixed_kinds() {
        let dir = std::env::temp_dir().join("mtasc_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prof = dir.join("p.json");
        let report = dir.join("r.json");
        let src = "pidx p1\nrsum s1, p1\nadd s2, s1, s1\nhalt\n";
        cmd_profile(src, MachineOpts::default(), 5, Some(&prof.to_string_lossy())).unwrap();
        cmd_run(
            src,
            MachineOpts {
                report: Some(report.to_string_lossy().into_owned()),
                ..MachineOpts::default()
            },
        )
        .unwrap();
        let p = prof.to_string_lossy().into_owned();
        let r = report.to_string_lossy().into_owned();
        let out = cmd_stats_diff(&p, &p, Some(0.0), false).unwrap();
        assert!(out.contains("profile diff"), "{out}");
        assert!(out.contains("regression gate: ok"), "{out}");
        let e = cmd_stats_diff(&p, &r, None, false).unwrap_err();
        assert!(e.to_string().contains("cannot diff"), "{e}");
    }

    #[test]
    fn stats_diff_gates_bench_tables() {
        let dir = std::env::temp_dir().join("mtasc_bench_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let kernels = |wall_sort: f64, wall_search: f64| {
            format!(
                r#"{{"schema":"mtasc.kernels.v1","num_pes":4096,"kernels":[
                    {{"name":"sort","instructions":100,"cycles":200,
                      "wall_seconds":{wall_sort},"instr_per_sec":{}}},
                    {{"name":"search","instructions":50,"cycles":80,
                      "wall_seconds":{wall_search},"instr_per_sec":{}}}]}}"#,
                100.0 / wall_sort,
                50.0 / wall_search
            )
        };
        let (a, b, c) = (dir.join("a.json"), dir.join("b.json"), dir.join("c.json"));
        std::fs::write(&a, kernels(0.002, 0.0001)).unwrap();
        std::fs::write(&b, kernels(0.001, 0.00008)).unwrap();
        std::fs::write(&c, kernels(0.004, 0.0001)).unwrap();
        let (a, b, c) = (
            a.to_string_lossy().into_owned(),
            b.to_string_lossy().into_owned(),
            c.to_string_lossy().into_owned(),
        );
        // a -> b is a pure speedup: the gate passes and the geomean summary
        // metric is present in the rendered table
        let out = cmd_stats_diff(&a, &b, Some(0.0), false).unwrap();
        assert!(out.contains("kernel bench table diff"), "{out}");
        assert!(out.contains("kernel.sort.wall_ms"), "{out}");
        assert!(out.contains("geomean.wall_ms"), "{out}");
        assert!(out.contains("regression gate: ok"), "{out}");
        // a -> c doubles sort's wall time: the gate must trip on it
        let e = cmd_stats_diff(&a, &c, Some(25.0), false).unwrap_err();
        assert!(e.to_string().contains("kernel.sort.wall_ms"), "{e}");
        // pe-scaling sweeps diff too, and a sweep extended with new sizes
        // must not regress (the new points have no baseline)
        let sweep = |extra: &str| {
            format!(
                r#"{{"schema":"mtasc.pe_scaling.v1","kernel":"associative_search","points":[
                    {{"num_pes":16,"instructions":10,"cycles":20,
                      "wall_seconds":0.001,"instr_per_sec":10000.0}}{extra}]}}"#
            )
        };
        let (s1, s2) = (dir.join("s1.json"), dir.join("s2.json"));
        std::fs::write(&s1, sweep("")).unwrap();
        std::fs::write(
            &s2,
            sweep(
                r#",{"num_pes":262144,"instructions":99,"cycles":120,
                   "wall_seconds":0.5,"instr_per_sec":198.0}"#,
            ),
        )
        .unwrap();
        let out =
            cmd_stats_diff(&s1.to_string_lossy(), &s2.to_string_lossy(), Some(0.0), false).unwrap();
        assert!(out.contains("pe-scaling sweep diff"), "{out}");
        assert!(out.contains("regression gate: ok"), "{out}");
        // mixed bench kinds are rejected like any other kind mismatch
        let e = cmd_stats_diff(&a, &s1.to_string_lossy(), None, false).unwrap_err();
        assert!(e.to_string().contains("cannot diff"), "{e}");
    }

    #[test]
    fn stats_validate_checks_declared_schemas() {
        let dir = std::env::temp_dir().join("mtasc_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("good.json");
        cmd_run(
            "pidx p1\nrsum s1, p1\nhalt\n",
            MachineOpts {
                report: Some(report.to_string_lossy().into_owned()),
                ..MachineOpts::default()
            },
        )
        .unwrap();
        let bench = dir.join("bench.json");
        std::fs::write(
            &bench,
            r#"{"schema":"mtasc.kernels.v1","num_pes":16,"kernels":[{"name":"sort",
                "instructions":10,"cycles":20,"wall_seconds":0.5,"instr_per_sec":20.0}]}"#,
        )
        .unwrap();
        let out = cmd_stats_validate(&[
            report.to_string_lossy().into_owned(),
            bench.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("ok (mtasc.run_report.v1)"), "{out}");
        assert!(out.contains("ok (mtasc.kernels.v1)"), "{out}");
        // a malformed table fails with a pinpointed message
        let broken = dir.join("broken.json");
        std::fs::write(&broken, r#"{"schema":"mtasc.kernels.v1","num_pes":16,"kernels":[{}]}"#)
            .unwrap();
        let e = cmd_stats_validate(&[broken.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.to_string().contains("kernels[0]"), "{e}");
        let unknown = dir.join("unknown.json");
        std::fs::write(&unknown, r#"{"schema":"mtasc.nope.v9"}"#).unwrap();
        let e = cmd_stats_validate(&[unknown.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.to_string().contains("unknown schema"), "{e}");
        // the scale-out sweep fields are optional but typed when present
        let sweep = dir.join("sweep.json");
        std::fs::write(
            &sweep,
            r#"{"schema":"mtasc.pe_scaling.v1","kernel":"query_latency","points":[
                {"num_pes":65536,"instructions":10,"cycles":20,"wall_seconds":0.5,
                 "instr_per_sec":20.0,"segments":16,"queries":32,
                 "wall_seconds_1seg":0.7,"committed_bytes":1048576,"bytes_per_pe":16.0}]}"#,
        )
        .unwrap();
        let out = cmd_stats_validate(&[sweep.to_string_lossy().into_owned()]).unwrap();
        assert!(out.contains("ok (mtasc.pe_scaling.v1)"), "{out}");
        let bad_sweep = dir.join("bad_sweep.json");
        std::fs::write(
            &bad_sweep,
            r#"{"schema":"mtasc.pe_scaling.v1","kernel":"query_latency","points":[
                {"num_pes":65536,"instructions":10,"cycles":20,"wall_seconds":0.5,
                 "instr_per_sec":20.0,"segments":"sixteen"}]}"#,
        )
        .unwrap();
        let e = cmd_stats_validate(&[bad_sweep.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.to_string().contains("`segments` has the wrong type"), "{e}");
    }

    #[test]
    fn lossy_trace_warns_on_run() {
        // write to a JSON-Lines sink on a path whose directory is missing:
        // creation fails up front, so instead use a chrome-trace run with a
        // tiny max-cycles to keep it cheap and assert the non-lossy path
        // stays quiet
        let out = cmd_run("halt\n", MachineOpts::default()).unwrap();
        assert!(!out.contains("trace is lossy"), "{out}");
    }

    #[test]
    fn stats_rejects_garbage() {
        assert!(matches!(cmd_stats("not json"), Err(CliError::Failure(_))));
        assert!(matches!(cmd_stats("{}"), Err(CliError::Failure(_))));
    }

    #[test]
    fn empty_trace_prints_placeholder() {
        // a program whose first instruction halts still issues once, so
        // force the empty-record path directly through the library
        let t = MachineOpts::default().config().timing();
        assert_eq!(hazard_diagram(&[], &t), "(no issues recorded)\n");
    }

    #[test]
    fn run_surfaces_assembly_errors() {
        let e = cmd_run("frobnicate\n", MachineOpts::default()).unwrap_err();
        assert!(matches!(e, CliError::Failure(_)));
        assert!(e.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn asm_disasm_round_trip() {
        let hex = cmd_asm("add s1, s2, s3\nhalt\n").unwrap();
        let text = cmd_disasm(&hex).unwrap();
        assert_eq!(text, "add s1, s2, s3\nhalt\n");
    }

    #[test]
    fn disasm_flags_bad_words() {
        let out = cmd_disasm("ff000000\n").unwrap();
        assert!(out.contains("invalid opcode"));
        assert!(cmd_disasm("zzz\n").is_err());
    }

    #[test]
    fn ascl_files_are_lowered() {
        let dir = std::env::temp_dir().join("mtasc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("demo.ascl");
        std::fs::write(&f, "par x; x = index(); out(sum(x));").unwrap();
        let out =
            dispatch(vec!["run".into(), f.to_string_lossy().into_owned(), "--no-record".into()])
                .unwrap();
        assert!(out.contains("120"), "{out}"); // sum 0..=15
        let asm = dispatch(vec!["lower".into(), f.to_string_lossy().into_owned()]).unwrap();
        assert!(asm.contains("rsum"));
    }

    #[test]
    fn lint_clean_program_passes() {
        let out = cmd_lint(
            "pidx p1\nrsum s1, p1\nhalt\n",
            "x.asc",
            &MachineOpts::default().config(),
            &LintOpts::default(),
        )
        .unwrap();
        assert!(out.contains("clean: no findings"), "{out}");
    }

    #[test]
    fn lint_flags_real_bugs_with_exit_failure() {
        let e = cmd_lint(
            "li s1, 2000\nlw s2, 0(s1)\nhalt\n",
            "x.asc",
            &MachineOpts::default().config(),
            &LintOpts::default(),
        )
        .unwrap_err();
        let CliError::Failure(msg) = e else { panic!("expected failure") };
        assert!(msg.contains("error[E2002]"), "{msg}");
        assert!(msg.contains("x.asc:2"), "caret location present: {msg}");
    }

    #[test]
    fn lint_deny_warnings_promotes_warnings_to_failure() {
        let src = "add s1, s2, s3\nhalt\n"; // s2/s3 never written
        let cfg = MachineOpts::default().config();
        assert!(cmd_lint(src, "x.asc", &cfg, &LintOpts::default()).is_ok());
        let opts = LintOpts { deny_warnings: true, ..LintOpts::default() };
        let e = cmd_lint(src, "x.asc", &cfg, &opts).unwrap_err();
        assert!(e.to_string().contains("W1001"), "{e}");
    }

    #[test]
    fn lint_json_output_parses() {
        let opts = LintOpts { json: true, ..LintOpts::default() };
        let out = cmd_lint("halt\n", "x.asc", &MachineOpts::default().config(), &opts).unwrap();
        let v = asc_core::obs::Json::parse(&out).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("mtasc.lint.v1"));
    }

    #[test]
    fn lint_explain_and_unknown_code() {
        let out = cmd_explain("E2002").unwrap();
        assert!(out.contains("error[E2002]"), "{out}");
        let out = cmd_explain("w1001").unwrap();
        assert!(out.contains("warning[W1001]"), "case-insensitive: {out}");
        assert!(matches!(cmd_explain("Z1234"), Err(CliError::Failure(_))));
    }

    #[test]
    fn lint_kernel_corpus_is_clean_under_deny_warnings() {
        let opts = LintOpts { deny_warnings: true, ..LintOpts::default() };
        let out = cmd_lint_kernels(&MachineOpts::default().config(), &opts).unwrap();
        assert!(out.lines().count() >= 15, "whole corpus linted:\n{out}");
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn lint_dispatch_parses_flags() {
        let dir = std::env::temp_dir().join("mtasc_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("clean.asc");
        std::fs::write(&f, "pidx p1\nrsum s1, p1\nhalt\n").unwrap();
        let path = f.to_string_lossy().into_owned();
        assert!(dispatch(vec!["lint".into(), path.clone()]).is_ok());
        assert!(dispatch(vec!["lint".into(), path.clone(), "--json".into()]).is_ok());
        assert!(matches!(
            dispatch(vec!["lint".into(), path.clone(), "--deny".into(), "errors".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(vec!["lint".into(), path, "--bogus".into()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(dispatch(vec!["lint".into()]), Err(CliError::Usage(_))));
        let out = dispatch(vec!["lint".into(), "--explain".into(), "N5003".into()]).unwrap();
        assert!(out.contains("note[N5003]"));
        assert!(matches!(
            dispatch(vec!["lint".into(), "x.asc".into(), "--schedules".into(), "1".into()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn explain_all_dumps_the_whole_catalog() {
        let out = cmd_explain("all").unwrap();
        for info in asc_verify::CODES {
            assert!(out.contains(info.code), "missing {} in --explain all", info.code);
        }
    }

    #[test]
    fn explain_unknown_code_suggests_the_nearest() {
        for typo in ["E6002", "W401", "w6001", "X9999"] {
            let e = cmd_explain(typo).unwrap_err();
            let msg = e.to_string();
            let (_, rest) = msg.split_once("did you mean `").unwrap_or_else(|| panic!("{msg}"));
            let suggested = rest.split('`').next().unwrap();
            assert!(asc_verify::explain(suggested).is_some(), "{msg}");
        }
    }

    #[test]
    fn lint_schedules_proves_divergence_and_invariance() {
        // The E6001 fixture shape: both threads definitely write word 100
        // with different values; the parent writes often enough that the
        // later-starting child's store lands first under some seeds.
        let racy = "        li      s1, child
                            tspawn  s2, s1
                            li      s3, 1
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            tjoin   s2
                            halt
            child:          li      s3, 2
                            sw      s3, 100(s0)
                            sw      s3, 100(s0)
                            texit
            ";
        let opts = LintOpts { schedules: Some(16), ..LintOpts::default() };
        let e = cmd_lint(racy, "racy.asc", &MachineOpts::default().config(), &opts).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("E6001"), "{msg}");
        assert!(msg.contains("DIVERGENT"), "{msg}");
        // A joined (race-free) variant is schedule-invariant.
        let clean = "        li      s1, child
                             tspawn  s2, s1
                             tjoin   s2
                             li      s3, 1
                             sw      s3, 100(s0)
                             halt
            child:           li      s3, 2
                             sw      s3, 100(s0)
                             texit
            ";
        let out = cmd_lint(clean, "clean.asc", &MachineOpts::default().config(), &opts).unwrap();
        assert!(out.contains("schedule-invariant"), "{out}");
    }

    #[test]
    fn stats_validate_knows_the_lint_schema() {
        let dir = std::env::temp_dir().join("mtasc_validate_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let program = asc_asm::assemble("        li s1, 2000\n        lw s2, 0(s1)\n").unwrap();
        let report = asc_verify::analyze(&program, &MachineOpts::default().config());
        let good = dir.join("lint.json");
        std::fs::write(&good, report.to_json().to_pretty()).unwrap();
        let out = cmd_stats_validate(&[good.to_string_lossy().into_owned()]).unwrap();
        assert!(out.contains("ok (mtasc.lint.v1)"), "{out}");
        // a summary that disagrees with the diagnostics list is rejected
        let bad = dir.join("bad_lint.json");
        std::fs::write(
            &bad,
            r#"{"schema":"mtasc.lint.v1","program":{"len":2},
                "diagnostics":[{"severity":"error","code":"E2002","pc":1,"message":"m","notes":[]}],
                "summary":{"errors":0,"warnings":0,"notes":0}}"#,
        )
        .unwrap();
        let e = cmd_stats_validate(&[bad.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.to_string().contains("`errors` says 0"), "{e}");
        // unknown codes are rejected so --explain always resolves
        let unknown = dir.join("unknown_code.json");
        std::fs::write(
            &unknown,
            r#"{"schema":"mtasc.lint.v1","program":{"len":2},
                "diagnostics":[{"severity":"error","code":"E9999","pc":1,"message":"m","notes":[]}],
                "summary":{"errors":1,"warnings":0,"notes":0}}"#,
        )
        .unwrap();
        let e = cmd_stats_validate(&[unknown.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.to_string().contains("not in the catalog"), "{e}");
    }

    #[test]
    fn lint_lowers_ascl_first() {
        let dir = std::env::temp_dir().join("mtasc_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("demo.ascl");
        std::fs::write(&f, "par x; x = index(); out(sum(x));").unwrap();
        assert!(dispatch(vec!["lint".into(), f.to_string_lossy().into_owned()]).is_ok());
    }

    #[test]
    fn info_renders() {
        let out = cmd_info(MachineOpts::default());
        assert!(out.contains("b = 2"));
        assert!(out.contains("75.0 MHz"));
        assert!(out.contains("Control Unit"));
    }

    #[test]
    fn dispatch_usage() {
        assert!(matches!(dispatch(vec![]), Err(CliError::Usage(_))));
        assert!(matches!(dispatch(vec!["bogus".into()]), Err(CliError::Usage(_))));
    }

    #[test]
    fn version_prints_crate_version_and_schemas() {
        let out = dispatch(vec!["--version".into()]).unwrap();
        assert!(out.contains(env!("CARGO_PKG_VERSION")), "{out}");
        for schema in [
            "mtasc.run_report.v1",
            "mtasc.profile.v1",
            "mtasc.lint.v1",
            "mtasc.run_meta.v1",
            "mtasc.progress.v1",
            "mtasc.stats_diff.v1",
            "mtasc.http.v1",
        ] {
            assert!(out.contains(schema), "missing {schema} in: {out}");
        }
        assert_eq!(dispatch(vec!["-V".into()]).unwrap(), out);
    }

    #[test]
    fn stats_diff_rejects_stdin_on_both_sides() {
        let e = dispatch(vec!["stats".into(), "diff".into(), "-".into(), "-".into()]);
        assert!(matches!(e, Err(CliError::Usage(_))), "{e:?}");
    }

    /// Scratch registry root for one test, removed on drop.
    struct TempRuns(std::path::PathBuf);

    impl TempRuns {
        fn new(tag: &str) -> TempRuns {
            let dir = std::env::temp_dir().join(format!("mtasc_runs_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempRuns(dir)
        }

        fn arg(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempRuns {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn record_one(tmp: &TempRuns, cmd: &str, extra: &[&str]) -> String {
        let dir = std::env::temp_dir().join("mtasc_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("prog.asc");
        std::fs::write(&f, "pidx p1\nrsum s1, p1\nhalt\n").unwrap();
        let mut args =
            vec![cmd.to_string(), f.to_string_lossy().into_owned(), "--runs-dir".into(), tmp.arg()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = dispatch(args).unwrap();
        let id = out
            .lines()
            .find_map(|l| l.strip_prefix("recorded run "))
            .unwrap_or_else(|| panic!("no recorded-run line in: {out}"));
        assert!(asc_obs_store::is_ulid(id), "{id}");
        id.to_string()
    }

    #[test]
    fn run_records_and_runs_subcommands_round_trip() {
        let tmp = TempRuns::new("e2e");
        let a = record_one(&tmp, "run", &[]);
        let b = record_one(&tmp, "profile", &[]);
        let runs = |rest: &[&str]| {
            let mut args = vec!["runs".to_string()];
            args.push(rest[0].to_string());
            args.extend(["--runs-dir".to_string(), tmp.arg()]);
            args.extend(rest[1..].iter().map(|s| s.to_string()));
            dispatch(args)
        };

        // list: both runs, newest first; pagination and status filter
        let out = runs(&["list"]).unwrap();
        assert!(out.contains(&a) && out.contains(&b), "{out}");
        assert!(out.find(&b).unwrap() < out.find(&a).unwrap(), "newest first: {out}");
        let page = runs(&["list", "--limit", "1", "--offset", "1"]).unwrap();
        assert!(page.contains(&a) && !page.contains(&b), "{page}");
        assert!(page.contains("(1 of 2 runs shown)"), "{page}");
        assert!(runs(&["list", "--status", "fault"]).unwrap().lines().count() <= 1);
        let json = runs(&["list", "--json"]).unwrap();
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 2);

        // show: profile run renders the recorded hot-spot table
        let shown = runs(&["show", &b]).unwrap();
        assert!(shown.contains("status   ok"), "{shown}");
        assert!(shown.contains("cycles"), "{shown}");
        // unique prefix resolves too
        assert!(runs(&["show", &b[..10]]).is_ok());

        // diff: same-kind artifacts via registry ids
        let diffed = runs(&["diff", &a, &a]).unwrap();
        assert!(diffed.contains("diff"), "{diffed}");
        // mixed kinds (run report vs profile) are rejected
        assert!(matches!(runs(&["diff", &a, &b]), Err(CliError::Failure(_))));

        // export: prometheus text exposition
        let prom = runs(&["export", "--prometheus"]).unwrap();
        assert!(prom.contains("mtasc_runs_total{status=\"ok\"} 2"), "{prom}");
        assert!(prom.contains("mtasc_run_ipc"), "{prom}");

        // gc: keep newest, prune the older run
        let pruned = runs(&["gc", "--keep", "1"]).unwrap();
        assert!(pruned.contains(&a), "{pruned}");
        let left = runs(&["list"]).unwrap();
        assert!(left.contains(&b) && !left.contains(&a), "{left}");
    }

    #[test]
    fn watch_no_follow_renders_recorded_heartbeats() {
        let tmp = TempRuns::new("watch");
        let id = record_one(&tmp, "run", &["--progress-every", "1"]);
        let out = dispatch(vec![
            "runs".into(),
            "watch".into(),
            id.clone(),
            "--no-follow".into(),
            "--runs-dir".into(),
            tmp.arg(),
        ])
        .unwrap();
        assert!(out.contains(&id), "{out}");
        assert!(out.contains("cycle"), "heartbeats rendered: {out}");
    }

    #[test]
    fn faulting_run_is_recorded_with_fault_status() {
        let tmp = TempRuns::new("fault");
        let dir = std::env::temp_dir().join("mtasc_registry_fault");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("spin.asc");
        // unbounded loop + tiny cycle budget => BudgetExhausted fault
        std::fs::write(&f, "loop:\n  addi s1, s1, 1\n  b loop\n").unwrap();
        let e = dispatch(vec![
            "run".into(),
            f.to_string_lossy().into_owned(),
            "--max-cycles".into(),
            "64".into(),
            "--runs-dir".into(),
            tmp.arg(),
        ]);
        assert!(matches!(e, Err(CliError::Failure(_))), "{e:?}");
        let out = dispatch(vec![
            "runs".into(),
            "list".into(),
            "--status".into(),
            "fault".into(),
            "--runs-dir".into(),
            tmp.arg(),
        ])
        .unwrap();
        assert!(out.contains("fault"), "{out}");
    }

    #[test]
    fn stats_diff_reads_stdin_dash_only_via_paths() {
        // `-` on one side is accepted at the parse layer; reading stdin in
        // a unit test would hang, so the stdin path itself is pinned by
        // the exit-code integration test. Here: a path diffed against a
        // missing file still errors as Failure, not Usage.
        let e = cmd_stats_diff("/nonexistent/a.json", "/nonexistent/b.json", None, false);
        assert!(matches!(e, Err(CliError::Failure(_))));
    }
}
