//! In-process integration tests for the observability daemon: bind an
//! ephemeral port, drive it with a bare `TcpStream` client, and check
//! every route against the registry it serves.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use asc_core::obs::{Json, ProgressSample, RunReport};
use asc_core::{Machine, MachineConfig};
use asc_obs_store::{filter_list, list_to_json, program_hash, RunMeta, RunStore, HEARTBEAT_FILE};
use asc_serve::{ServeOpts, Server, HTTP_SCHEMA};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtasc-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Record one finished run with a real report artifact.
fn record_run(store: &RunStore, name: &str, cycle_budget: u64) -> String {
    let program = asc_asm::assemble(
        "        pidx   p1
                 rmax   s1, p1
                 halt
        ",
    )
    .unwrap();
    let mut m = Machine::with_program(MachineConfig::prototype(), &program).unwrap();
    let stats = m.run(cycle_budget).unwrap();
    let meta = RunMeta::begin("run", name, program_hash(name), "pes=16".into(), 16);
    let mut handle = store.begin(meta).unwrap();
    let report = RunReport::from_machine(&m);
    std::fs::write(handle.artifact_path("report.json"), report.to_json().to_pretty() + "\n")
        .unwrap();
    handle.add_artifact("report.json");
    let finished = handle.finish_ok(stats.cycles, stats.issued).unwrap();
    finished.id
}

fn start(root: &Path) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<std::io::Result<()>>) {
    let opts = ServeOpts {
        addr: "127.0.0.1:0".into(),
        runs_dir: Some(root.to_path_buf()),
        workers: 2,
        sse_poll_ms: 10,
    };
    let server = Server::bind(&opts).unwrap();
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    (addr, shutdown, thread::spawn(move || server.run()))
}

fn raw_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// GET `path`, returning (status, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = raw_request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    );
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

#[test]
fn list_show_artifact_and_errors() {
    let root = tmp_root("routes");
    let store = RunStore::open(&root).unwrap();
    let id_a = record_run(&store, "alpha.asc", 10_000);
    let id_b = record_run(&store, "beta.asc", 10_000);
    let (addr, shutdown, handle) = start(&root);

    // /healthz names the schema and the root it serves
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("schema").and_then(Json::as_str), Some(HTTP_SCHEMA));
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // /api/v1/runs is byte-for-byte the `runs list --json` document
    let (status, body) = get(addr, "/api/v1/runs");
    assert_eq!(status, 200);
    let (metas, _) = store.list().unwrap();
    assert_eq!(body, list_to_json(&metas).to_pretty() + "\n");

    // pagination + program filter narrow the same way filter_list does
    let (_, paged) = get(addr, "/api/v1/runs?limit=1&offset=1");
    let (expect, _) = filter_list(metas.clone(), None, None, Some(1), 1);
    assert_eq!(paged, list_to_json(&expect).to_pretty() + "\n");
    let query = program_hash("alpha.asc");
    let (_, filtered) = get(addr, &format!("/api/v1/runs?program={query}"));
    let doc = Json::parse(&filtered).unwrap();
    let rows = doc.as_arr().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("id").and_then(Json::as_str), Some(id_a.as_str()));
    let (status, _) = get(addr, "/api/v1/runs?status=bogus");
    assert_eq!(status, 400);

    // unique-prefix resolution on /api/v1/runs/<id>
    let prefix = &id_b[..10];
    let (status, body) = get(addr, &format!("/api/v1/runs/{prefix}"));
    assert_eq!(status, 200);
    let meta = Json::parse(&body).unwrap();
    assert_eq!(meta.get("id").and_then(Json::as_str), Some(id_b.as_str()));
    let (status, _) = get(addr, "/api/v1/runs/ZZZZZZ");
    assert_eq!(status, 404);
    // ULIDs recorded in the same millisecond share a long prefix; the
    // first character is enough to be ambiguous across two runs
    let (status, body) = get(addr, &format!("/api/v1/runs/{}", &id_a[..1]));
    if status != 200 {
        assert_eq!(status, 409, "{body}");
    }

    // report artifact is served verbatim
    let (status, body) = get(addr, &format!("/api/v1/runs/{id_a}/report"));
    assert_eq!(status, 200);
    let recorded = std::fs::read_to_string(store.run_dir(&id_a).join("report.json")).unwrap();
    assert_eq!(body, recorded);
    let (status, _) = get(addr, &format!("/api/v1/runs/{id_a}/profile"));
    assert_eq!(status, 404, "no profile was recorded");

    // routing misses and bad methods
    let (status, _) = get(addr, "/api/v2/nope");
    assert_eq!(status, 404);
    let raw = raw_request(addr, "POST /api/v1/runs HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 405 "), "{raw}");

    // /metrics: registry metrics plus the server's own counters
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("mtasc_runs_total{status=\"ok\"} 2"), "{body}");
    assert!(body.contains("mtasc_http_requests_total{route=\"/api/v1/runs\",status=\"200\"}"));
    assert!(body.contains("mtasc_http_in_flight_requests 1"), "the scrape itself is in flight");
    assert!(body.contains("mtasc_http_request_duration_ms_bucket{le=\"+Inf\"}"));
    assert!(body.contains("mtasc_http_request_duration_ms_count"));

    // the dashboard ships embedded
    let (status, body) = get(addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("<!DOCTYPE html>") && body.contains("mtasc serve"), "dashboard page");

    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap().unwrap();
}

#[test]
fn diff_reports_regressions_between_runs() {
    let root = tmp_root("diff");
    let store = RunStore::open(&root).unwrap();
    let id_a = record_run(&store, "base.asc", 10_000);
    let id_b = record_run(&store, "cand.asc", 10_000);
    // Inflate run B's recorded cycle count so the diff sees a regression
    // on the higher-is-worse `cycles` metric.
    let path = store.run_dir(&id_b).join("report.json");
    let mut report = RunReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    report.metrics.counter_add("cycles", report.metrics.counter("cycles") * 9);
    std::fs::write(&path, report.to_json().to_pretty() + "\n").unwrap();

    let (addr, shutdown, handle) = start(&root);
    let (status, body) = get(addr, &format!("/api/v1/runs/{id_a}/diff/{id_b}?fail-on-regress=5"));
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("mtasc.stats_diff.v1"));
    assert_eq!(doc.get("a").and_then(Json::as_str), Some(id_a.as_str()));
    assert_eq!(doc.get("b").and_then(Json::as_str), Some(id_b.as_str()));
    assert_eq!(doc.get("regressed"), Some(&Json::Bool(true)), "{body}");
    let names: Vec<&str> = doc
        .get("regressions")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(names.contains(&"cycles"), "{names:?}");

    // diffing against a missing run 404s
    let (status, _) = get(addr, &format!("/api/v1/runs/{id_a}/diff/ZZZZ"));
    assert_eq!(status, 404);

    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap().unwrap();
}

/// Read SSE events off a stream until the `end` event or EOF. Returns
/// (progress sample JSONs, end status).
fn read_sse(stream: TcpStream) -> (Vec<Json>, Option<String>) {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        head.push_str(&line);
        if line == "\r\n" {
            break;
        }
    }
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.to_ascii_lowercase().contains("content-type: text/event-stream"), "{head}");
    let mut samples = Vec::new();
    let mut end = None;
    let mut event = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let line = line.trim_end();
        if let Some(name) = line.strip_prefix("event: ") {
            event = name.to_string();
        } else if let Some(data) = line.strip_prefix("data: ") {
            match event.as_str() {
                "progress" => samples.push(Json::parse(data).unwrap()),
                "end" => {
                    end = Json::parse(data)
                        .unwrap()
                        .get("status")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                    break;
                }
                other => panic!("unexpected SSE event `{other}`"),
            }
        }
    }
    (samples, end)
}

#[test]
fn sse_replays_a_finished_run_and_closes() {
    let root = tmp_root("sse-finished");
    let store = RunStore::open(&root).unwrap();
    let meta = RunMeta::begin("run", "done.asc", program_hash("done.asc"), "pes=16".into(), 16);
    let handle = store.begin(meta).unwrap();
    let id = handle.id().to_string();
    let mut lines = String::new();
    for cycle in [100u64, 200, 300] {
        let sample = ProgressSample {
            cycle,
            issued: cycle / 2,
            final_sample: cycle == 300,
            ..ProgressSample::default()
        };
        lines.push_str(&(sample.to_json().to_compact() + "\n"));
    }
    std::fs::write(store.run_dir(&id).join(HEARTBEAT_FILE), lines).unwrap();
    handle.finish_ok(300, 150).unwrap();

    let (addr, shutdown, join) = start(&root);
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /api/v1/runs/{id}/progress HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (samples, end) = read_sse(stream);
    assert_eq!(samples.len(), 3);
    assert_eq!(samples[2].get("final"), Some(&Json::Bool(true)));
    assert_eq!(end.as_deref(), Some("ok"));

    shutdown.store(true, Ordering::SeqCst);
    join.join().unwrap().unwrap();
}

#[test]
fn sse_streams_a_live_run_until_the_final_sample() {
    let root = tmp_root("sse-live");
    let store = RunStore::open(&root).unwrap();
    let meta = RunMeta::begin("run", "live.asc", program_hash("live.asc"), "pes=16".into(), 16);
    let handle = store.begin(meta).unwrap();
    let id = handle.id().to_string();
    let heartbeat_path = store.run_dir(&id).join(HEARTBEAT_FILE);

    let sample = |cycle: u64, final_sample: bool| ProgressSample {
        cycle,
        issued: cycle,
        final_sample,
        ..ProgressSample::default()
    };
    // Two heartbeats exist before the client connects...
    let mut text = sample(10, false).to_json().to_compact() + "\n";
    text.push_str(&(sample(20, false).to_json().to_compact() + "\n"));
    std::fs::write(&heartbeat_path, text).unwrap();

    let (addr, shutdown, join) = start(&root);
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /api/v1/runs/{id}/progress HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();

    // ...and the rest land while the stream is open, torn write included.
    let writer = thread::spawn(move || {
        use std::fs::OpenOptions;
        thread::sleep(Duration::from_millis(60));
        let line = sample(30, false).to_json().to_compact() + "\n";
        let (first, rest) = line.split_at(line.len() / 2);
        let mut f = OpenOptions::new().append(true).open(&heartbeat_path).unwrap();
        f.write_all(first.as_bytes()).unwrap();
        f.sync_all().unwrap();
        thread::sleep(Duration::from_millis(60));
        f.write_all(rest.as_bytes()).unwrap();
        f.write_all((sample(40, true).to_json().to_compact() + "\n").as_bytes()).unwrap();
        drop(f);
        handle.finish_ok(40, 40).unwrap();
    });

    let (samples, end) = read_sse(stream);
    writer.join().unwrap();
    let cycles: Vec<u64> = samples.iter().filter_map(|s| s.get("cycle")?.as_u64()).collect();
    assert_eq!(cycles, vec![10, 20, 30, 40], "live tail saw every heartbeat exactly once");
    // the final heartbeat and the manifest rewrite race benignly: the
    // stream may close before or after finish_ok lands on disk
    assert!(matches!(end.as_deref(), Some("ok") | Some("running")), "{end:?}");

    shutdown.store(true, Ordering::SeqCst);
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_flag_stops_the_accept_loop() {
    let root = tmp_root("shutdown");
    RunStore::open(&root).unwrap();
    let (addr, shutdown, handle) = start(&root);
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap().unwrap();
    // the socket is released: connecting now fails (or is refused fast)
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
}
