#![warn(missing_docs)]

//! # asc-serve — `mtasc serve`, the HTTP observability daemon
//!
//! A zero-external-dependency HTTP/1.1 server over the persistent run
//! registry (`asc-obs-store`): everything `mtasc runs` can tell you,
//! served read-only over a socket so dashboards, scrapers, and curious
//! humans can watch simulations without shelling into the box.
//!
//! The server is hand-rolled on `std::net::TcpListener` plus a fixed
//! worker-thread pool — no async runtime, no HTTP framework — because
//! the workload is tiny JSON documents and the registry is append-only
//! files. Endpoints (all `GET`):
//!
//! | Route | Serves |
//! |---|---|
//! | `/api/v1/runs` | run listing; `?status=`, `?program=`, `?limit=`, `?offset=` — byte-for-byte the `mtasc runs list --json` document |
//! | `/api/v1/runs/<id>` | one manifest (`mtasc.run_meta.v1`), unique-prefix resolved |
//! | `/api/v1/runs/<id>/report` | the recorded `report.json` verbatim |
//! | `/api/v1/runs/<id>/profile` | the recorded `profile.json` verbatim |
//! | `/api/v1/runs/<id>/progress` | Server-Sent Events stream of `mtasc.progress.v1` heartbeats — live runs stream until the final sample, finished runs replay and close |
//! | `/api/v1/runs/<a>/diff/<b>` | stats diff between two recorded runs (`mtasc.stats_diff.v1`), `?fail-on-regress=PCT` sets the gate |
//! | `/metrics` | Prometheus exposition: registry metrics plus the server's own request counters |
//! | `/healthz` | liveness probe |
//! | `/` | embedded single-page dashboard (no build step, no CDN) |
//!
//! Every connection is `Connection: close` — one request, one response
//! — which keeps the concurrency story exactly as simple as the thread
//! pool. Shutdown is an [`AtomicBool`]: flip it (the CLI wires SIGINT /
//! SIGTERM to it) and the accept loop drains the pool and returns.

mod http;

pub use http::{percent_decode, Request, Response, ThreadPool};

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use asc_core::obs::{diff_registries, diff_to_json, Histogram, Json, Profile, Registry, RunReport};
use asc_obs_store::{
    filter_list, list_to_json, prometheus_text, HeartbeatTail, IndexWatcher, Resolve, RunMeta,
    RunStatus, RunStore, HEARTBEAT_FILE,
};

/// Schema id for the HTTP surface: the route shapes and document
/// contracts documented on this crate. Listed by `mtasc --version`.
pub const HTTP_SCHEMA: &str = "mtasc.http.v1";

/// Bucket edges (milliseconds) for the request-duration histogram.
const DURATION_BUCKETS_MS: [u64; 12] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Listen address, e.g. `127.0.0.1:7878`; port `0` picks an
    /// ephemeral port (read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Registry root; defaults to [`RunStore::default_root`].
    pub runs_dir: Option<PathBuf>,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Poll cadence for SSE heartbeat tailing, milliseconds.
    pub sse_poll_ms: u64,
}

impl Default for ServeOpts {
    fn default() -> ServeOpts {
        ServeOpts { addr: "127.0.0.1:7878".into(), runs_dir: None, workers: 4, sse_poll_ms: 100 }
    }
}

/// Shared per-server state: the registry root, the incremental index
/// reader, self-metrics, and the shutdown flag.
struct Shared {
    root: PathBuf,
    watcher: Mutex<IndexWatcher>,
    sse_poll_ms: u64,
    shutdown: Arc<AtomicBool>,
    metrics: ServerMetrics,
}

/// The server's own observability: request counts by route pattern and
/// status, an in-flight gauge, and a handling-duration histogram — all
/// exposed on `/metrics` next to the registry metrics.
struct ServerMetrics {
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    in_flight: AtomicI64,
    duration_ms: Mutex<Histogram>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            requests: Mutex::new(BTreeMap::new()),
            in_flight: AtomicI64::new(0),
            duration_ms: Mutex::new(Histogram::new(&DURATION_BUCKETS_MS)),
        }
    }

    fn record(&self, route: &'static str, status: u16, elapsed: Duration) {
        if let Ok(mut requests) = self.requests.lock() {
            *requests.entry((route, status)).or_insert(0) += 1;
        }
        if let Ok(mut h) = self.duration_ms.lock() {
            h.record(elapsed.as_millis() as u64);
        }
    }

    /// Prometheus exposition of the self-metrics.
    fn exposition(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP mtasc_http_requests_total HTTP requests served, by route pattern and status.\n",
        );
        out.push_str("# TYPE mtasc_http_requests_total counter\n");
        if let Ok(requests) = self.requests.lock() {
            for (&(route, status), &n) in requests.iter() {
                out.push_str(&format!(
                    "mtasc_http_requests_total{{route=\"{route}\",status=\"{status}\"}} {n}\n"
                ));
            }
        }
        out.push_str("# HELP mtasc_http_in_flight_requests Requests currently being handled.\n");
        out.push_str("# TYPE mtasc_http_in_flight_requests gauge\n");
        out.push_str(&format!(
            "mtasc_http_in_flight_requests {}\n",
            self.in_flight.load(Ordering::SeqCst)
        ));
        out.push_str(
            "# HELP mtasc_http_request_duration_ms Request handling time, milliseconds.\n",
        );
        out.push_str("# TYPE mtasc_http_request_duration_ms histogram\n");
        if let Ok(h) = self.duration_ms.lock() {
            let mut cumulative = 0;
            for (bound, count) in h.buckets() {
                cumulative += count;
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                out.push_str(&format!(
                    "mtasc_http_request_duration_ms_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("mtasc_http_request_duration_ms_sum {}\n", h.sum()));
            out.push_str(&format!("mtasc_http_request_duration_ms_count {}\n", h.count()));
        }
        out
    }
}

/// A bound observability server. [`Server::bind`] claims the socket
/// (so the caller can learn the ephemeral port before serving) and
/// [`Server::run`] blocks in the accept loop until the shutdown flag
/// flips.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    workers: usize,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket and resolve the registry root. Does not
    /// accept connections yet.
    pub fn bind(opts: &ServeOpts) -> io::Result<Server> {
        let root = opts.runs_dir.clone().unwrap_or_else(RunStore::default_root);
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            watcher: Mutex::new(IndexWatcher::new(&root)),
            root,
            sse_poll_ms: opts.sse_poll_ms.max(10),
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: ServerMetrics::new(),
        });
        Ok(Server { listener, local_addr, workers: opts.workers, shared })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry root this server reads.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Flag that stops [`Server::run`]: store `true` (from a signal
    /// handler, another thread, anywhere) and the accept loop exits
    /// after draining in-flight requests.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Serve until the shutdown flag flips. Accepts on a nonblocking
    /// listener so the flag is observed within ~20ms; dropping the
    /// worker pool on the way out joins every in-flight request.
    pub fn run(&self) -> io::Result<()> {
        let pool = ThreadPool::new(self.workers);
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    pool.execute(move || handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(pool); // barrier: joins workers, finishing in-flight requests
        Ok(())
    }
}

/// Install SIGINT/SIGTERM handlers that store `true` into `flag`, so a
/// foreground `mtasc serve` exits cleanly on Ctrl-C or `kill`. Uses raw
/// `signal(2)` through libc's ABI — the handler only touches an atomic,
/// which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_shutdown(flag: Arc<AtomicBool>) {
    use std::sync::OnceLock;
    static SIGNAL_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_signal(_signum: i32) {
        if let Some(flag) = SIGNAL_FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = SIGNAL_FLAG.set(flag);
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op on non-unix targets; `mtasc serve` still stops via the
/// shutdown flag, just not from signals.
#[cfg(not(unix))]
pub fn install_signal_shutdown(_flag: Arc<AtomicBool>) {}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // The listener is nonblocking; make sure the accepted socket isn't.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    shared.metrics.in_flight.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    let (route, status) = serve_one(&mut stream, shared);
    shared.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    if status != 0 {
        shared.metrics.record(route, status, started.elapsed());
    }
}

/// Handle one request on an accepted connection; returns the route
/// pattern and status for the self-metrics (status 0 = nothing served:
/// the client connected and went away).
fn serve_one(stream: &mut TcpStream, shared: &Shared) -> (&'static str, u16) {
    let req = match Request::read(stream) {
        Ok(Some(req)) => req,
        Ok(None) => return ("none", 0),
        Err(e) => {
            let resp = Response::error(400, &e.to_string());
            let _ = resp.write_to(stream);
            return ("none", 400);
        }
    };
    if req.method != "GET" {
        let resp = Response::error(405, "only GET is supported");
        let _ = resp.write_to(stream);
        return ("none", 405);
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (route, result) = match segments.as_slice() {
        [] => ("/", Ok(dashboard())),
        ["healthz"] => ("/healthz", healthz(shared)),
        ["metrics"] => ("/metrics", metrics(shared)),
        ["api", "v1", "runs"] => ("/api/v1/runs", list_runs(shared, &req)),
        ["api", "v1", "runs", id] => ("/api/v1/runs/{id}", show_run(shared, id)),
        ["api", "v1", "runs", id, "report"] => {
            ("/api/v1/runs/{id}/report", run_artifact(shared, id, "report.json"))
        }
        ["api", "v1", "runs", id, "profile"] => {
            ("/api/v1/runs/{id}/profile", run_artifact(shared, id, "profile.json"))
        }
        ["api", "v1", "runs", id, "progress"] => {
            // SSE: streams on the connection itself, bypassing Response.
            let status = stream_progress(stream, shared, id);
            return ("/api/v1/runs/{id}/progress", status);
        }
        ["api", "v1", "runs", a, "diff", b] => {
            ("/api/v1/runs/{a}/diff/{b}", diff_runs(shared, &req, a, b))
        }
        _ => ("none", Err(Response::error(404, &format!("no route for {}", req.path)))),
    };
    let resp = result.unwrap_or_else(|e| e);
    let status = resp.status;
    let _ = resp.write_to(stream);
    (route, status)
}

/// Handlers return `Err(Response)` for error responses so `?` keeps the
/// happy path linear.
type Handled = Result<Response, Response>;

fn dashboard() -> Response {
    Response::ok("text/html; charset=utf-8", include_str!("dashboard.html"))
}

fn healthz(shared: &Shared) -> Handled {
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str(HTTP_SCHEMA)),
        ("status".into(), Json::str("ok")),
        ("runs_root".into(), Json::str(shared.root.display().to_string())),
    ]);
    Ok(Response::json(200, doc.to_compact() + "\n"))
}

/// Snapshot the registry through the incremental index reader.
fn snapshot(shared: &Shared) -> Result<Vec<RunMeta>, Response> {
    let mut watcher =
        shared.watcher.lock().map_err(|_| Response::error(500, "index watcher poisoned"))?;
    let (metas, _skipped) =
        watcher.poll().map_err(|e| Response::error(500, &format!("reading index: {e}")))?;
    Ok(metas.to_vec())
}

fn metrics(shared: &Shared) -> Handled {
    let metas = snapshot(shared)?;
    let mut body = prometheus_text(&metas);
    body.push_str(&shared.metrics.exposition());
    Ok(Response::ok("text/plain; version=0.0.4; charset=utf-8", body))
}

fn list_runs(shared: &Shared, req: &Request) -> Handled {
    let status = match req.query_param("status") {
        None => None,
        Some(label) => Some(
            RunStatus::from_label(label)
                .ok_or_else(|| Response::error(400, &format!("unknown status `{label}`")))?,
        ),
    };
    let limit = parse_query_usize(req, "limit")?;
    let offset = parse_query_usize(req, "offset")?.unwrap_or(0);
    let program = req.query_param("program");
    let metas = snapshot(shared)?;
    let (page, _total) = filter_list(metas, status, program, limit, offset);
    // Byte-for-byte the `mtasc runs list --json` document.
    Ok(Response::json(200, list_to_json(&page).to_pretty() + "\n"))
}

fn parse_query_usize(req: &Request, name: &str) -> Result<Option<usize>, Response> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| {
            Response::error(400, &format!("`{name}` must be an integer, got `{raw}`"))
        }),
    }
}

/// Open the store and resolve a run id prefix to exactly one manifest.
fn resolve(shared: &Shared, query: &str) -> Result<(RunStore, RunMeta), Response> {
    let store = RunStore::open(&shared.root)
        .map_err(|e| Response::error(500, &format!("opening registry: {e}")))?;
    let resolved =
        store.find(query).map_err(|e| Response::error(500, &format!("reading index: {e}")))?;
    match resolved {
        Resolve::One(meta) => Ok((store, *meta)),
        Resolve::Ambiguous(ids) => Err(Response::error(
            409,
            &format!("run id `{query}` is ambiguous; it matches: {}", ids.join(", ")),
        )),
        Resolve::NotFound => Err(Response::error(404, &format!("no run matching `{query}`"))),
    }
}

fn show_run(shared: &Shared, id: &str) -> Handled {
    let (_store, meta) = resolve(shared, id)?;
    Ok(Response::json(200, meta.to_json().to_pretty() + "\n"))
}

fn run_artifact(shared: &Shared, id: &str, name: &str) -> Handled {
    let (store, meta) = resolve(shared, id)?;
    let path = store.run_dir(&meta.id).join(name);
    match std::fs::read(&path) {
        Ok(body) => Ok(Response { status: 200, content_type: "application/json", body }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            Err(Response::error(404, &format!("run {} recorded no {name}", meta.id)))
        }
        Err(e) => Err(Response::error(500, &format!("{}: {e}", path.display()))),
    }
}

/// Load the diffable metrics registry a run recorded: `report.json`
/// first, else `profile.json` (mirrors `mtasc stats diff`'s run-id
/// resolution).
fn load_run_registry(dir: &Path, id: &str) -> Result<(&'static str, Registry), Response> {
    for (name, kind) in [("report.json", "run report"), ("profile.json", "profile")] {
        let path = dir.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(Response::error(500, &format!("{}: {e}", path.display()))),
        };
        let v = Json::parse(&text)
            .map_err(|e| Response::error(500, &format!("{}: {e}", path.display())))?;
        let reg = match kind {
            "run report" => RunReport::from_json(&v).map(|r| r.metrics),
            _ => Profile::from_json(&v).map(|p| p.summary_registry()),
        };
        match reg {
            Some(reg) => return Ok((kind, reg)),
            None => {
                return Err(Response::error(500, &format!("{}: malformed {kind}", path.display())))
            }
        }
    }
    Err(Response::error(404, &format!("run {id} recorded neither report.json nor profile.json")))
}

fn diff_runs(shared: &Shared, req: &Request, a: &str, b: &str) -> Handled {
    let threshold = match req.query_param("fail-on-regress") {
        None => 0.0,
        Some(raw) => raw.parse::<f64>().map_err(|_| {
            Response::error(400, &format!("`fail-on-regress` must be a number, got `{raw}`"))
        })?,
    };
    let (store, meta_a) = resolve(shared, a)?;
    let (_, meta_b) = resolve(shared, b)?;
    let (kind_a, reg_a) = load_run_registry(&store.run_dir(&meta_a.id), &meta_a.id)?;
    let (kind_b, reg_b) = load_run_registry(&store.run_dir(&meta_b.id), &meta_b.id)?;
    if kind_a != kind_b {
        return Err(Response::error(
            409,
            &format!("cannot diff a {kind_a} ({}) against a {kind_b} ({})", meta_a.id, meta_b.id),
        ));
    }
    let entries = diff_registries(&reg_a, &reg_b);
    let mut doc = diff_to_json(kind_a, &entries, threshold);
    if let Json::Obj(pairs) = &mut doc {
        // identify the operands right after the schema field
        pairs.insert(1, ("a".into(), Json::str(&meta_a.id)));
        pairs.insert(2, ("b".into(), Json::str(&meta_b.id)));
    }
    Ok(Response::json(200, doc.to_pretty() + "\n"))
}

/// Stream a run's heartbeats as Server-Sent Events. Finished runs
/// replay their recorded samples and close; live runs keep tailing
/// until the final sample lands, the run's manifest leaves `Running`,
/// or the server shuts down. Returns the status for the self-metrics.
fn stream_progress(stream: &mut TcpStream, shared: &Shared, id: &str) -> u16 {
    let (store, meta) = match resolve(shared, id) {
        Ok(found) => found,
        Err(resp) => {
            let status = resp.status;
            let _ = resp.write_to(stream);
            return status;
        }
    };
    if http::write_stream_head(stream, "text/event-stream").is_err() {
        return 0;
    }
    let dir = store.run_dir(&meta.id);
    let mut tail = HeartbeatTail::new(dir.join(HEARTBEAT_FILE));
    let mut live = meta.status == RunStatus::Running;
    while let Ok(batch) = tail.poll() {
        for sample in &batch.samples {
            let event = format!("event: progress\ndata: {}\n\n", sample.to_json().to_compact());
            if stream.write_all(event.as_bytes()).is_err() {
                return 200; // client went away mid-stream
            }
            if sample.final_sample {
                live = false;
            }
        }
        if stream.flush().is_err() {
            return 200;
        }
        if !live || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Still running: has the manifest moved on without a final
        // sample (e.g. a fault)? One more drain happens next loop turn
        // because `live` only flips after the re-check.
        match current_status(&store, &meta.id) {
            Some(RunStatus::Running) | None => {}
            Some(_) => live = false,
        }
        thread::sleep(Duration::from_millis(shared.sse_poll_ms));
    }
    let end = format!(
        "event: end\ndata: {{\"status\":\"{}\"}}\n\n",
        current_status(&store, &meta.id).unwrap_or(meta.status).label()
    );
    let _ = stream.write_all(end.as_bytes());
    let _ = stream.flush();
    200
}

/// Re-read a run's manifest for its current status (the index line may
/// lag the manifest during a live run).
fn current_status(store: &RunStore, id: &str) -> Option<RunStatus> {
    let path = store.run_dir(id).join(asc_obs_store::META_FILE);
    let text = std::fs::read_to_string(path).ok()?;
    RunMeta::parse(&text).ok().map(|m| m.status)
}
