//! Minimal HTTP/1.1 plumbing on `std::net` — just enough protocol for
//! the observability daemon, with zero dependencies outside `std`.
//!
//! Three pieces:
//!
//! * [`Request`] — a parsed request line plus headers, with the target
//!   split into percent-decoded path segments and query parameters.
//! * [`Response`] — status, content type, and body; always answered
//!   with `Connection: close`, so the connection lifecycle is exactly
//!   one request long and needs no keep-alive bookkeeping.
//! * [`ThreadPool`] — a fixed pool of worker threads fed over an mpsc
//!   channel; dropping the pool closes the channel and joins every
//!   worker, which is what gives `mtasc serve` its graceful shutdown.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Cap on the request head (request line + headers). Anything larger is
/// rejected before buffering it: the daemon only ever serves small GETs.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `HEAD`, ...).
    pub method: String,
    /// Percent-decoded path, always starting with `/`; the query string
    /// is stripped off into [`Request::query`].
    pub path: String,
    /// Query parameters in request order, percent-decoded, `+` read as
    /// space. A bare `?flag` yields `("flag", "")`.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in request order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Read and parse one request head from `stream`. Returns
    /// `Ok(None)` on a clean EOF before any bytes (client connected and
    /// closed), and an error for malformed or oversized heads.
    pub fn read(stream: &TcpStream) -> io::Result<Option<Request>> {
        let mut reader = BufReader::new(stream);
        let request_line = match read_head_line(&mut reader)? {
            Some(line) => line,
            None => return Ok(None),
        };
        let mut parts = request_line.split_whitespace();
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) => (m, t, v),
                _ => return Err(bad_request("malformed request line")),
            };
        if !version.starts_with("HTTP/1.") {
            return Err(bad_request("unsupported HTTP version"));
        }
        let mut headers = Vec::new();
        let mut head_bytes = request_line.len();
        loop {
            let line = match read_head_line(&mut reader)? {
                Some(line) => line,
                None => return Err(bad_request("connection closed mid-headers")),
            };
            if line.is_empty() {
                break;
            }
            head_bytes += line.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Err(bad_request("request head too large"));
            }
            let (name, value) = match line.split_once(':') {
                Some((n, v)) => (n.trim().to_ascii_lowercase(), v.trim().to_string()),
                None => return Err(bad_request("malformed header line")),
            };
            headers.push((name, value));
        }
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let path = percent_decode(raw_path, false);
        let query = raw_query.map(parse_query).unwrap_or_default();
        Ok(Some(Request { method: method.to_string(), path, query, headers }))
    }

    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or bare-LF-) terminated line of the request head,
/// bounded by [`MAX_HEAD_BYTES`]. `Ok(None)` means EOF with no bytes.
fn read_head_line(reader: &mut BufReader<&TcpStream>) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        // Byte-at-a-time through the BufReader: fine at head sizes, and
        // it never reads past the blank line into a (hypothetical) body.
        if reader.read(&mut byte)? == 0 {
            return if buf.is_empty() { Ok(None) } else { Err(bad_request("truncated head")) };
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8(buf)
                .map_err(|_| bad_request("request head is not valid UTF-8"))?;
            return Ok(Some(line));
        }
        buf.push(byte[0]);
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad_request("request head too large"));
        }
    }
}

fn bad_request(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Decode `%XX` escapes; in query strings (`plus_is_space`) `+` decodes
/// to a space too. Invalid escapes pass through literally.
pub fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(name, true), percent_decode(value, true))
        })
        .collect()
}

/// An HTTP response ready to serialize. Every response carries
/// `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response { status: 200, content_type, body: body.into() }
    }

    /// JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// Plain-text error with the given status; the body gets a trailing
    /// newline so `curl` output stays readable.
    pub fn error(status: u16, msg: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// Canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize head and body to `w` (one-shot; connection closes after).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Write just the head of a streaming (SSE) response: no
/// `Content-Length`; the body is produced incrementally and the
/// connection close delimits it.
pub fn write_stream_head(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
    )?;
    w.flush()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool over an mpsc channel. Dropping the pool
/// drops the sender (workers see the channel close and exit) and joins
/// every worker, so in-flight requests finish before shutdown.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size.max(1)` workers.
    pub fn new(size: usize) -> ThreadPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("mtasc-serve-{i}"))
                    .spawn(move || loop {
                        let job = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => return, // a worker panicked holding the lock
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // channel closed: shutdown
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { sender: Some(sender), workers }
    }

    /// Queue a job; returns false if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(sender) => sender.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("/api/v1/runs/01ABC", false), "/api/v1/runs/01ABC");
        assert_eq!(percent_decode("a%2Fb.asc", false), "a/b.asc");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("a+b%20c", true), "a b c");
        assert_eq!(percent_decode("bad%2", false), "bad%2");
        assert_eq!(percent_decode("bad%zz", false), "bad%zz");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("status=ok&limit=5&flag&name=a+b%21");
        assert_eq!(
            q,
            vec![
                ("status".into(), "ok".into()),
                ("limit".into(), "5".into()),
                ("flag".into(), "".into()),
                ("name".into(), "a b!".into()),
            ]
        );
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::ok("text/plain; charset=utf-8", "hi").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn pool_runs_jobs_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers, so all 32 jobs have run
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }
}
