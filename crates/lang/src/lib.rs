#![warn(missing_docs)]

//! # asc-lang — ASCL, a small associative data-parallel language
//!
//! The paper's future work is "implementing software for the architecture
//! in order to better show the performance advantages of multithreading
//! and to explore possible application areas". The historical ASC
//! ecosystem had Potter's ASC language, whose signature construct is the
//! **`where`/`elsewhere`** block: a data-parallel conditional that masks
//! execution to the *responders* of an associative search. ASCL is a
//! compact language in that tradition, compiled to MTASC assembly.
//!
//! ```text
//! par x;                      # a parallel variable (one value per PE)
//! sca limit = 20;             # a scalar variable (control unit)
//! x = index() * 3;            # index() = PE number
//! where (x > limit) {         # associative search -> responder mask
//!     x = x - limit;          # executes only in responders
//! } elsewhere {
//!     x = 0;                  # executes only in non-responders
//! }
//! out(sum(x));                # reduction over the current mask
//! out(count(x == 0));
//! ```
//!
//! ## Language summary
//!
//! * **Declarations** — `par name;` / `sca name;`, optional initializer.
//! * **Types** — scalar int, parallel int, and (implicitly, in
//!   conditions) scalar/parallel flags. Mixing a scalar into a parallel
//!   expression broadcasts it, exactly like the hardware's
//!   scalar-operand instructions.
//! * **Masking** — `where (par-cond) { ... } elsewhere { ... }`,
//!   arbitrarily nested; every parallel assignment and reduction inside
//!   is masked to the enclosing responders.
//! * **Control flow** — `if (sca-cond) {} else {}`, `while (sca-cond) {}`
//!   on the control unit.
//! * **Builtins** — `index()`, `sum(e)`, `max(e)`, `min(e)`, `count(c)`,
//!   `any(c)`, `all(c)`, `first(e)` (value of `e` at the first responder
//!   of the current mask — MRR + RGET), `shift(e, d)` (inter-PE move),
//!   `load(addr)` / `store(addr, val);` (PE local memory, masked),
//!   `band/bor/bxor(a, b)` and `shl/shr(a, k)` (bitwise/shift).
//! * **Output** — `out(sca-expr);` appends to the output block in scalar
//!   memory; the host reads results back with [`OUT_BASE`].
//!
//! ## Entry points
//!
//! [`compile`] produces MTASC assembly text; [`compile_program`] goes all
//! the way to an assembled [`asc_asm::Program`]; [`run`] compiles and
//! executes on a fresh machine, returning the `out(...)` values.

mod ast;
mod codegen;
mod error;
mod parser;
mod token;

pub use error::CompileError;

use asc_core::{Machine, MachineConfig, RunError, Stats};
use asc_isa::Word;

/// Scalar-memory base address of the `out(...)` block.
pub const OUT_BASE: u32 = 512;

/// Compile ASCL source to MTASC assembly text.
pub fn compile(source: &str) -> Result<String, CompileError> {
    let toks = token::lex(source)?;
    let program = parser::parse(&toks)?;
    codegen::generate(&program)
}

/// Compile ASCL source all the way to an assembled program.
pub fn compile_program(source: &str) -> Result<asc_asm::Program, CompileError> {
    let asm = compile(source)?;
    asc_asm::assemble(&asm).map_err(|errs| CompileError {
        line: errs.first().map(|e| e.line).unwrap_or(0),
        message: format!(
            "internal: generated assembly failed to assemble:\n{}\n{asm}",
            asc_asm::render_errors(&errs)
        ),
    })
}

/// Compile and run on `cfg`, returning the `out(...)` values (in order)
/// and the run statistics.
pub fn run(cfg: MachineConfig, source: &str) -> Result<(Vec<Word>, Stats), LangError> {
    let program = compile_program(source)?;
    let mut m = Machine::with_program(cfg, &program).map_err(LangError::Run)?;
    let stats = m.run(100_000_000).map_err(LangError::Run)?;
    // output count is kept at OUT_BASE - 1 by the epilogue
    let count = m.smem().read(OUT_BASE - 1).map_err(|_| LangError::OutputUnreadable)?.to_u32();
    let mut outs = Vec::with_capacity(count as usize);
    for i in 0..count {
        outs.push(m.smem().read(OUT_BASE + i).map_err(|_| LangError::OutputUnreadable)?);
    }
    Ok((outs, stats))
}

/// Errors from [`run`]: compile-time or run-time.
#[derive(Debug)]
pub enum LangError {
    /// The source failed to compile.
    Compile(CompileError),
    /// The compiled program failed at run time.
    Run(RunError),
    /// The output block could not be read back.
    OutputUnreadable,
}

impl From<CompileError> for LangError {
    fn from(e: CompileError) -> Self {
        LangError::Compile(e)
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Compile(e) => write!(f, "compile error: {e}"),
            LangError::Run(e) => write!(f, "runtime error: {e}"),
            LangError::OutputUnreadable => f.write_str("output block unreadable"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests;
