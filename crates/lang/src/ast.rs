//! ASCL abstract syntax.

/// Binary arithmetic/logic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (flags only)
    And,
    /// `||` (flags only)
    Or,
    /// `band(a, b)` — bitwise AND of integers.
    BitAnd,
    /// `bor(a, b)` — bitwise OR of integers.
    BitOr,
    /// `bxor(a, b)` — bitwise XOR of integers.
    BitXor,
    /// `shl(a, k)` — logical shift left.
    Shl,
    /// `shr(a, k)` — logical shift right.
    Shr,
}

impl BinOp {
    /// Is this a comparison (int × int → flag)?
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Is this flag logic (flag × flag → flag)?
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Reduction builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// `sum(e)`
    Sum,
    /// `max(e)`
    Max,
    /// `min(e)`
    Min,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are described in each variant's doc
pub enum Expr {
    /// Integer literal.
    Int { value: i64, line: u32 },
    /// Variable reference.
    Var { name: String, line: u32 },
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr>, line: u32 },
    /// Unary minus.
    Neg { inner: Box<Expr>, line: u32 },
    /// Unary `!` (flags).
    Not { inner: Box<Expr>, line: u32 },
    /// `index()` — the PE number (parallel).
    Index { line: u32 },
    /// `sum/max/min(parallel-expr)` over the current mask.
    Reduce { what: Reduction, arg: Box<Expr>, line: u32 },
    /// `count(parallel-cond)` over the current mask.
    Count { cond: Box<Expr>, line: u32 },
    /// `any(parallel-cond)` / `all(parallel-cond)` — scalar flag.
    AnyAll { all: bool, cond: Box<Expr>, line: u32 },
    /// `first(parallel-expr)` — value at the first responder of the
    /// current mask (0 if no responder).
    First { arg: Box<Expr>, line: u32 },
    /// `shift(parallel-expr, dist)` — inter-PE move by a constant.
    Shift { arg: Box<Expr>, dist: i64, line: u32 },
    /// `load(addr)` — parallel load from PE local memory.
    Load { addr: Box<Expr>, line: u32 },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are described in each variant's doc
pub enum Stmt {
    /// `par name;` / `sca name = expr;`
    Decl { parallel: bool, name: String, init: Option<Expr>, line: u32 },
    /// `name = expr;`
    Assign { name: String, value: Expr, line: u32 },
    /// `where (cond) { then } elsewhere { other }`
    Where { cond: Expr, then: Vec<Stmt>, other: Vec<Stmt>, line: u32 },
    /// `if (cond) { then } else { other }` — scalar condition.
    If { cond: Expr, then: Vec<Stmt>, other: Vec<Stmt>, line: u32 },
    /// `while (cond) { body }` — scalar condition.
    While { cond: Expr, body: Vec<Stmt>, line: u32 },
    /// `out(expr);` — append a scalar value to the output block.
    Out { value: Expr, line: u32 },
    /// `store(addr, value);` — parallel store to PE local memory.
    Store { addr: Expr, value: Expr, line: u32 },
}

/// A parsed program: a statement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAst {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}
