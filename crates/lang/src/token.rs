//! ASCL lexer.

use crate::error::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword or identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

/// Token plus 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// Tokenize ASCL source. `#` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno as u32 + 1;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            let push = |out: &mut Vec<Spanned>, tok: Tok| out.push(Spanned { tok, line: line_no });
            match c {
                ' ' | '\t' | '\r' => i += 1,
                '#' => break,
                '(' => {
                    push(&mut out, Tok::LParen);
                    i += 1;
                }
                ')' => {
                    push(&mut out, Tok::RParen);
                    i += 1;
                }
                '{' => {
                    push(&mut out, Tok::LBrace);
                    i += 1;
                }
                '}' => {
                    push(&mut out, Tok::RBrace);
                    i += 1;
                }
                ';' => {
                    push(&mut out, Tok::Semi);
                    i += 1;
                }
                ',' => {
                    push(&mut out, Tok::Comma);
                    i += 1;
                }
                '+' => {
                    push(&mut out, Tok::Plus);
                    i += 1;
                }
                '-' => {
                    push(&mut out, Tok::Minus);
                    i += 1;
                }
                '*' => {
                    push(&mut out, Tok::Star);
                    i += 1;
                }
                '/' => {
                    push(&mut out, Tok::Slash);
                    i += 1;
                }
                '%' => {
                    push(&mut out, Tok::Percent);
                    i += 1;
                }
                '=' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        push(&mut out, Tok::Eq);
                        i += 2;
                    } else {
                        push(&mut out, Tok::Assign);
                        i += 1;
                    }
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        push(&mut out, Tok::Ne);
                        i += 2;
                    } else {
                        push(&mut out, Tok::Not);
                        i += 1;
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        push(&mut out, Tok::Le);
                        i += 2;
                    } else {
                        push(&mut out, Tok::Lt);
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        push(&mut out, Tok::Ge);
                        i += 2;
                    } else {
                        push(&mut out, Tok::Gt);
                        i += 1;
                    }
                }
                '&' => {
                    if bytes.get(i + 1) == Some(&b'&') {
                        push(&mut out, Tok::AndAnd);
                        i += 2;
                    } else {
                        return Err(CompileError::new(line_no, "single `&` (use `&&`)"));
                    }
                }
                '|' => {
                    if bytes.get(i + 1) == Some(&b'|') {
                        push(&mut out, Tok::OrOr);
                        i += 2;
                    } else {
                        return Err(CompileError::new(line_no, "single `|` (use `||`)"));
                    }
                }
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &line[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| CompileError::new(line_no, format!("bad integer `{text}`")))?;
                    push(&mut out, Tok::Int(v));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    push(&mut out, Tok::Ident(line[start..i].to_string()));
                }
                other => {
                    return Err(CompileError::new(
                        line_no,
                        format!("unexpected character {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn operators_and_idents() {
        assert_eq!(
            toks("x = a <= 3 && !b;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Int(3),
                Tok::AndAnd,
                Tok::Not,
                Tok::Ident("b".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("x # everything here ignored\n;"), vec![Tok::Ident("x".into()), Tok::Semi]);
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("ok;\n x = $;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("a & b").is_err());
    }
}
