//! ASCL recursive-descent parser.

use crate::ast::{BinOp, Expr, ProgramAst, Reduction, Stmt};
use crate::error::CompileError;
use crate::token::{Spanned, Tok};

/// Parse a token stream into a program.
pub fn parse(toks: &[Spanned]) -> Result<ProgramAst, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let stmts = p.stmt_list(false)?;
    if p.pos < toks.len() {
        return Err(p.err("unexpected token after program end"));
    }
    Ok(ProgramAst { stmts })
}

struct Parser<'a> {
    toks: &'a [Spanned],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(1)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|s| &s.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), CompileError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// `inside_block`: stop at `}` instead of end of input.
    fn stmt_list(&mut self, inside_block: bool) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => {
                    if inside_block {
                        return Err(self.err("unterminated block (missing `}`)"));
                    }
                    return Ok(stmts);
                }
                Some(Tok::RBrace) if inside_block => return Ok(stmts),
                Some(Tok::RBrace) => return Err(self.err("unmatched `}`")),
                _ => stmts.push(self.stmt()?),
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let stmts = self.stmt_list(true)?;
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        // declarations
        for (kw, parallel) in [("par", true), ("sca", false)] {
            if self.eat_ident(kw) {
                let name = self.ident("variable name")?;
                let init = if self.peek() == Some(&Tok::Assign) {
                    self.pos += 1;
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "`;`")?;
                return Ok(Stmt::Decl { parallel, name, init, line });
            }
        }
        if self.eat_ident("where") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let then = self.block()?;
            let other = if self.eat_ident("elsewhere") { self.block()? } else { Vec::new() };
            return Ok(Stmt::Where { cond, then, other, line });
        }
        if self.eat_ident("if") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let then = self.block()?;
            let other = if self.eat_ident("else") { self.block()? } else { Vec::new() };
            return Ok(Stmt::If { cond, then, other, line });
        }
        if self.eat_ident("while") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_ident("store") {
            self.expect(&Tok::LParen, "`(`")?;
            let addr = self.expr()?;
            self.expect(&Tok::Comma, "`,`")?;
            let value = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Store { addr, value, line });
        }
        if self.eat_ident("out") {
            self.expect(&Tok::LParen, "`(`")?;
            let value = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Out { value, line });
        }
        // assignment
        let name = self.ident("statement")?;
        self.expect(&Tok::Assign, "`=`")?;
        let value = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::Assign { name, value, line })
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    // ----- expressions, precedence climbing -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::OrOr) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Bin { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Tok::AndAnd) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line })
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg { inner: Box::new(self.unary_expr()?), line })
            }
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(Expr::Not { inner: Box::new(self.unary_expr()?), line })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int { value: *v, line }),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    return self.builtin(&name, line);
                }
                Ok(Expr::Var { name, line })
            }
            Some(t) => Err(self.err(format!("expected expression, found {t:?}"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    /// Parse a builtin call; `(` already consumed.
    fn builtin(&mut self, name: &str, line: u32) -> Result<Expr, CompileError> {
        let e = match name {
            "index" => {
                self.expect(&Tok::RParen, "`)`")?;
                return Ok(Expr::Index { line });
            }
            "sum" => Expr::Reduce { what: Reduction::Sum, arg: Box::new(self.expr()?), line },
            "max" => Expr::Reduce { what: Reduction::Max, arg: Box::new(self.expr()?), line },
            "min" => Expr::Reduce { what: Reduction::Min, arg: Box::new(self.expr()?), line },
            "count" => Expr::Count { cond: Box::new(self.expr()?), line },
            "any" => Expr::AnyAll { all: false, cond: Box::new(self.expr()?), line },
            "all" => Expr::AnyAll { all: true, cond: Box::new(self.expr()?), line },
            "first" => Expr::First { arg: Box::new(self.expr()?), line },
            "load" => Expr::Load { addr: Box::new(self.expr()?), line },
            "band" | "bor" | "bxor" | "shl" | "shr" => {
                let op = match name {
                    "band" => BinOp::BitAnd,
                    "bor" => BinOp::BitOr,
                    "bxor" => BinOp::BitXor,
                    "shl" => BinOp::Shl,
                    _ => BinOp::Shr,
                };
                let lhs = self.expr()?;
                self.expect(&Tok::Comma, "`,`")?;
                let rhs = self.expr()?;
                Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line }
            }
            "shift" => {
                let arg = self.expr()?;
                self.expect(&Tok::Comma, "`,`")?;
                let (dist, neg) = match self.next() {
                    Some(Tok::Minus) => match self.next() {
                        Some(Tok::Int(v)) => (*v, true),
                        _ => return Err(self.err("shift distance must be a constant")),
                    },
                    Some(Tok::Int(v)) => (*v, false),
                    _ => return Err(self.err("shift distance must be a constant")),
                };
                let dist = if neg { -dist } else { dist };
                if !(-127..=127).contains(&dist) {
                    return Err(self.err("shift distance must be in -127..=127"));
                }
                Expr::Shift { arg: Box::new(arg), dist, line }
            }
            other => return Err(self.err(format!("unknown builtin `{other}`"))),
        };
        self.expect(&Tok::RParen, "`)`")?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::lex;

    fn parse_src(src: &str) -> Result<ProgramAst, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn declarations_and_assignment() {
        let p = parse_src("par x; sca n = 3; x = index() + n;").unwrap();
        assert_eq!(p.stmts.len(), 3);
        assert!(matches!(p.stmts[0], Stmt::Decl { parallel: true, .. }));
        assert!(matches!(p.stmts[1], Stmt::Decl { parallel: false, init: Some(_), .. }));
    }

    #[test]
    fn where_elsewhere_nesting() {
        let p = parse_src(
            "par x;
             where (x > 3) {
                 where (x < 10) { x = 0; }
             } elsewhere {
                 x = 1;
             }",
        )
        .unwrap();
        match &p.stmts[1] {
            Stmt::Where { then, other, .. } => {
                assert_eq!(then.len(), 1);
                assert!(matches!(then[0], Stmt::Where { .. }));
                assert_eq!(other.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_src("sca x = 1 + 2 * 3 == 7 && 1 < 2;").unwrap();
        // ((1 + (2*3)) == 7) && (1 < 2)
        match &p.stmts[0] {
            Stmt::Decl { init: Some(Expr::Bin { op: BinOp::And, lhs, .. }), .. } => {
                assert!(matches!(**lhs, Expr::Bin { op: BinOp::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn builtin_calls() {
        let p = parse_src("out(sum(index())); out(count(index() > 2)); sca s = first(index());")
            .unwrap();
        assert_eq!(p.stmts.len(), 3);
        let p = parse_src("par y; y = shift(y, -2);").unwrap();
        match &p.stmts[1] {
            Stmt::Assign { value: Expr::Shift { dist, .. }, .. } => assert_eq!(*dist, -2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_src("par ;").is_err());
        assert!(parse_src("x = ;").is_err());
        assert!(parse_src("where (x) { ").is_err());
        assert!(parse_src("}").is_err());
        assert!(parse_src("out(frob(1));").is_err());
        assert!(parse_src("par y; y = shift(y, 500);").is_err());
    }
}
