//! End-to-end ASCL tests: compile → assemble → simulate → check outputs,
//! plus error diagnostics and a differential property test against a host
//! interpreter.

use asc_core::MachineConfig;

use crate::{compile, run, CompileError, LangError};

fn cfg() -> MachineConfig {
    MachineConfig::new(16)
}

fn outs(src: &str) -> Vec<i64> {
    let (words, _) = run(cfg(), src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"));
    words.iter().map(|w| w.to_i64(asc_isa::Width::W16)).collect()
}

fn compile_err(src: &str) -> CompileError {
    match compile(src) {
        Err(e) => e,
        Ok(asm) => panic!("expected error, compiled to:\n{asm}"),
    }
}

// ------------------------------------------------------------ basics

#[test]
fn scalar_arithmetic_and_output() {
    assert_eq!(outs("out(1 + 2 * 3);"), vec![7]);
    assert_eq!(outs("sca x = 10; sca y = x - 3; out(y * y);"), vec![49]);
    assert_eq!(outs("out(-5); out(7 % 3); out(14 / 4);"), vec![-5, 1, 3]);
}

#[test]
fn parallel_reduction_pipeline() {
    // sum of PE indices on 16 PEs = 120; max = 15
    assert_eq!(
        outs("par x; x = index(); out(sum(x)); out(max(x)); out(min(x));"),
        vec![120, 15, 0]
    );
}

#[test]
fn broadcast_mixing() {
    // scalar into parallel arithmetic broadcasts
    assert_eq!(outs("sca n = 10; par x; x = index() + n; out(min(x)); out(max(x));"), vec![10, 25]);
    // scalar on the left of a non-commutative op
    assert_eq!(outs("par x; x = 20 - index(); out(min(x));"), vec![5]);
}

#[test]
fn where_masks_assignments_and_reductions() {
    let src = "
        par x;
        x = index();
        where (x >= 8) {
            x = x - 8;
            out(count(x == x)); # responders: 8
            out(max(x));        # masked reduction: 7
        }
        out(sum(x));            # 0..7 twice = 56
    ";
    assert_eq!(outs(src), vec![8, 7, 56]);
}

#[test]
fn elsewhere_gets_the_complement() {
    let src = "
        par x;
        x = index();
        where (x < 4) {
            x = 100;
        } elsewhere {
            x = 200;
        }
        out(count(x == 100));
        out(count(x == 200));
    ";
    assert_eq!(outs(src), vec![4, 12]);
}

#[test]
fn nested_where_intersects_masks() {
    let src = "
        par x;
        x = index();
        where (x >= 4) {
            where (x < 12) {
                x = 0;          # only 4..11 zeroed
            }
        }
        out(count(x == 0));      # PE 0 holds 0 too
    ";
    assert_eq!(outs(src), vec![9]);
}

#[test]
fn scalar_control_flow() {
    let src = "
        sca n = 0;
        sca i = 0;
        while (i < 10) {
            n = n + i;
            i = i + 1;
        }
        out(n);
        if (n == 45) { out(1); } else { out(2); }
        if (n != 45) { out(3); } else { out(4); }
    ";
    assert_eq!(outs(src), vec![45, 1, 4]);
}

#[test]
fn any_all_first() {
    let src = "
        par x;
        x = index();
        if (any(x == 7)) { out(1); }
        if (all(x < 100)) { out(2); }
        if (all(x < 10)) { out(3); } else { out(4); }
        where (x > 5) {
            out(first(x));       # first responder is PE 6
        }
    ";
    assert_eq!(outs(src), vec![1, 2, 4, 6]);
}

#[test]
fn shift_moves_data() {
    let src = "
        par x;
        par y;
        x = index();
        y = shift(x, 1) + x + shift(x, -1);   # 3-point stencil
        out(sum(y));
    ";
    // host: sum over i of (x[i-1] + x[i] + x[i+1]) with zero edges
    let expect: i64 = (0..16)
        .map(|i: i64| (if i > 0 { i - 1 } else { 0 }) + i + (if i < 15 { i + 1 } else { 0 }))
        .sum();
    assert_eq!(outs(src), vec![expect]);
}

#[test]
fn shift_inside_where_reads_all_lanes() {
    // the shift argument is evaluated unmasked, so neighbours outside the
    // responder set slide in with their true values
    let src = "
        par x;
        x = index();
        where (index() >= 8) {
            x = shift(index(), 1);    # x[i] = i-1, for i >= 8
        }
        out(sum(x));
    ";
    // PEs 0..7 keep index; PEs 8..15 get 7..14
    let expect: i64 = (0..8).sum::<i64>() + (7..15).sum::<i64>();
    assert_eq!(outs(src), vec![expect]);
}

#[test]
fn logical_operators() {
    let src = "
        par x;
        x = index();
        out(count(x > 3 && x < 8));
        out(count(x < 2 || x > 13));
        where (!(x < 8)) { out(count(x == x)); }
    ";
    assert_eq!(outs(src), vec![4, 4, 8]);
}

#[test]
fn block_scoping_frees_registers() {
    // 12 sequential blocks each declaring locals — would exhaust the
    // register pools if scoping leaked
    let mut src = String::new();
    src.push_str("sca acc = 0;\n");
    for i in 0..12 {
        src.push_str(&format!(
            "if (acc >= 0) {{ sca t = {i}; par q; q = index() + t; acc = acc + max(q); }}\n"
        ));
    }
    src.push_str("out(acc);");
    let expect: i64 = (0..12).map(|i| 15 + i).sum();
    assert_eq!(outs(&src), vec![expect]);
}

#[test]
fn associative_max_and_holder() {
    // the canonical ASC idiom written in ASCL
    let src = "
        par v;
        v = index() * 3 % 7;     # some data
        sca m = max(v);
        out(m);
        where (v == m) {
            out(first(index()));  # who holds it
            out(count(v == m));   # how many
        }
    ";
    let data: Vec<i64> = (0..16).map(|i| i * 3 % 7).collect();
    let m = *data.iter().max().unwrap();
    let first = data.iter().position(|&v| v == m).unwrap() as i64;
    let count = data.iter().filter(|&&v| v == m).count() as i64;
    assert_eq!(outs(src), vec![m, first, count]);
}

#[test]
fn load_store_local_memory() {
    use asc_core::Machine;
    use asc_isa::{Width, Word};
    // program reads a data column, doubles it where > 4, stores back
    let src = "
        par a;
        a = load(index() * 0);      # lmem[0]
        where (a > 4) {
            a = a * 2;
        }
        store(index() * 0 + 1, a);   # lmem[1]
        out(sum(a));
    ";
    let program = crate::compile_program(src).unwrap();
    let mut m = Machine::with_program(cfg(), &program).unwrap();
    let data: Vec<Word> = (0..16).map(|i| Word::new(i, Width::W16)).collect();
    m.array_mut().scatter_column(0, &data).unwrap();
    m.run(1_000_000).unwrap();
    let expect: i64 = (0..16).map(|i: i64| if i > 4 { i * 2 } else { i }).sum();
    assert_eq!(m.smem().read(crate::OUT_BASE).unwrap().to_i64(Width::W16), expect);
    // and the stored column
    let col = m.array().gather_column(1).unwrap();
    for (i, w) in col.iter().enumerate() {
        let i = i as i64;
        let e = if i > 4 { i * 2 } else { i };
        assert_eq!(w.to_i64(Width::W16), e, "PE {i}");
    }
}

#[test]
fn mst_written_in_ascl_matches_kernel_reference() {
    use asc_core::Machine;
    use asc_isa::{Width, Word};
    // Prim's MST in ASCL: vertex j's adjacency row in lmem[0..n] of PE j.
    // The same layout and tie-breaking as asc-kernels' hand-written MST.
    let n = 12usize;
    let src = format!(
        "
        sca n = {n};
        par vid;
        vid = index();
        par valid;
        valid = 0;
        where (vid < n) {{ valid = 1; }}

        par dist;
        par cand;
        cand = 0;
        where (valid == 1) {{
            dist = load(vid * 0);     # w(j, 0): root = 0
            cand = 1;
        }}
        where (vid == 0) {{ cand = 0; }}   # root not a candidate

        sca total = 0;
        sca step = 0;
        while (step < n - 1) {{
            sca best = 0;
            sca v = 0;
            where (cand == 1) {{
                best = min(dist);
                where (dist == best) {{
                    v = first(vid);       # argmin, first index
                }}
            }}
            total = total + best;
            where (vid == v) {{ cand = 0; }}
            par wv;
            wv = load(vid * 0 + v);       # w(u, v) for every u
            where (cand == 1) {{
                where (wv < dist) {{ dist = wv; }}
            }}
            step = step + 1;
        }}
        out(total);
        "
    );
    let program = crate::compile_program(&src).unwrap_or_else(|e| panic!("{e}"));
    let graph = asc_kernels::mst::random_graph(n, 50, 42);
    let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
    for (j, row) in graph.iter().enumerate() {
        let words: Vec<Word> = row.iter().map(|&v| Word::from_i64(v, Width::W16)).collect();
        m.array_mut().lmem_load_slice(j, 0, &words).unwrap();
    }
    m.run(10_000_000).unwrap();
    let total = m.smem().read(crate::OUT_BASE).unwrap().to_u32() as u64;
    assert_eq!(total, asc_kernels::mst::reference(&graph), "ASCL MST == host Prim");
}

#[test]
fn bitwise_builtins() {
    assert_eq!(outs("out(band(12, 10)); out(bor(12, 10)); out(bxor(12, 10));"), vec![8, 14, 6]);
    assert_eq!(outs("out(shl(3, 4)); out(shr(32, 3));"), vec![48, 4]);
    // parallel forms, masked
    let src = "
        par x;
        x = index();
        where (x >= 4) {
            x = band(x, 3);      # low two bits only
        }
        out(sum(x));
    ";
    let expect: i64 = (0..16).map(|i: i64| if i >= 4 { i & 3 } else { i }).sum();
    assert_eq!(outs(src), vec![expect]);
    // variable shift amounts
    assert_eq!(outs("sca k = 2; par x; x = shl(index(), k); out(max(x));"), vec![60]);
}

// ------------------------------------------------------------ diagnostics

#[test]
fn undeclared_variable() {
    let e = compile_err("x = 1;");
    assert!(e.message.contains("not declared"));
    assert_eq!(e.line, 1);
}

#[test]
fn double_declaration() {
    assert!(compile_err("par x; par x;").message.contains("already declared"));
}

#[test]
fn type_errors() {
    assert!(compile_err("par x; out(x);").message.contains("scalar"));
    assert!(compile_err("sca x; where (x == 1) {}").message.contains("parallel condition"));
    assert!(compile_err("par x; if (x == 1) {}").message.contains("scalar condition"));
    assert!(compile_err("par x; x = (x == 1) + 2;").message.contains("conditions"));
    assert!(compile_err("par x; x = 1 && 2;").message.contains("conditions"));
    assert!(compile_err("sca x = count(1 == 1);").message.contains("parallel condition"));
}

#[test]
fn constant_range_and_division() {
    assert!(compile_err("out(70000);").message.contains("16-bit"));
    assert!(compile_err("out(1 / 0);").message.contains("division by zero"));
}

#[test]
fn register_exhaustion_is_reported() {
    // 20 live scalar variables exceed the pool
    let mut src = String::new();
    for i in 0..20 {
        src.push_str(&format!("sca v{i} = {i};\n"));
    }
    assert!(compile_err(&src).message.contains("out of scalar int registers"));
}

#[test]
fn runtime_errors_surface() {
    // division by a zero-valued variable is a machine-level behaviour
    // (defined result), but a missing divider would error; here check the
    // compile-run plumbing reports run errors: exceed cycle budget is hard
    // to trigger cheaply, so check the compile error path through run()
    let e = run(cfg(), "x = 1;").unwrap_err();
    assert!(matches!(e, LangError::Compile(_)));
}

// ------------------------------------------------------------ differential

/// Host interpreter for the random-program generator below.
mod interp {
    /// Evaluate `((a op1 b) op2 c) ...` with wrapping 16-bit semantics,
    /// mirroring the machine.
    pub fn wrap16(v: i64) -> i64 {
        let m = (v as u32 & 0xffff) as i64;
        if m >= 0x8000 {
            m - 0x10000
        } else {
            m
        }
    }
}

proptest::proptest! {
    /// Random scalar expression chains computed by the compiled program
    /// equal the host's wrapping arithmetic.
    #[test]
    fn compiled_scalar_chains_match_host(ops in proptest::collection::vec((0u8..5, -40i64..40), 1..12)) {
        let mut src = String::from("sca x = 1;\n");
        let mut host: i64 = 1;
        for (op, k) in &ops {
            let k = *k;
            match op {
                0 => {
                    src.push_str(&format!("x = x + {k};\n"));
                    host = interp::wrap16(host + k);
                }
                1 => {
                    src.push_str(&format!("x = x - {k};\n"));
                    host = interp::wrap16(host - k);
                }
                2 => {
                    src.push_str(&format!("x = x * {k};\n"));
                    host = interp::wrap16(host.wrapping_mul(k));
                }
                3 => {
                    let d = if k == 0 { 7 } else { k };
                    src.push_str(&format!("x = x / {d};\n"));
                    host = interp::wrap16(host.wrapping_div(d));
                }
                _ => {
                    let d = if k == 0 { 7 } else { k };
                    src.push_str(&format!("x = x % {d};\n"));
                    host = interp::wrap16(host.wrapping_rem(d));
                }
            }
        }
        src.push_str("out(x);");
        proptest::prop_assert_eq!(outs(&src), vec![host]);
    }

    /// Random threshold partitions: `where`/`elsewhere` counts always sum
    /// to the array size, and match the host.
    #[test]
    fn where_partition_matches_host(t in -5i64..25) {
        let src = format!(
            "par x; x = index();
             where (x < {t}) {{ x = 1; }} elsewhere {{ x = 2; }}
             out(count(x == 1)); out(count(x == 2));"
        );
        let ones = (0..16).filter(|&i| i < t).count() as i64;
        proptest::prop_assert_eq!(outs(&src), vec![ones, 16 - ones]);
    }
}
