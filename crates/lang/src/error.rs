//! Compiler diagnostics.

use std::fmt;

/// A compile-time error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Construct.
    pub fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}
