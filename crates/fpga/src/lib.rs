#![warn(missing_docs)]

//! # asc-fpga — FPGA resource and clock model
//!
//! The paper's quantitative evaluation (Section 7, Table 1) is a synthesis
//! report: logic elements (LEs) and M4K RAM blocks per subsystem on an
//! Altera Cyclone II EP2C35, plus a ~75 MHz clock estimate. We cannot run
//! Quartus II on 2005-era silicon, so this crate substitutes an
//! **analytical component model**: parametric LE/RAM formulas whose
//! constants are *calibrated* so the prototype configuration (16 PEs, 16
//! threads, 16-bit datapath, 1 KB local memory, 512-instruction program
//! store) reproduces Table 1 row-for-row. The model then *extrapolates* to
//! other configurations — answering the paper's Section 9 question of how
//! many PEs fit a device, and why RAM blocks (not LEs) are the limit.
//!
//! The clock model covers the paper's architectural argument: a pipelined
//! broadcast/reduction network keeps the cycle time roughly flat as the PE
//! count grows, while a non-pipelined (combinational) network's cycle time
//! grows with tree depth and wire length — the broadcast/reduction
//! bottleneck of the introduction.

pub mod clock;
pub mod device;
pub mod offchip;
pub mod resources;

pub use clock::ClockModel;
pub use device::{Device, CYCLONE_II};
pub use offchip::{sweep as offchip_sweep, TilingCost, Workload};
pub use resources::{max_pes_on, FpgaConfig, ResourceReport, Usage};
