//! The off-chip memory traffic model behind §6.2's configuration
//! tradeoff: "a larger memory will reduce off-chip memory traffic, but
//! reduce the number of PEs that can fit on a single FPGA."
//!
//! The local memory is a software-managed cache. For an iterative
//! workload (`data_words` total, `passes` sweeps over it), a PE whose
//! slice fits its local memory loads it **once**; otherwise every pass
//! must re-stream the slice from off-chip memory. Off-chip bandwidth is
//! shared by the whole array, so total time is
//!
//! ```text
//! compute  = passes * data / p                 (1 word/PE/cycle)
//! transfer = data * (1 or passes) / bus_words  (shared bus)
//! total    = compute + transfer                (no overlap, worst case)
//! ```
//!
//! Combined with the resource model's `max_pes(lmem)`, this exposes the
//! interior optimum the paper gestures at: shrinking local memory buys
//! PEs (less compute time) until the working set spills and traffic
//! multiplies by the pass count.

use crate::device::Device;
use crate::resources::{max_pes_on, FpgaConfig};

/// An iterative workload description.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Total data words.
    pub data_words: u64,
    /// Sweeps over the data.
    pub passes: u64,
    /// Off-chip bus width in words per cycle.
    pub bus_words_per_cycle: u64,
}

/// One configuration's predicted cost.
#[derive(Debug, Clone, Copy)]
pub struct TilingCost {
    /// Local memory words per PE.
    pub lmem_words: u64,
    /// PEs that fit the device at this local-memory size.
    pub pes: u64,
    /// Does each PE's slice fit its local memory?
    pub resident: bool,
    /// Compute cycles.
    pub compute_cycles: u64,
    /// Words transferred off-chip.
    pub transfer_words: u64,
    /// Total cycles (compute + transfer on the shared bus).
    pub total_cycles: u64,
}

/// Evaluate the workload at one local-memory size on `device`.
pub fn tiling_cost(base: &FpgaConfig, device: &Device, lmem: u64, w: &Workload) -> TilingCost {
    let cfg = FpgaConfig { lmem_words: lmem, ..*base };
    let pes = max_pes_on(&cfg, device).max(1);
    let slice = w.data_words.div_ceil(pes);
    let resident = slice <= lmem;
    let compute_cycles = w.passes * slice;
    let transfer_words = if resident { w.data_words } else { w.data_words * w.passes };
    let total_cycles = compute_cycles + transfer_words / w.bus_words_per_cycle.max(1);
    TilingCost { lmem_words: lmem, pes, resident, compute_cycles, transfer_words, total_cycles }
}

/// Sweep local-memory sizes and report each configuration.
pub fn sweep(base: &FpgaConfig, device: &Device, w: &Workload, sizes: &[u64]) -> Vec<TilingCost> {
    sizes.iter().map(|&l| tiling_cost(base, device, l, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::FpgaConfig;

    fn workload() -> Workload {
        Workload { data_words: 16_384, passes: 8, bus_words_per_cycle: 1 }
    }

    #[test]
    fn spilling_multiplies_traffic() {
        let base = FpgaConfig::prototype();
        let dev = Device::ep2c35();
        let big = tiling_cost(&base, &dev, 4096, &workload());
        let tiny = tiling_cost(&base, &dev, 64, &workload());
        assert!(big.resident);
        assert!(!tiny.resident);
        assert_eq!(tiny.transfer_words, big.transfer_words * workload().passes);
    }

    #[test]
    fn more_pes_cut_compute() {
        let base = FpgaConfig::prototype();
        let dev = Device::ep2c35();
        let small_mem = tiling_cost(&base, &dev, 128, &workload());
        let large_mem = tiling_cost(&base, &dev, 1024, &workload());
        assert!(small_mem.pes >= large_mem.pes);
        assert!(small_mem.compute_cycles <= large_mem.compute_cycles);
    }

    #[test]
    fn interior_optimum_exists_on_a_big_device() {
        // on the EP2C70 the sweep transitions from spilled to resident and
        // the best point beats both extremes
        let base = FpgaConfig::prototype();
        let dev = Device::by_name("EP2C70").unwrap();
        let sizes = [64u64, 128, 256, 512, 1024, 2048, 4096];
        let costs = sweep(&base, &dev, &workload(), &sizes);
        assert!(costs.iter().any(|c| c.resident) && costs.iter().any(|c| !c.resident));
        let best = costs.iter().map(|c| c.total_cycles).min().unwrap();
        assert!(best < costs[0].total_cycles, "beats tiny memory: {costs:?}");
        assert!(best < costs.last().unwrap().total_cycles, "beats huge memory: {costs:?}");
    }
}
