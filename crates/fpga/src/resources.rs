//! The LE/RAM resource model.
//!
//! ## Model structure (constants calibrated to Table 1)
//!
//! **RAM blocks** (M4K = 4096 data bits) are allocated, per Section 6.2:
//!
//! * each PE: its local memory (`⌈L·W/4096⌉`), **three** block-RAM copies
//!   of the general-purpose register file (two ALU read ports plus the
//!   store-data/forwarding port — the standard replicate-for-ports idiom
//!   the paper alludes to with "block RAMs are the best way to implement
//!   the register files"), and one block for the flag register file. The
//!   paper notes flag files *could* share a block between PEs; Table 1's
//!   counts (96 blocks = 6/PE) indicate the initial prototype did not, so
//!   sharing is a model parameter (`pes_per_flag_block`, default 1) — and
//!   raising it is exactly the Section 9 "alternative PE organizations"
//!   experiment.
//! * control unit: the instruction store (512 × 32-bit words = 4 blocks in
//!   the prototype), three copies of the scalar register file, and one
//!   scalar flag block.
//! * the network uses no RAM at all (Table 1: 0) — it is registers and
//!   LUTs only.
//!
//! **LEs** are linear in datapath width per component; coefficients were
//! fit to Table 1's three rows and are documented inline.

use asc_core::MachineConfig;
use asc_isa::Width;

use crate::device::Device;

/// Configuration the resource model evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaConfig {
    /// Datapath width.
    pub width: Width,
    /// Hardware thread contexts.
    pub threads: u64,
    /// Number of PEs.
    pub num_pes: u64,
    /// General-purpose registers per thread.
    pub gprs: u64,
    /// Flag registers per thread.
    pub flags: u64,
    /// PE local memory in words.
    pub lmem_words: u64,
    /// Instruction store in 32-bit words.
    pub imem_words: u64,
    /// Broadcast tree arity.
    pub broadcast_arity: u64,
    /// PEs sharing one flag-file RAM block (1 = no sharing, as synthesized;
    /// >1 models the paper's proposed optimization).
    pub pes_per_flag_block: u64,
}

impl FpgaConfig {
    /// The synthesized prototype of Section 7: 16 16-bit PEs, 16 threads,
    /// 1 KB local memory per PE, 512-instruction store, no flag sharing.
    pub fn prototype() -> FpgaConfig {
        FpgaConfig {
            width: Width::W16,
            threads: 16,
            num_pes: 16,
            gprs: 16,
            flags: 8,
            lmem_words: 512,
            imem_words: 512,
            broadcast_arity: 4,
            pes_per_flag_block: 1,
        }
    }

    /// Derive from a simulator configuration (the simulator's larger
    /// default instruction memory is kept; pass `prototype()` to match
    /// Table 1 exactly).
    pub fn from_machine(cfg: &MachineConfig) -> FpgaConfig {
        FpgaConfig {
            width: cfg.width,
            threads: cfg.threads as u64,
            num_pes: cfg.num_pes as u64,
            gprs: asc_isa::NUM_GPRS as u64,
            flags: asc_isa::NUM_FLAGS as u64,
            lmem_words: cfg.lmem_words as u64,
            imem_words: cfg.imem_words as u64,
            broadcast_arity: cfg.broadcast_arity as u64,
            pes_per_flag_block: 1,
        }
    }

    fn w(&self) -> u64 {
        self.width.bits() as u64
    }
}

/// LEs and RAM blocks of one subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Usage {
    /// Logic elements.
    pub les: u64,
    /// M4K RAM blocks.
    pub rams: u64,
}

impl Usage {
    fn plus(self, o: Usage) -> Usage {
        Usage { les: self.les + o.les, rams: self.rams + o.rams }
    }
}

/// Table 1: per-subsystem resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceReport {
    /// Control unit row.
    pub control_unit: Usage,
    /// PE array row (all PEs together).
    pub pe_array: Usage,
    /// Broadcast/reduction network row.
    pub network: Usage,
}

impl ResourceReport {
    /// Compute the model for a configuration.
    pub fn model(cfg: &FpgaConfig) -> ResourceReport {
        ResourceReport {
            control_unit: control_unit(cfg),
            pe_array: pe_array(cfg),
            network: network(cfg),
        }
    }

    /// Total row.
    pub fn total(&self) -> Usage {
        self.control_unit.plus(self.pe_array).plus(self.network)
    }

    /// Does the design fit the device?
    pub fn fits(&self, d: &Device) -> bool {
        let t = self.total();
        t.les <= d.les && t.rams <= d.m4k_blocks
    }

    /// Render as the paper's Table 1.
    pub fn render_table(&self, device: &Device) -> String {
        let t = self.total();
        let mut s = String::new();
        s.push_str("Component              LEs     RAMs\n");
        s.push_str("-----------------------------------\n");
        s.push_str(&format!(
            "Control Unit        {:>6}   {:>6}\n",
            self.control_unit.les, self.control_unit.rams
        ));
        s.push_str(&format!(
            "PE Array            {:>6}   {:>6}\n",
            self.pe_array.les, self.pe_array.rams
        ));
        s.push_str(&format!(
            "Network             {:>6}   {:>6}\n",
            self.network.les, self.network.rams
        ));
        s.push_str(&format!("Total               {:>6}   {:>6}\n", t.les, t.rams));
        s.push_str(&format!(
            "Available ({})  {:>6}   {:>6}\n",
            device.name, device.les, device.m4k_blocks
        ));
        s
    }
}

fn blocks_for_bits(bits: u64) -> u64 {
    bits.div_ceil(Device::M4K_DATA_BITS)
}

/// Per-PE LE cost: ~18 LEs per datapath bit (ALU, comparator, forwarding
/// muxes, local-memory addressing) plus 86 LEs of fixed control.
/// Calibrated: 86 + 18·16 = 374 LEs/PE; ×16 PEs = 5,984 (Table 1).
fn pe_les(cfg: &FpgaConfig) -> u64 {
    86 + 18 * cfg.w()
}

/// Per-PE RAM blocks: local memory + 3 GPR-file copies + flag file
/// (possibly shared). Calibrated: 2 + 3 + 1 = 6/PE; ×16 = 96 (Table 1).
fn pe_rams(cfg: &FpgaConfig) -> u64 {
    let lmem = blocks_for_bits(cfg.lmem_words * cfg.w());
    let gpr = 3 * blocks_for_bits(cfg.threads * cfg.gprs * cfg.w());
    lmem + gpr // flag blocks are accounted array-wide (sharing)
}

fn pe_array(cfg: &FpgaConfig) -> Usage {
    let flag_bits = cfg.threads * cfg.flags; // per PE
    let flag_blocks = if cfg.pes_per_flag_block <= 1 {
        cfg.num_pes * blocks_for_bits(flag_bits)
    } else {
        // one block serves several PEs' flag files (if capacity allows)
        let group = cfg.pes_per_flag_block.min(Device::M4K_DATA_BITS / flag_bits.max(1)).max(1);
        cfg.num_pes.div_ceil(group) * blocks_for_bits(flag_bits * group)
    };
    Usage { les: cfg.num_pes * pe_les(cfg), rams: cfg.num_pes * pe_rams(cfg) + flag_blocks }
}

/// Control unit: fetch unit (150 LEs), one decode unit per hardware thread
/// (64 LEs each), the scheduler with its instruction status table
/// (30 + 10·T LEs), and a scalar datapath organised like a PE plus
/// branch/fork/join logic (PE cost + 159 LEs). Calibrated to 1,897 LEs at
/// T = 16, W = 16 (Table 1). RAM: the instruction store, 3 scalar GPR-file
/// copies, 1 scalar flag block — 8 blocks in the prototype.
fn control_unit(cfg: &FpgaConfig) -> Usage {
    let les = 150 + 64 * cfg.threads + (30 + 10 * cfg.threads) + (pe_les(cfg) + 159);
    let imem = blocks_for_bits(cfg.imem_words * 32);
    let gpr = 3 * blocks_for_bits(cfg.threads * cfg.gprs * cfg.w());
    let flags = blocks_for_bits(cfg.threads * cfg.flags);
    Usage { les, rams: imem + gpr + flags }
}

/// Number of register nodes in a k-ary broadcast tree over p leaves.
fn broadcast_nodes(p: u64, k: u64) -> u64 {
    let mut nodes = 0;
    let mut level = p;
    while level > 1 {
        level = level.div_ceil(k);
        nodes += level;
    }
    nodes.max(1)
}

/// Network: broadcast registers (36 LEs per tree node: a 32-bit
/// instruction/data register plus fanout buffers), the four binary
/// reduction trees (per internal node: logic 3W/2, max/min 5W/2, sum 2W,
/// counter 6 LEs), the multiple response resolver (one LE per
/// parallel-prefix cell, p·⌈log₂p⌉ cells), and 17 LEs of fixed control.
/// Calibrated to 1,791 LEs at p = 16, k = 4, W = 16 (Table 1). Uses no RAM
/// blocks, as synthesized.
fn network(cfg: &FpgaConfig) -> Usage {
    let p = cfg.num_pes;
    let w = cfg.w();
    let internal = p.saturating_sub(1);
    let red_per_node = (3 * w) / 2 + (5 * w) / 2 + 2 * w + 6;
    let lg = if p <= 1 { 0 } else { (64 - (p - 1).leading_zeros()) as u64 };
    let les = 17 + 36 * broadcast_nodes(p, cfg.broadcast_arity) + internal * red_per_node + p * lg;
    Usage { les, rams: 0 }
}

/// Largest PE count whose full design fits `device` (everything else held
/// fixed) — the Section 9 scaling question. Returns 0 if even one PE does
/// not fit.
pub fn max_pes_on(base: &FpgaConfig, device: &Device) -> u64 {
    let mut lo = 0u64;
    let mut hi = 1u64 << 20;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let cfg = FpgaConfig { num_pes: mid, ..*base };
        if ResourceReport::model(&cfg).fits(device) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline check: the calibrated model reproduces Table 1 exactly.
    #[test]
    fn table_1_exact() {
        let r = ResourceReport::model(&FpgaConfig::prototype());
        assert_eq!(r.control_unit, Usage { les: 1_897, rams: 8 });
        assert_eq!(r.pe_array, Usage { les: 5_984, rams: 96 });
        assert_eq!(r.network, Usage { les: 1_791, rams: 0 });
        assert_eq!(r.total(), Usage { les: 9_672, rams: 104 });
        assert!(r.fits(&Device::ep2c35()));
    }

    /// §7: "the main factor that limits the number of PEs is the
    /// availability of RAM blocks" — and indeed the model says exactly 16
    /// PEs fit the EP2C35, with LEs far from exhausted.
    #[test]
    fn ep2c35_is_ram_limited_at_16_pes() {
        let proto = FpgaConfig::prototype();
        assert_eq!(max_pes_on(&proto, &Device::ep2c35()), 16);
        let at17 = FpgaConfig { num_pes: 17, ..proto };
        let r = ResourceReport::model(&at17);
        assert!(r.total().rams > 105, "RAMs exceed first");
        assert!(r.total().les < 33_216, "LEs would still fit");
    }

    /// §9: flag-file sharing frees RAM blocks and admits more PEs.
    #[test]
    fn flag_sharing_increases_capacity() {
        let proto = FpgaConfig::prototype();
        let shared = FpgaConfig { pes_per_flag_block: 8, ..proto };
        let base = max_pes_on(&proto, &Device::ep2c35());
        let more = max_pes_on(&shared, &Device::ep2c35());
        assert!(more > base, "sharing {more} vs base {base}");
    }

    #[test]
    fn smaller_local_memory_admits_more_pes() {
        let proto = FpgaConfig::prototype();
        let small = FpgaConfig { lmem_words: 128, ..proto };
        assert!(max_pes_on(&small, &Device::ep2c35()) > max_pes_on(&proto, &Device::ep2c35()));
    }

    #[test]
    fn bigger_device_fits_more() {
        let proto = FpgaConfig::prototype();
        let d35 = max_pes_on(&proto, &Device::ep2c35());
        let d70 = max_pes_on(&proto, &Device::by_name("EP2C70").unwrap());
        assert!(d70 > d35);
    }

    #[test]
    fn usage_monotone_in_pes_threads_width() {
        let base = FpgaConfig::prototype();
        let more_pes = FpgaConfig { num_pes: 32, ..base };
        let more_threads = FpgaConfig { threads: 32, ..base };
        let wider = FpgaConfig { width: Width::W32, ..base };
        let t0 = ResourceReport::model(&base).total();
        for c in [more_pes, more_threads, wider] {
            let t = ResourceReport::model(&c).total();
            assert!(t.les >= t0.les && t.rams >= t0.rams, "{c:?}");
        }
    }

    #[test]
    fn render_matches_paper_rows() {
        let r = ResourceReport::model(&FpgaConfig::prototype());
        let s = r.render_table(&Device::ep2c35());
        assert!(s.contains("1897") || s.contains("1,897") || s.contains(" 1897"));
        assert!(s.contains("5984"));
        assert!(s.contains("1791"));
        assert!(s.contains("9672"));
        assert!(s.contains("104"));
        assert!(s.contains("33216"));
        assert!(s.contains("105"));
    }

    #[test]
    fn from_machine_roundtrip() {
        let mc = asc_core::MachineConfig::new(64);
        let fc = FpgaConfig::from_machine(&mc);
        assert_eq!(fc.num_pes, 64);
        assert_eq!(fc.threads, 16);
        let r = ResourceReport::model(&fc);
        assert!(r.total().les > 0);
    }
}
