//! The clock model: why pipelining the broadcast/reduction network
//! matters.
//!
//! In a **non-pipelined** SIMD processor every instruction's broadcast
//! (and any reduction) must settle combinationally within one cycle, so
//! the cycle time grows with the network's gate depth (∝ log₂ p) *and*
//! wire length across the die (∝ √p for a 2-D layout) — the
//! broadcast/reduction bottleneck of Section 1 (Allen & Schimmel \[3\]).
//! In the **pipelined** design, registers at every tree node keep the
//! critical path inside a PE (the paper: "the critical path that limits
//! the clock speed is the forwarding logic in the PE"), so frequency is
//! nearly flat in p.
//!
//! Constants are calibrated to the two hard numbers available: the
//! prototype's ~75 MHz at p = 16 (Section 7), and the non-pipelined
//! related-work point of roughly 68 MHz at 95 8-bit PEs \[10\] (we model a
//! 16-bit datapath, which lands somewhat lower — the *shape* is what the
//! experiments use).

use crate::resources::FpgaConfig;

/// Cycle-time model for pipelined and non-pipelined network organizations.
#[derive(Debug, Clone, Copy)]
pub struct ClockModel {
    /// PE datapath + forwarding critical path at W=16, ns.
    pub t_pe_ns: f64,
    /// Extra routing delay per doubling of the PE count in the pipelined
    /// design (placement spread), ns.
    pub t_route_ns: f64,
    /// Per-tree-level gate delay of the combinational network, ns.
    pub t_gate_ns: f64,
    /// Wire delay coefficient (× √p) of the combinational network, ns.
    pub t_wire_ns: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        // calibrated: pipelined(p=16, W=16) = 75.0 MHz
        ClockModel { t_pe_ns: 12.533, t_route_ns: 0.2, t_gate_ns: 0.9, t_wire_ns: 0.35 }
    }
}

fn lg2(p: u64) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2()
    }
}

impl ClockModel {
    /// Width scaling of the PE critical path (carry chains): linear beyond
    /// 16 bits at ~0.15 ns/bit.
    fn t_pe(&self, cfg: &FpgaConfig) -> f64 {
        self.t_pe_ns + 0.15 * (cfg.width.bits() as f64 - 16.0)
    }

    /// Delay of one broadcast tree node: register + k-way fanout buffer.
    /// Grows with arity — the physical reason the arity is "variable and
    /// chosen so as to maximize system performance" (§6.4): higher k means
    /// fewer stages (smaller b, shorter hazards) but a slower clock once
    /// the node fanout exceeds the PE critical path.
    pub fn broadcast_node_ns(&self, arity: u64) -> f64 {
        8.0 + 0.6 * arity as f64
    }

    /// Cycle time (ns) of the pipelined design: the longer of the PE
    /// forwarding path and the broadcast node, plus a mild routing term.
    pub fn pipelined_ns(&self, cfg: &FpgaConfig) -> f64 {
        self.t_pe(cfg).max(self.broadcast_node_ns(cfg.broadcast_arity))
            + self.t_route_ns * lg2(cfg.num_pes)
    }

    /// Cycle time (ns) of the non-pipelined design: PE path plus the full
    /// combinational broadcast+reduction traversal.
    pub fn nonpipelined_ns(&self, cfg: &FpgaConfig) -> f64 {
        self.t_pe(cfg)
            + self.t_gate_ns * 2.0 * lg2(cfg.num_pes)
            + self.t_wire_ns * (cfg.num_pes as f64).sqrt()
    }

    /// Pipelined clock in MHz.
    pub fn pipelined_mhz(&self, cfg: &FpgaConfig) -> f64 {
        1000.0 / self.pipelined_ns(cfg)
    }

    /// Non-pipelined clock in MHz.
    pub fn nonpipelined_mhz(&self, cfg: &FpgaConfig) -> f64 {
        1000.0 / self.nonpipelined_ns(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::FpgaConfig;

    #[test]
    fn prototype_runs_at_75mhz() {
        let m = ClockModel::default();
        let f = m.pipelined_mhz(&FpgaConfig::prototype());
        assert!((f - 75.0).abs() < 0.5, "got {f}");
    }

    #[test]
    fn nonpipelined_is_always_slower() {
        let m = ClockModel::default();
        for p in [4u64, 16, 64, 256, 1024, 16384] {
            let cfg = FpgaConfig { num_pes: p, ..FpgaConfig::prototype() };
            assert!(m.nonpipelined_mhz(&cfg) < m.pipelined_mhz(&cfg), "p={p}");
        }
    }

    #[test]
    fn gap_widens_with_pe_count() {
        let m = ClockModel::default();
        let ratio = |p| {
            let cfg = FpgaConfig { num_pes: p, ..FpgaConfig::prototype() };
            m.pipelined_mhz(&cfg) / m.nonpipelined_mhz(&cfg)
        };
        assert!(ratio(16) < ratio(256));
        assert!(ratio(256) < ratio(4096));
        // pipelined clock degrades only mildly over a 1024x scale-up
        let cfg16 = FpgaConfig { num_pes: 16, ..FpgaConfig::prototype() };
        let cfg16k = FpgaConfig { num_pes: 16384, ..FpgaConfig::prototype() };
        let drop = m.pipelined_mhz(&cfg16) / m.pipelined_mhz(&cfg16k);
        assert!(drop < 1.2, "pipelined clock nearly flat, drop factor {drop}");
    }

    #[test]
    fn high_arity_eventually_limits_the_clock() {
        let m = ClockModel::default();
        let at = |k| {
            let cfg = FpgaConfig { broadcast_arity: k, num_pes: 1024, ..FpgaConfig::prototype() };
            m.pipelined_mhz(&cfg)
        };
        // small arities share the PE-limited clock; very wide nodes lose
        assert_eq!(at(2), at(4));
        assert!(at(32) < at(4));
    }

    #[test]
    fn wider_datapath_is_slower() {
        let m = ClockModel::default();
        let w16 = FpgaConfig::prototype();
        let w32 = FpgaConfig { width: asc_isa::Width::W32, ..w16 };
        assert!(m.pipelined_mhz(&w32) < m.pipelined_mhz(&w16));
    }
}
