//! Altera Cyclone II device database (the family the prototype targeted).

/// One FPGA device: logic elements and M4K RAM blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Part name.
    pub name: &'static str,
    /// Logic elements.
    pub les: u64,
    /// M4K RAM blocks.
    pub m4k_blocks: u64,
}

impl Device {
    /// Data bits per M4K block (4 Kbit data, parity excluded).
    pub const M4K_DATA_BITS: u64 = 4096;

    /// Look up a Cyclone II device by name.
    pub fn by_name(name: &str) -> Option<Device> {
        CYCLONE_II.iter().copied().find(|d| d.name == name)
    }

    /// The prototype's device.
    pub fn ep2c35() -> Device {
        Device::by_name("EP2C35").expect("EP2C35 in database")
    }
}

/// The Cyclone II family (production members with M4K counts).
pub const CYCLONE_II: &[Device] = &[
    Device { name: "EP2C5", les: 4_608, m4k_blocks: 26 },
    Device { name: "EP2C8", les: 8_256, m4k_blocks: 36 },
    Device { name: "EP2C15", les: 14_448, m4k_blocks: 52 },
    Device { name: "EP2C20", les: 18_752, m4k_blocks: 52 },
    Device { name: "EP2C35", les: 33_216, m4k_blocks: 105 },
    Device { name: "EP2C50", les: 50_528, m4k_blocks: 129 },
    Device { name: "EP2C70", les: 68_416, m4k_blocks: 250 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep2c35_matches_table_1_availability() {
        // Table 1's "Available" row: 33,216 LEs and 105 RAM blocks.
        let d = Device::ep2c35();
        assert_eq!(d.les, 33_216);
        assert_eq!(d.m4k_blocks, 105);
    }

    #[test]
    fn lookup() {
        assert!(Device::by_name("EP2C70").is_some());
        assert!(Device::by_name("EP4CE115").is_none());
        assert!(CYCLONE_II.windows(2).all(|w| w[0].les < w[1].les));
    }
}
