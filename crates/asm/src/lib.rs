#![warn(missing_docs)]

//! # asc-asm — assembler and disassembler for the MTASC ISA
//!
//! A small two-pass assembler for the Multithreaded ASC Processor. The
//! syntax is MIPS-flavoured:
//!
//! ```text
//! ; Find the maximum value and the index of the PE holding it.
//!         pidx    p1              ; p1 = PE index
//!         plw     p2, 0(p0)       ; p2 = local_mem[0]
//!         rmax    s1, p2          ; s1 = global maximum
//!         pceqs   pf1, p2, s1     ; search: who holds the max?
//!         pfirst  pf2, pf1        ; resolve multiple responders
//!         rget    s2, p1, pf2     ; s2 = index of the first one
//!         halt
//! ```
//!
//! * Comments start with `;` or `#` and run to end of line.
//! * Labels are `name:`; they denote instruction addresses and may be used
//!   anywhere an immediate is expected.
//! * `.equ NAME, value` defines a constant.
//! * Parallel and reduction instructions accept a trailing activity mask
//!   written `?pfN` ("only PEs with flag `pfN` set participate"):
//!   `padds p3, p3, s1 ?pf1`.
//! * Pseudo-instructions: `mov`, `pmov`, `pli`, `cgt`/`cge` (and
//!   `pcgt`/`pcge`), `b` — each expands to exactly one machine instruction.
//!
//! Entry points: [`assemble`] (source → [`Program`]), [`disassemble`]
//! (instruction → canonical text). The disassembler output re-assembles to
//! the identical instruction, a property the test-suite checks exhaustively.

mod disasm;
mod error;
mod lexer;
mod parser;
mod program;
mod token;

pub use disasm::disassemble;
pub use error::{render_errors, render_errors_with_source, source_excerpt, AsmError, AsmErrorKind};
pub use parser::assemble;
pub use program::Program;
pub use token::SrcSpan;

#[cfg(all(test, feature = "proptest"))]
mod proptests;
#[cfg(test)]
mod tests;
