//! Assembled program representation.

use std::collections::HashMap;

use asc_isa::{encode, Instr};

use crate::token::SrcSpan;

/// The output of [`crate::assemble`]: decoded instructions, their machine
/// words, the symbol table, and a source map.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Decoded instructions, one per instruction address.
    pub instrs: Vec<Instr>,
    /// Symbol table: labels (instruction addresses) and `.equ` constants.
    pub symbols: HashMap<String, i64>,
    /// 1-based source line of each instruction (for traces and
    /// diagnostics).
    pub lines: Vec<u32>,
    /// Source span of each instruction's mnemonic token, parallel to
    /// `instrs` — lets diagnostic renderers (assembler and `asc-verify`)
    /// point a caret at the instruction. Empty for hand-built programs.
    pub spans: Vec<SrcSpan>,
}

impl Program {
    /// Machine words, ready to load into instruction memory.
    pub fn words(&self) -> Vec<u32> {
        self.instrs.iter().map(encode).collect()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Address of a label, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).map(|&v| v as u32)
    }
}
