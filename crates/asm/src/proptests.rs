//! Assembler property tests, behind the `proptest` cargo feature so the
//! crate's tests build without the `proptest` dependency
//! (`cargo test --features proptest` to include these).

use asc_isa::gen::random_instr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{assemble, disassemble};

proptest! {
    /// The assembler never panics, whatever bytes it is fed — it either
    /// assembles or returns diagnostics.
    #[test]
    fn assembler_never_panics_on_arbitrary_text(src in "\\PC{0,200}") {
        let _ = assemble(&src);
    }

    /// Mutating a valid program's text (flip one character) never panics
    /// and, if it still assembles, still produces one instruction per
    /// statement.
    #[test]
    fn assembler_survives_mutations(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instrs: Vec<_> = (0..8).map(|_| random_instr(&mut rng)).collect();
        let mut text: String =
            instrs.iter().map(|i| disassemble(i) + "\n").collect();
        // flip a random byte to a random ASCII character
        let pos = rng.random_range(0..text.len());
        let ch = rng.random_range(b' '..=b'~') as char;
        let mut bytes: Vec<char> = text.chars().collect();
        if pos < bytes.len() {
            bytes[pos] = ch;
        }
        text = bytes.into_iter().collect();
        if let Ok(p) = assemble(&text) {
            prop_assert!(p.instrs.len() <= instrs.len() + 1);
        }
    }

    /// Disassembling any valid instruction and re-assembling it yields the
    /// identical instruction.
    #[test]
    fn disasm_asm_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..48 {
            let i = random_instr(&mut rng);
            let text = disassemble(&i);
            let prog = assemble(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed: {e:?}"));
            prop_assert_eq!(prog.instrs.len(), 1, "`{}`", &text);
            prop_assert_eq!(prog.instrs[0], i, "`{}`", &text);
        }
    }

    /// A whole random program survives the disassemble→assemble round trip
    /// with addresses intact.
    #[test]
    fn program_round_trip(seed in any::<u64>(), len in 1usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instrs: Vec<_> = (0..len).map(|_| random_instr(&mut rng)).collect();
        let text: String =
            instrs.iter().map(|i| disassemble(i) + "\n").collect();
        let prog = assemble(&text).unwrap();
        prop_assert_eq!(prog.instrs, instrs);
    }
}
