//! Disassembler: [`Instr`] → canonical assembly text.
//!
//! The output uses explicit integer branch offsets and jump targets (the
//! instruction word carries no label names) and re-assembles to the
//! identical instruction — `assemble(disassemble(i)) == i` is checked
//! exhaustively by the property tests.

use asc_isa::{Instr, Mask};

fn m(mask: Mask) -> String {
    match mask {
        Mask::All => String::new(),
        Mask::Flag(f) => format!(" ?{f}"),
    }
}

/// Render one instruction as canonical assembly text.
pub fn disassemble(i: &Instr) -> String {
    use Instr::*;
    match *i {
        Nop => "nop".into(),
        Halt => "halt".into(),
        SAlu { op, rd, ra, rb } => format!("{op} {rd}, {ra}, {rb}"),
        SAluImm { op, rd, ra, imm } => format!("{op}i {rd}, {ra}, {imm}"),
        SCmp { op, fd, ra, rb } => format!("c{op} {fd}, {ra}, {rb}"),
        SCmpImm { op, fd, ra, imm } => format!("c{op}i {fd}, {ra}, {imm}"),
        SFlagOp { op, fd, fa, fb } => match op.arity() {
            0 => format!("{op} {fd}"),
            1 => format!("{op} {fd}, {fa}"),
            _ => format!("{op} {fd}, {fa}, {fb}"),
        },
        Lw { rd, base, off } => format!("lw {rd}, {off}({base})"),
        Sw { rs, base, off } => format!("sw {rs}, {off}({base})"),
        Li { rd, imm } => format!("li {rd}, {imm}"),
        Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Bt { fa, off } => format!("bt {fa}, {off}"),
        Bf { fa, off } => format!("bf {fa}, {off}"),
        J { target } => format!("j {target}"),
        Jal { rd, target } => format!("jal {rd}, {target}"),
        Jr { ra } => format!("jr {ra}"),
        TSpawn { rd, ra } => format!("tspawn {rd}, {ra}"),
        TExit => "texit".into(),
        TJoin { ra } => format!("tjoin {ra}"),
        TGet { rd, ta, src } => format!("tget {rd}, {ta}, {src}"),
        TPut { ta, dst, rb } => format!("tput {ta}, {dst}, {rb}"),
        TId { rd } => format!("tid {rd}"),
        PAlu { op, pd, pa, pb, mask } => format!("p{op} {pd}, {pa}, {pb}{}", m(mask)),
        PAluS { op, pd, pa, sb, mask } => format!("p{op}s {pd}, {pa}, {sb}{}", m(mask)),
        PAluImm { op, pd, pa, imm, mask } => format!("p{op}i {pd}, {pa}, {imm}{}", m(mask)),
        PCmp { op, fd, pa, pb, mask } => format!("pc{op} {fd}, {pa}, {pb}{}", m(mask)),
        PCmpS { op, fd, pa, sb, mask } => format!("pc{op}s {fd}, {pa}, {sb}{}", m(mask)),
        PCmpImm { op, fd, pa, imm, mask } => format!("pc{op}i {fd}, {pa}, {imm}{}", m(mask)),
        PFlagOp { op, fd, fa, fb, mask } => match op.arity() {
            0 => format!("p{op} {fd}{}", m(mask)),
            1 => format!("p{op} {fd}, {fa}{}", m(mask)),
            _ => format!("p{op} {fd}, {fa}, {fb}{}", m(mask)),
        },
        Plw { pd, base, off, mask } => format!("plw {pd}, {off}({base}){}", m(mask)),
        Psw { ps, base, off, mask } => format!("psw {ps}, {off}({base}){}", m(mask)),
        Pidx { pd, mask } => format!("pidx {pd}{}", m(mask)),
        PMovS { pd, sa, mask } => format!("pmovs {pd}, {sa}{}", m(mask)),
        PShift { pd, pa, dist, mask } => format!("pshift {pd}, {pa}, {dist}{}", m(mask)),
        Reduce { op, sd, pa, mask } => format!("{op} {sd}, {pa}{}", m(mask)),
        RCount { sd, fa, mask } => format!("rcount {sd}, {fa}{}", m(mask)),
        RFlag { op, fd, fa, mask } => format!("{op} {fd}, {fa}{}", m(mask)),
        PFirst { fd, fa, mask } => format!("pfirst {fd}, {fa}{}", m(mask)),
        RGet { sd, pa, fa, mask } => format!("rget {sd}, {pa}, {fa}{}", m(mask)),
    }
}
