//! Assembler error reporting. Errors carry the 1-based source line; the
//! assembler collects *all* errors in a file rather than stopping at the
//! first.

use std::fmt;

/// What went wrong on a particular line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A character the lexer does not understand.
    BadChar(char),
    /// A malformed integer literal.
    BadInt(String),
    /// An unknown instruction mnemonic or directive.
    UnknownMnemonic(String),
    /// Operand list doesn't match the mnemonic; the message says what was
    /// expected.
    BadOperands(String),
    /// Reference to an undefined label or `.equ` symbol.
    UndefinedSymbol(String),
    /// The same label or symbol defined twice.
    DuplicateSymbol(String),
    /// An immediate or branch offset out of range for its field.
    OutOfRange {
        /// What kind of value overflowed ("immediate", "branch offset", ...).
        what: &'static str,
        /// The out-of-range value.
        value: i64,
        /// Smallest allowed value.
        min: i64,
        /// Largest allowed value.
        max: i64,
    },
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::BadChar(c) => write!(f, "unexpected character {c:?}"),
            AsmErrorKind::BadInt(s) => write!(f, "malformed integer literal `{s}`"),
            AsmErrorKind::UnknownMnemonic(s) => write!(f, "unknown mnemonic `{s}`"),
            AsmErrorKind::BadOperands(msg) => write!(f, "bad operands: {msg}"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmErrorKind::OutOfRange { what, value, min, max } => {
                write!(f, "{what} {value} out of range [{min}, {max}]")
            }
        }
    }
}

/// An assembler diagnostic: kind plus source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// The diagnostic.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for AsmError {}

/// Render a batch of errors, one per line.
pub fn render_errors(errors: &[AsmError]) -> String {
    let mut out = String::new();
    for e in errors {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}
