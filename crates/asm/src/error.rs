//! Assembler error reporting. Errors carry the 1-based source line plus a
//! column/byte span; the assembler collects *all* errors in a file rather
//! than stopping at the first. [`render_errors_with_source`] points a
//! caret run at the offending token; the excerpt renderer
//! ([`source_excerpt`]) is shared with `asc-verify`'s lint output.

use std::fmt;

/// What went wrong on a particular line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A character the lexer does not understand.
    BadChar(char),
    /// A malformed integer literal.
    BadInt(String),
    /// An unknown instruction mnemonic or directive.
    UnknownMnemonic(String),
    /// Operand list doesn't match the mnemonic; the message says what was
    /// expected.
    BadOperands(String),
    /// Reference to an undefined label or `.equ` symbol.
    UndefinedSymbol(String),
    /// The same label or symbol defined twice.
    DuplicateSymbol(String),
    /// An immediate or branch offset out of range for its field.
    OutOfRange {
        /// What kind of value overflowed ("immediate", "branch offset", ...).
        what: &'static str,
        /// The out-of-range value.
        value: i64,
        /// Smallest allowed value.
        min: i64,
        /// Largest allowed value.
        max: i64,
    },
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::BadChar(c) => write!(f, "unexpected character {c:?}"),
            AsmErrorKind::BadInt(s) => write!(f, "malformed integer literal `{s}`"),
            AsmErrorKind::UnknownMnemonic(s) => write!(f, "unknown mnemonic `{s}`"),
            AsmErrorKind::BadOperands(msg) => write!(f, "bad operands: {msg}"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmErrorKind::OutOfRange { what, value, min, max } => {
                write!(f, "{what} {value} out of range [{min}, {max}]")
            }
        }
    }
}

/// An assembler diagnostic: kind plus source position. `col`/`len` locate
/// the offending token within the line (1-based byte column; `col == 0`
/// means the position is unknown and renderers fall back to line-only
/// output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column of the offending token (0 = unknown).
    pub col: u32,
    /// Length of the offending token in bytes.
    pub len: u32,
    /// The diagnostic.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}:{}: {}", self.line, self.col, self.kind)
        } else {
            write!(f, "line {}: {}", self.line, self.kind)
        }
    }
}

impl std::error::Error for AsmError {}

/// Render a batch of errors, one per line.
pub fn render_errors(errors: &[AsmError]) -> String {
    let mut out = String::new();
    for e in errors {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Render a batch of errors against their source text, with a caret run
/// (`^^^`) under each offending token:
///
/// ```text
/// error: unknown mnemonic `addd`
///   |
/// 3 |         addd s1, s2, s3
///   |         ^^^^
/// ```
pub fn render_errors_with_source(src: &str, errors: &[AsmError]) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::new();
    for e in errors {
        out.push_str(&format!("error: {}\n", e.kind));
        match lines.get(e.line.wrapping_sub(1) as usize) {
            Some(text) if e.line > 0 => {
                out.push_str(&source_excerpt(text, e.line, e.col, e.len));
            }
            _ => out.push_str(&format!("  (line {})\n", e.line)),
        }
    }
    out
}

/// A three-line source excerpt with a caret run under the span starting
/// at 1-based byte column `col` (length `len` bytes, rendered as at least
/// one caret; `col == 0` points at the start of the line). Tabs in the
/// source line are preserved in the caret line's padding so the carets
/// stay aligned under any tab width.
pub fn source_excerpt(line_text: &str, line_no: u32, col: u32, len: u32) -> String {
    let num = line_no.to_string();
    let gutter = " ".repeat(num.len());
    let pad: String = line_text
        .bytes()
        .take(col.saturating_sub(1) as usize)
        .map(|b| if b == b'\t' { '\t' } else { ' ' })
        .collect();
    let carets = "^".repeat(len.max(1) as usize);
    format!("{gutter} |\n{num} | {line_text}\n{gutter} | {pad}{carets}\n")
}
