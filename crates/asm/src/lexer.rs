//! Hand-written lexer. Newlines are significant (one statement per line);
//! comments (`;`, `#`, `//` to end of line) are skipped.

use crate::error::{AsmError, AsmErrorKind};
use crate::token::{Spanned, Tok};

/// Tokenize assembler source. On success returns the token stream with a
/// trailing `Newline`; on failure returns every lexical error found.
pub fn lex(src: &str) -> Result<Vec<Spanned>, Vec<AsmError>> {
    let mut toks = Vec::new();
    let mut errors = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno as u32 + 1;
        lex_line(line, line_no, &mut toks, &mut errors);
        toks.push(Spanned { tok: Tok::Newline, line: line_no, col: line.len() as u32 + 1, len: 0 });
    }
    if errors.is_empty() {
        Ok(toks)
    } else {
        Err(errors)
    }
}

fn lex_line(line: &str, line_no: u32, toks: &mut Vec<Spanned>, errors: &mut Vec<AsmError>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    // `start..end` is the token's byte range within the line; columns are
    // 1-based.
    let push = |toks: &mut Vec<Spanned>, tok: Tok, start: usize, end: usize| {
        toks.push(Spanned { tok, line: line_no, col: start as u32 + 1, len: (end - start) as u32 })
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '#' => return,
            '/' if bytes.get(i + 1) == Some(&b'/') => return,
            ',' => {
                push(toks, Tok::Comma, i, i + 1);
                i += 1;
            }
            ':' => {
                push(toks, Tok::Colon, i, i + 1);
                i += 1;
            }
            '(' => {
                push(toks, Tok::LParen, i, i + 1);
                i += 1;
            }
            ')' => {
                push(toks, Tok::RParen, i, i + 1);
                i += 1;
            }
            '?' => {
                push(toks, Tok::Question, i, i + 1);
                i += 1;
            }
            '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                push(toks, Tok::Directive(line[start..i].to_ascii_lowercase()), start, i);
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                let text = &line[start..i];
                match parse_int(text) {
                    Some(v) => push(toks, Tok::Int(v), start, i),
                    None => errors.push(AsmError {
                        line: line_no,
                        col: start as u32 + 1,
                        len: (i - start) as u32,
                        kind: AsmErrorKind::BadInt(text.to_string()),
                    }),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                push(toks, Tok::Ident(line[start..i].to_string()), start, i);
            }
            other => {
                errors.push(AsmError {
                    line: line_no,
                    col: i as u32 + 1,
                    len: other.len_utf8() as u32,
                    kind: AsmErrorKind::BadChar(other),
                });
                i += other.len_utf8();
            }
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn parse_int(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_line() {
        assert_eq!(
            toks("add s1, s2, s3"),
            vec![
                Tok::Ident("add".into()),
                Tok::Ident("s1".into()),
                Tok::Comma,
                Tok::Ident("s2".into()),
                Tok::Comma,
                Tok::Ident("s3".into()),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn comments_and_labels() {
        assert_eq!(
            toks("loop: j loop ; forever\n# whole-line comment\n// also"),
            vec![
                Tok::Ident("loop".into()),
                Tok::Colon,
                Tok::Ident("j".into()),
                Tok::Ident("loop".into()),
                Tok::Newline,
                Tok::Newline,
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn integers() {
        assert_eq!(
            toks("li s1, -42\nli s1, 0xff\nli s1, 0b1010\nli s1, 1_000"),
            vec![
                Tok::Ident("li".into()),
                Tok::Ident("s1".into()),
                Tok::Comma,
                Tok::Int(-42),
                Tok::Newline,
                Tok::Ident("li".into()),
                Tok::Ident("s1".into()),
                Tok::Comma,
                Tok::Int(255),
                Tok::Newline,
                Tok::Ident("li".into()),
                Tok::Ident("s1".into()),
                Tok::Comma,
                Tok::Int(10),
                Tok::Newline,
                Tok::Ident("li".into()),
                Tok::Ident("s1".into()),
                Tok::Comma,
                Tok::Int(1000),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn mask_and_mem_syntax() {
        assert_eq!(
            toks("plw p1, 4(p2) ?pf3"),
            vec![
                Tok::Ident("plw".into()),
                Tok::Ident("p1".into()),
                Tok::Comma,
                Tok::Int(4),
                Tok::LParen,
                Tok::Ident("p2".into()),
                Tok::RParen,
                Tok::Question,
                Tok::Ident("pf3".into()),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn directive() {
        assert_eq!(
            toks(".equ N, 16"),
            vec![
                Tok::Directive(".equ".into()),
                Tok::Ident("N".into()),
                Tok::Comma,
                Tok::Int(16),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn bad_char_reported_with_line() {
        let errs = lex("nop\nadd s1, s2, @").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].line, 2);
        assert!(matches!(errs[0].kind, AsmErrorKind::BadChar('@')));
    }

    #[test]
    fn bad_int_reported() {
        let errs = lex("li s1, 0xzz").unwrap_err();
        assert!(matches!(errs[0].kind, AsmErrorKind::BadInt(_)));
    }
}
