//! Two-pass parser: pass 1 collects labels and `.equ` constants, pass 2
//! parses instructions with the complete symbol table in scope, so forward
//! references need no fixup machinery.

use std::collections::HashMap;
use std::sync::OnceLock;

use asc_isa::{
    AluOp, CmpOp, FlagOp, FlagReduceOp, Instr, Mask, PFlag, PReg, ReduceOp, SFlag, SReg,
};

use crate::error::{AsmError, AsmErrorKind};
use crate::lexer::lex;
use crate::program::Program;
use crate::token::{Spanned, SrcSpan, Tok};

/// Assemble MTASC source text into a [`Program`]. All diagnostics in the
/// file are collected and returned together.
pub fn assemble(src: &str) -> Result<Program, Vec<AsmError>> {
    let toks = lex(src)?;
    let lines = split_lines(&toks);
    let mut errors = Vec::new();

    // ---- pass 1: addresses of labels, values of .equ constants ----
    // (pass-1 cursors resolve symbols through the parameter, not through
    // their own table, so they get an empty one)
    let empty: HashMap<String, i64> = HashMap::new();
    let mut symbols: HashMap<String, i64> = HashMap::new();
    let mut addr: i64 = 0;
    for line in &lines {
        let mut c = Cursor::new(line, &empty, &mut errors);
        c.labels_and_equ_pass1(&mut symbols, &mut addr);
    }

    // ---- pass 2: full parse ----
    let mut instrs = Vec::new();
    let mut line_map = Vec::new();
    let mut span_map = Vec::new();
    for line in &lines {
        let mut c = Cursor::new(line, &symbols, &mut errors);
        c.skip_labels_and_equ();
        let mspan = c.cur_srcspan();
        if let Some(mnemonic) = c.opt_ident() {
            let line_no = c.line();
            let before = c.errors.len();
            match parse_instr(&mnemonic, &mut c, instrs.len() as i64) {
                Some(i) => {
                    c.end_of_operands();
                    if c.errors.len() == before {
                        instrs.push(i);
                    } else {
                        // keep addresses consistent despite the error
                        instrs.push(Instr::Nop);
                    }
                }
                None => instrs.push(Instr::Nop),
            }
            line_map.push(line_no);
            span_map.push(mspan);
        }
    }

    if errors.is_empty() {
        Ok(Program { instrs, symbols, lines: line_map, spans: span_map })
    } else {
        Err(errors)
    }
}

/// Split the token stream into per-statement slices (newline-terminated).
fn split_lines(toks: &[Spanned]) -> Vec<&[Spanned]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        if t.tok == Tok::Newline {
            if i > start {
                out.push(&toks[start..i]);
            }
            start = i + 1;
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

struct Cursor<'a> {
    toks: &'a [Spanned],
    pos: usize,
    symbols: &'a HashMap<String, i64>,
    errors: &'a mut Vec<AsmError>,
}

impl<'a> Cursor<'a> {
    fn new(
        toks: &'a [Spanned],
        symbols: &'a HashMap<String, i64>,
        errors: &'a mut Vec<AsmError>,
    ) -> Self {
        Cursor { toks, pos: 0, symbols, errors }
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|s| &s.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Span of the token at the cursor (or the last token of the line
    /// once everything is consumed).
    fn cur_srcspan(&self) -> SrcSpan {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| SrcSpan { line: t.line, col: t.col, len: t.len })
            .unwrap_or_default()
    }

    /// Span of the most recently consumed token — where an error raised
    /// just after a `next()` points.
    fn prev_srcspan(&self) -> SrcSpan {
        let idx = self.pos.min(self.toks.len()).saturating_sub(1);
        self.toks
            .get(idx)
            .map(|t| SrcSpan { line: t.line, col: t.col, len: t.len })
            .unwrap_or_default()
    }

    /// Report an error at the most recently consumed token (most errors
    /// are raised right after `next()` returned something unexpected).
    fn err(&mut self, kind: AsmErrorKind) {
        let line = self.line();
        let span = self.prev_srcspan();
        self.errors.push(AsmError { line, col: span.col, len: span.len, kind });
    }

    /// Report an error at the *current* (unconsumed) token.
    fn err_here(&mut self, kind: AsmErrorKind) {
        let line = self.line();
        let span = self.cur_srcspan();
        self.errors.push(AsmError { line, col: span.col, len: span.len, kind });
    }

    fn bad(&mut self, msg: impl Into<String>) {
        self.err(AsmErrorKind::BadOperands(msg.into()));
    }

    /// Pass 1: consume leading `label:` pairs and `.equ` directives,
    /// updating the symbol table; bump `addr` if an instruction follows.
    fn labels_and_equ_pass1(&mut self, symbols: &mut HashMap<String, i64>, addr: &mut i64) {
        loop {
            match (self.peek().cloned(), self.toks.get(self.pos + 1).map(|s| s.tok.clone())) {
                (Some(Tok::Ident(name)), Some(Tok::Colon)) => {
                    self.pos += 2;
                    if symbols.insert(name.clone(), *addr).is_some() {
                        self.err(AsmErrorKind::DuplicateSymbol(name));
                    }
                }
                (Some(Tok::Directive(d)), _) if d == ".equ" => {
                    self.pos += 1;
                    let name = match self.next() {
                        Some(Tok::Ident(n)) => n.clone(),
                        _ => {
                            self.bad(".equ expects `.equ NAME, value`");
                            return;
                        }
                    };
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    }
                    let value = match self.next() {
                        Some(Tok::Int(v)) => *v,
                        Some(Tok::Ident(sym)) => match symbols.get(sym.as_str()) {
                            Some(&v) => v,
                            None => {
                                let sym = sym.clone();
                                self.err(AsmErrorKind::UndefinedSymbol(sym));
                                0
                            }
                        },
                        _ => {
                            self.bad(".equ expects a numeric value or known symbol");
                            0
                        }
                    };
                    if symbols.insert(name.clone(), value).is_some() {
                        self.err(AsmErrorKind::DuplicateSymbol(name));
                    }
                    return;
                }
                (Some(Tok::Directive(d)), _) => {
                    self.err_here(AsmErrorKind::UnknownMnemonic(d));
                    return;
                }
                (Some(_), _) => {
                    *addr += 1;
                    return;
                }
                (None, _) => return,
            }
        }
    }

    /// Pass 2: skip what pass 1 consumed.
    fn skip_labels_and_equ(&mut self) {
        loop {
            match (self.peek().cloned(), self.toks.get(self.pos + 1).map(|s| s.tok.clone())) {
                (Some(Tok::Ident(_)), Some(Tok::Colon)) => self.pos += 2,
                (Some(Tok::Directive(_)), _) => {
                    self.pos = self.toks.len();
                    return;
                }
                _ => return,
            }
        }
    }

    fn opt_ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    fn comma(&mut self) {
        match self.next() {
            Some(Tok::Comma) => {}
            other => {
                let msg = match other {
                    Some(t) => format!("expected `,`, found {t}"),
                    None => "expected `,`, found end of line".to_string(),
                };
                self.bad(msg);
            }
        }
    }

    fn reg_ident(&mut self, what: &'static str) -> Option<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Some(s.clone()),
            other => {
                let msg = match other {
                    Some(t) => format!("expected {what}, found {t}"),
                    None => format!("expected {what}, found end of line"),
                };
                self.bad(msg);
                None
            }
        }
    }

    fn sreg(&mut self) -> SReg {
        self.parse_reg("scalar register (s0..s15)", "s", 16)
            .map(SReg::from_index)
            .unwrap_or(SReg::R0)
    }

    fn preg(&mut self) -> PReg {
        self.parse_reg("parallel register (p0..p15)", "p", 16)
            .map(PReg::from_index)
            .unwrap_or(PReg::R0)
    }

    fn sflag(&mut self) -> SFlag {
        self.parse_reg("scalar flag (f0..f7)", "f", 8).map(SFlag::from_index).unwrap_or(SFlag::R0)
    }

    fn pflag(&mut self) -> PFlag {
        self.parse_reg("parallel flag (pf0..pf7)", "pf", 8)
            .map(PFlag::from_index)
            .unwrap_or(PFlag::R0)
    }

    fn parse_reg(&mut self, what: &'static str, prefix: &str, count: u8) -> Option<u8> {
        let name = self.reg_ident(what)?;
        let idx = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.parse::<u8>().ok())
            .filter(|&i| i < count);
        // "pf3" must not parse as p-register "f3"; require exact prefix and
        // all-digits remainder.
        if prefix == "p" && name.starts_with("pf") {
            self.bad(format!("expected {what}, found `{name}`"));
            return None;
        }
        if prefix == "f" && name.starts_with("pf") {
            self.bad(format!("expected {what}, found `{name}`"));
            return None;
        }
        match idx {
            Some(i) => Some(i),
            None => {
                self.bad(format!("expected {what}, found `{name}`"));
                None
            }
        }
    }

    /// An immediate: integer literal or symbol (label / `.equ`).
    fn imm(&mut self, what: &'static str, min: i64, max: i64) -> i64 {
        let v = match self.next() {
            Some(Tok::Int(v)) => *v,
            Some(Tok::Ident(sym)) => match self.symbols.get(sym.as_str()) {
                Some(&v) => v,
                None => {
                    let sym = sym.clone();
                    self.err(AsmErrorKind::UndefinedSymbol(sym));
                    return 0;
                }
            },
            other => {
                let msg = match other {
                    Some(t) => format!("expected {what}, found {t}"),
                    None => format!("expected {what}, found end of line"),
                };
                self.bad(msg);
                return 0;
            }
        };
        self.check_range(what, v, min, max)
    }

    fn check_range(&mut self, what: &'static str, v: i64, min: i64, max: i64) -> i64 {
        if v < min || v > max {
            self.err(AsmErrorKind::OutOfRange { what, value: v, min, max });
            0
        } else {
            v
        }
    }

    /// `imm16` accepts the signed range plus unsigned bit patterns up to
    /// 0xffff (stored as the same 16 bits).
    fn imm16(&mut self) -> i16 {
        self.imm("immediate", -0x8000, 0xffff) as u16 as i16
    }

    fn imm8(&mut self) -> i8 {
        self.imm("immediate", -0x80, 0xff) as u8 as i8
    }

    /// Branch target: a label (offset computed from `addr`) or an explicit
    /// integer offset.
    fn branch_off(&mut self, addr: i64) -> i16 {
        let v = match self.next() {
            Some(Tok::Int(v)) => *v,
            Some(Tok::Ident(sym)) => match self.symbols.get(sym.as_str()) {
                Some(&target) => target - (addr + 1),
                None => {
                    let sym = sym.clone();
                    self.err(AsmErrorKind::UndefinedSymbol(sym));
                    0
                }
            },
            other => {
                let msg = match other {
                    Some(t) => format!("expected branch target, found {t}"),
                    None => "expected branch target, found end of line".to_string(),
                };
                self.bad(msg);
                0
            }
        };
        self.check_range("branch offset", v, -0x8000, 0x7fff) as i16
    }

    fn jump_target(&mut self, max: i64) -> u32 {
        self.imm("jump target", 0, max) as u32
    }

    /// `off(reg)` memory operand; returns (offset, base).
    fn mem_s(&mut self) -> (i16, SReg) {
        let off = self.imm("offset", -0x8000, 0xffff) as u16 as i16;
        self.expect(Tok::LParen);
        let base = self.sreg();
        self.expect(Tok::RParen);
        (off, base)
    }

    fn mem_p(&mut self) -> (i8, PReg) {
        let off = self.imm("offset", -0x80, 0xff) as u8 as i8;
        self.expect(Tok::LParen);
        let base = self.preg();
        self.expect(Tok::RParen);
        (off, base)
    }

    fn expect(&mut self, want: Tok) {
        match self.next() {
            Some(t) if *t == want => {}
            other => {
                let msg = match other {
                    Some(t) => format!("expected {want}, found {t}"),
                    None => format!("expected {want}, found end of line"),
                };
                self.bad(msg);
            }
        }
    }

    /// Optional trailing activity mask: `?pfN`.
    fn mask(&mut self) -> Mask {
        if self.peek() == Some(&Tok::Question) {
            self.pos += 1;
            Mask::Flag(self.pflag())
        } else {
            Mask::All
        }
    }

    fn end_of_operands(&mut self) {
        if let Some(t) = self.peek() {
            let msg = format!("unexpected {t} after operands");
            self.err_here(AsmErrorKind::BadOperands(msg));
        }
    }
}

/// Operand shape of each mnemonic.
#[derive(Clone, Copy)]
enum Form {
    SAlu(AluOp),
    SAluImm(AluOp),
    SCmp(CmpOp),
    SCmpSwapped(CmpOp),
    SCmpImm(CmpOp),
    SFlag(FlagOp),
    PAlu(AluOp),
    PAluS(AluOp),
    PAluImm(AluOp),
    PCmp(CmpOp),
    PCmpSwapped(CmpOp),
    PCmpS(CmpOp),
    PCmpImm(CmpOp),
    PFlag(FlagOp),
    Reduce(ReduceOp),
    RFlag(FlagReduceOp),
    Named(&'static str),
}

fn mnemonic_table() -> &'static HashMap<String, Form> {
    static TABLE: OnceLock<HashMap<String, Form>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = HashMap::new();
        for &op in AluOp::ALL {
            let m = op.mnemonic();
            t.insert(m.to_string(), Form::SAlu(op));
            t.insert(format!("{m}i"), Form::SAluImm(op));
            t.insert(format!("p{m}"), Form::PAlu(op));
            t.insert(format!("p{m}s"), Form::PAluS(op));
            t.insert(format!("p{m}i"), Form::PAluImm(op));
        }
        for &op in CmpOp::ALL {
            let m = op.mnemonic();
            t.insert(format!("c{m}"), Form::SCmp(op));
            t.insert(format!("c{m}i"), Form::SCmpImm(op));
            t.insert(format!("pc{m}"), Form::PCmp(op));
            t.insert(format!("pc{m}s"), Form::PCmpS(op));
            t.insert(format!("pc{m}i"), Form::PCmpImm(op));
        }
        // gt/ge pseudo-comparisons (operands swapped)
        t.insert("cgt".into(), Form::SCmpSwapped(CmpOp::Lt));
        t.insert("cge".into(), Form::SCmpSwapped(CmpOp::Le));
        t.insert("cgtu".into(), Form::SCmpSwapped(CmpOp::LtU));
        t.insert("cgeu".into(), Form::SCmpSwapped(CmpOp::LeU));
        t.insert("pcgt".into(), Form::PCmpSwapped(CmpOp::Lt));
        t.insert("pcge".into(), Form::PCmpSwapped(CmpOp::Le));
        t.insert("pcgtu".into(), Form::PCmpSwapped(CmpOp::LtU));
        t.insert("pcgeu".into(), Form::PCmpSwapped(CmpOp::LeU));
        for &op in FlagOp::ALL {
            let m = op.mnemonic();
            t.insert(m.to_string(), Form::SFlag(op));
            t.insert(format!("p{m}"), Form::PFlag(op));
        }
        for &op in ReduceOp::ALL {
            t.insert(op.mnemonic().to_string(), Form::Reduce(op));
        }
        t.insert("rany".into(), Form::RFlag(FlagReduceOp::Any));
        t.insert("rall".into(), Form::RFlag(FlagReduceOp::All));
        for name in [
            "nop", "halt", "lw", "sw", "li", "lui", "bt", "bf", "j", "b", "jal", "jr", "tspawn",
            "texit", "tjoin", "tget", "tput", "tid", "plw", "psw", "pidx", "pmovs", "pshift",
            "rcount", "pfirst", "rget", "mov", "pmov", "pli", "not", "pnot",
        ] {
            t.insert(name.into(), Form::Named(name));
        }
        t
    })
}

/// Parse the operands of one instruction. `addr` is the instruction's own
/// address (for branch offsets).
fn parse_instr(mnemonic: &str, c: &mut Cursor<'_>, addr: i64) -> Option<Instr> {
    let lower = mnemonic.to_ascii_lowercase();
    let form = match mnemonic_table().get(&lower) {
        Some(f) => *f,
        None => {
            c.err(AsmErrorKind::UnknownMnemonic(mnemonic.to_string()));
            return None;
        }
    };
    let i = match form {
        Form::SAlu(op) => {
            let rd = c.sreg();
            c.comma();
            let ra = c.sreg();
            c.comma();
            let rb = c.sreg();
            Instr::SAlu { op, rd, ra, rb }
        }
        Form::SAluImm(op) => {
            let rd = c.sreg();
            c.comma();
            let ra = c.sreg();
            c.comma();
            let imm = c.imm16();
            Instr::SAluImm { op, rd, ra, imm }
        }
        Form::SCmp(op) => {
            let fd = c.sflag();
            c.comma();
            let ra = c.sreg();
            c.comma();
            let rb = c.sreg();
            Instr::SCmp { op, fd, ra, rb }
        }
        Form::SCmpSwapped(op) => {
            let fd = c.sflag();
            c.comma();
            let ra = c.sreg();
            c.comma();
            let rb = c.sreg();
            Instr::SCmp { op, fd, ra: rb, rb: ra }
        }
        Form::SCmpImm(op) => {
            let fd = c.sflag();
            c.comma();
            let ra = c.sreg();
            c.comma();
            let imm = c.imm16();
            Instr::SCmpImm { op, fd, ra, imm }
        }
        Form::SFlag(op) => {
            let fd = c.sflag();
            let mut fa = SFlag::R0;
            let mut fb = SFlag::R0;
            if op.arity() >= 1 {
                c.comma();
                fa = c.sflag();
            }
            if op.arity() >= 2 {
                c.comma();
                fb = c.sflag();
            }
            Instr::SFlagOp { op, fd, fa, fb }
        }
        Form::PAlu(op) => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            c.comma();
            let pb = c.preg();
            let mask = c.mask();
            Instr::PAlu { op, pd, pa, pb, mask }
        }
        Form::PAluS(op) => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            c.comma();
            let sb = c.sreg();
            let mask = c.mask();
            Instr::PAluS { op, pd, pa, sb, mask }
        }
        Form::PAluImm(op) => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            c.comma();
            let imm = c.imm8();
            let mask = c.mask();
            Instr::PAluImm { op, pd, pa, imm, mask }
        }
        Form::PCmp(op) => {
            let fd = c.pflag();
            c.comma();
            let pa = c.preg();
            c.comma();
            let pb = c.preg();
            let mask = c.mask();
            Instr::PCmp { op, fd, pa, pb, mask }
        }
        Form::PCmpSwapped(op) => {
            let fd = c.pflag();
            c.comma();
            let pa = c.preg();
            c.comma();
            let pb = c.preg();
            let mask = c.mask();
            Instr::PCmp { op, fd, pa: pb, pb: pa, mask }
        }
        Form::PCmpS(op) => {
            let fd = c.pflag();
            c.comma();
            let pa = c.preg();
            c.comma();
            let sb = c.sreg();
            let mask = c.mask();
            Instr::PCmpS { op, fd, pa, sb, mask }
        }
        Form::PCmpImm(op) => {
            let fd = c.pflag();
            c.comma();
            let pa = c.preg();
            c.comma();
            let imm = c.imm8();
            let mask = c.mask();
            Instr::PCmpImm { op, fd, pa, imm, mask }
        }
        Form::PFlag(op) => {
            let fd = c.pflag();
            let mut fa = PFlag::R0;
            let mut fb = PFlag::R0;
            if op.arity() >= 1 {
                c.comma();
                fa = c.pflag();
            }
            if op.arity() >= 2 {
                c.comma();
                fb = c.pflag();
            }
            let mask = c.mask();
            Instr::PFlagOp { op, fd, fa, fb, mask }
        }
        Form::Reduce(op) => {
            let sd = c.sreg();
            c.comma();
            let pa = c.preg();
            let mask = c.mask();
            Instr::Reduce { op, sd, pa, mask }
        }
        Form::RFlag(op) => {
            let fd = c.sflag();
            c.comma();
            let fa = c.pflag();
            let mask = c.mask();
            Instr::RFlag { op, fd, fa, mask }
        }
        Form::Named(name) => parse_named(name, c, addr)?,
    };
    Some(i)
}

fn parse_named(name: &'static str, c: &mut Cursor<'_>, addr: i64) -> Option<Instr> {
    let i = match name {
        "nop" => Instr::Nop,
        "halt" => Instr::Halt,
        "lw" => {
            let rd = c.sreg();
            c.comma();
            let (off, base) = c.mem_s();
            Instr::Lw { rd, base, off }
        }
        "sw" => {
            let rs = c.sreg();
            c.comma();
            let (off, base) = c.mem_s();
            Instr::Sw { rs, base, off }
        }
        "li" => {
            let rd = c.sreg();
            c.comma();
            let imm = c.imm16();
            Instr::Li { rd, imm }
        }
        "lui" => {
            let rd = c.sreg();
            c.comma();
            let imm = c.imm("immediate", 0, 0xffff) as u16;
            Instr::Lui { rd, imm }
        }
        "bt" => {
            let fa = c.sflag();
            c.comma();
            let off = c.branch_off(addr);
            Instr::Bt { fa, off }
        }
        "bf" => {
            let fa = c.sflag();
            c.comma();
            let off = c.branch_off(addr);
            Instr::Bf { fa, off }
        }
        "j" | "b" => Instr::J { target: c.jump_target(0x00ff_ffff) },
        "jal" => {
            let rd = c.sreg();
            c.comma();
            Instr::Jal { rd, target: c.jump_target(0x000f_ffff) }
        }
        "jr" => Instr::Jr { ra: c.sreg() },
        "tspawn" => {
            let rd = c.sreg();
            c.comma();
            let ra = c.sreg();
            Instr::TSpawn { rd, ra }
        }
        "texit" => Instr::TExit,
        "tjoin" => Instr::TJoin { ra: c.sreg() },
        "tget" => {
            let rd = c.sreg();
            c.comma();
            let ta = c.sreg();
            c.comma();
            let src = c.sreg();
            Instr::TGet { rd, ta, src }
        }
        "tput" => {
            let ta = c.sreg();
            c.comma();
            let dst = c.sreg();
            c.comma();
            let rb = c.sreg();
            Instr::TPut { ta, dst, rb }
        }
        "tid" => Instr::TId { rd: c.sreg() },
        "plw" => {
            let pd = c.preg();
            c.comma();
            let (off, base) = c.mem_p();
            let mask = c.mask();
            Instr::Plw { pd, base, off, mask }
        }
        "psw" => {
            let ps = c.preg();
            c.comma();
            let (off, base) = c.mem_p();
            let mask = c.mask();
            Instr::Psw { ps, base, off, mask }
        }
        "pidx" => {
            let pd = c.preg();
            let mask = c.mask();
            Instr::Pidx { pd, mask }
        }
        "pmovs" => {
            let pd = c.preg();
            c.comma();
            let sa = c.sreg();
            let mask = c.mask();
            Instr::PMovS { pd, sa, mask }
        }
        "pshift" => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            c.comma();
            let dist = c.imm8();
            let mask = c.mask();
            Instr::PShift { pd, pa, dist, mask }
        }
        "rcount" => {
            let sd = c.sreg();
            c.comma();
            let fa = c.pflag();
            let mask = c.mask();
            Instr::RCount { sd, fa, mask }
        }
        "pfirst" => {
            let fd = c.pflag();
            c.comma();
            let fa = c.pflag();
            let mask = c.mask();
            Instr::PFirst { fd, fa, mask }
        }
        "rget" => {
            let sd = c.sreg();
            c.comma();
            let pa = c.preg();
            c.comma();
            let fa = c.pflag();
            let mask = c.mask();
            Instr::RGet { sd, pa, fa, mask }
        }
        // ---- pseudo-instructions (each expands to one word) ----
        "mov" => {
            let rd = c.sreg();
            c.comma();
            let ra = c.sreg();
            Instr::SAlu { op: AluOp::Add, rd, ra, rb: SReg::R0 }
        }
        "not" => {
            let rd = c.sreg();
            c.comma();
            let ra = c.sreg();
            Instr::SAlu { op: AluOp::Nor, rd, ra, rb: SReg::R0 }
        }
        "pmov" => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            let mask = c.mask();
            Instr::PAlu { op: AluOp::Add, pd, pa, pb: PReg::R0, mask }
        }
        "pnot" => {
            let pd = c.preg();
            c.comma();
            let pa = c.preg();
            let mask = c.mask();
            Instr::PAlu { op: AluOp::Nor, pd, pa, pb: PReg::R0, mask }
        }
        "pli" => {
            let pd = c.preg();
            c.comma();
            let imm = c.imm8();
            let mask = c.mask();
            Instr::PAluImm { op: AluOp::Add, pd, pa: PReg::R0, imm, mask }
        }
        _ => unreachable!("unhandled named mnemonic {name}"),
    };
    Some(i)
}
