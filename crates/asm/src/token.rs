//! Token model for the assembler.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier: mnemonic, register name, label, or symbol.
    Ident(String),
    /// Directive, e.g. `.equ` (leading dot included in the name).
    Directive(String),
    /// Integer literal (decimal, `0x` hex, `0b` binary; optional leading
    /// `-`).
    Int(i64),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `?` — introduces an activity mask.
    Question,
    /// End of line (significant: one instruction per line).
    Newline,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Directive(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Question => f.write_str("`?`"),
            Tok::Newline => f.write_str("end of line"),
        }
    }
}

/// A token plus its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}
