//! Token model for the assembler.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier: mnemonic, register name, label, or symbol.
    Ident(String),
    /// Directive, e.g. `.equ` (leading dot included in the name).
    Directive(String),
    /// Integer literal (decimal, `0x` hex, `0b` binary; optional leading
    /// `-`).
    Int(i64),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `?` — introduces an activity mask.
    Question,
    /// End of line (significant: one instruction per line).
    Newline,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Directive(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Question => f.write_str("`?`"),
            Tok::Newline => f.write_str("end of line"),
        }
    }
}

/// A byte span within one source line: 1-based line and column plus a
/// length in bytes. `col == 0` means "position unknown" (renderers fall
/// back to line-only output). Shared by assembler diagnostics and the
/// `asc-verify` lint renderer, so both point into source the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcSpan {
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column of the first byte (0 = unknown).
    pub col: u32,
    /// Length of the span in bytes (0 = point/unknown; render one caret).
    pub len: u32,
}

/// A token plus its source position (1-based line/column, byte length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column where the token starts.
    pub col: u32,
    /// Token length in bytes.
    pub len: u32,
}
