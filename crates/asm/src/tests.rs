//! Assembler tests: end-to-end assembly, symbol handling, and error
//! reporting. The disassembler round-trip properties live in
//! `proptests.rs` behind the `proptest` feature.

use asc_isa::{AluOp, CmpOp, Instr, Mask, PFlag, PReg, ReduceOp, SFlag, SReg};

use crate::assemble;
use crate::error::AsmErrorKind;

fn s(i: u8) -> SReg {
    SReg::from_index(i)
}
fn p(i: u8) -> PReg {
    PReg::from_index(i)
}
fn sf(i: u8) -> SFlag {
    SFlag::from_index(i)
}
fn pf(i: u8) -> PFlag {
    PFlag::from_index(i)
}

#[test]
fn assemble_basic_program() {
    let prog = assemble(
        "; compute something\n\
         start:  li      s1, 10\n\
                 addi    s2, s1, -3\n\
                 halt\n",
    )
    .unwrap();
    assert_eq!(
        prog.instrs,
        vec![
            Instr::Li { rd: s(1), imm: 10 },
            Instr::SAluImm { op: AluOp::Add, rd: s(2), ra: s(1), imm: -3 },
            Instr::Halt,
        ]
    );
    assert_eq!(prog.label("start"), Some(0));
    assert_eq!(prog.lines, vec![2, 3, 4]);
}

#[test]
fn forward_and_backward_branches() {
    let prog = assemble(
        "loop:   bt f1, done\n\
                 j loop\n\
         done:   halt\n",
    )
    .unwrap();
    // bt at addr 0, done at addr 2 → offset = 2 - (0+1) = 1
    assert_eq!(prog.instrs[0], Instr::Bt { fa: sf(1), off: 1 });
    assert_eq!(prog.instrs[1], Instr::J { target: 0 });
}

#[test]
fn equ_constants_and_label_as_immediate() {
    let prog = assemble(
        ".equ N, 16\n\
         .equ N2, N\n\
                 li s1, N\n\
                 li s2, N2\n\
         tgt:    li s3, tgt\n",
    )
    .unwrap();
    assert_eq!(prog.instrs[0], Instr::Li { rd: s(1), imm: 16 });
    assert_eq!(prog.instrs[1], Instr::Li { rd: s(2), imm: 16 });
    assert_eq!(prog.instrs[2], Instr::Li { rd: s(3), imm: 2 });
}

#[test]
fn parallel_with_mask_and_memory() {
    let prog = assemble(
        "        pidx  p1\n\
                 plw   p2, 4(p1) ?pf3\n\
                 padds p3, p2, s1 ?pf0\n\
                 psw   p3, -1(p1)\n",
    )
    .unwrap();
    assert_eq!(prog.instrs[0], Instr::Pidx { pd: p(1), mask: Mask::All });
    assert_eq!(
        prog.instrs[1],
        Instr::Plw { pd: p(2), base: p(1), off: 4, mask: Mask::Flag(pf(3)) }
    );
    assert_eq!(
        prog.instrs[2],
        Instr::PAluS { op: AluOp::Add, pd: p(3), pa: p(2), sb: s(1), mask: Mask::Flag(pf(0)) }
    );
    assert_eq!(prog.instrs[3], Instr::Psw { ps: p(3), base: p(1), off: -1, mask: Mask::All });
}

#[test]
fn reductions() {
    let prog = assemble(
        "        rmax   s1, p2\n\
                 rsum   s2, p3 ?pf1\n\
                 rcount s3, pf2\n\
                 rany   f1, pf2\n\
                 rall   f2, pf2 ?pf5\n\
                 pfirst pf4, pf2\n\
                 rget   s4, p1, pf4\n",
    )
    .unwrap();
    assert_eq!(
        prog.instrs[0],
        Instr::Reduce { op: ReduceOp::Max, sd: s(1), pa: p(2), mask: Mask::All }
    );
    assert_eq!(
        prog.instrs[1],
        Instr::Reduce { op: ReduceOp::Sum, sd: s(2), pa: p(3), mask: Mask::Flag(pf(1)) }
    );
    assert_eq!(prog.instrs[2], Instr::RCount { sd: s(3), fa: pf(2), mask: Mask::All });
    assert_eq!(prog.instrs[6], Instr::RGet { sd: s(4), pa: p(1), fa: pf(4), mask: Mask::All });
}

#[test]
fn pseudo_instructions() {
    let prog = assemble(
        "        mov  s1, s2\n\
                 not  s3, s4\n\
                 pmov p1, p2 ?pf1\n\
                 pli  p3, 7\n\
                 cgt  f1, s1, s2\n\
                 pcge pf1, p1, p2\n\
                 b    0\n",
    )
    .unwrap();
    assert_eq!(prog.instrs[0], Instr::SAlu { op: AluOp::Add, rd: s(1), ra: s(2), rb: s(0) });
    assert_eq!(prog.instrs[1], Instr::SAlu { op: AluOp::Nor, rd: s(3), ra: s(4), rb: s(0) });
    assert_eq!(
        prog.instrs[2],
        Instr::PAlu { op: AluOp::Add, pd: p(1), pa: p(2), pb: p(0), mask: Mask::Flag(pf(1)) }
    );
    assert_eq!(
        prog.instrs[3],
        Instr::PAluImm { op: AluOp::Add, pd: p(3), pa: p(0), imm: 7, mask: Mask::All }
    );
    // cgt f1, s1, s2  ==  clt f1, s2, s1
    assert_eq!(prog.instrs[4], Instr::SCmp { op: CmpOp::Lt, fd: sf(1), ra: s(2), rb: s(1) });
    assert_eq!(
        prog.instrs[5],
        Instr::PCmp { op: CmpOp::Le, fd: pf(1), pa: p(2), pb: p(1), mask: Mask::All }
    );
    assert_eq!(prog.instrs[6], Instr::J { target: 0 });
}

#[test]
fn thread_instructions() {
    let prog = assemble(
        "        li s1, worker\n\
                 tspawn s2, s1\n\
                 tjoin s2\n\
                 tget s3, s2, s7\n\
                 tput s2, s7, s3\n\
                 tid s4\n\
                 texit\n\
         worker: texit\n",
    )
    .unwrap();
    assert_eq!(prog.instrs[1], Instr::TSpawn { rd: s(2), ra: s(1) });
    assert_eq!(prog.instrs[3], Instr::TGet { rd: s(3), ta: s(2), src: s(7) });
    assert_eq!(prog.label("worker"), Some(7));
}

#[test]
fn error_unknown_mnemonic() {
    let errs = assemble("frobnicate s1, s2\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::UnknownMnemonic(_)));
    assert_eq!(errs[0].line, 1);
}

#[test]
fn error_undefined_symbol() {
    let errs = assemble("j nowhere\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::UndefinedSymbol(_)));
}

#[test]
fn error_duplicate_label() {
    let errs = assemble("a: nop\na: nop\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::DuplicateSymbol(_)));
    assert_eq!(errs[0].line, 2);
}

#[test]
fn error_out_of_range_immediate() {
    let errs = assemble("li s1, 100000\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::OutOfRange { .. }));
    let errs = assemble("paddi p1, p2, 300\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::OutOfRange { .. }));
}

#[test]
fn error_wrong_register_file() {
    // parallel instruction with scalar register operand
    let errs = assemble("padd p1, s2, p3\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::BadOperands(_)));
    // pf register where p register expected
    let errs = assemble("padd p1, pf2, p3\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::BadOperands(_)));
    // out-of-range register index
    let errs = assemble("add s1, s2, s16\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::BadOperands(_)));
}

#[test]
fn multiple_errors_collected() {
    let errs = assemble("bogus1\nnop\nbogus2 s1\nli s1, 999999\n").unwrap_err();
    assert_eq!(errs.len(), 3);
    assert_eq!(errs[0].line, 1);
    assert_eq!(errs[1].line, 3);
    assert_eq!(errs[2].line, 4);
}

#[test]
fn trailing_junk_rejected() {
    let errs = assemble("nop nop\n").unwrap_err();
    assert!(matches!(errs[0].kind, AsmErrorKind::BadOperands(_)));
}

#[test]
fn empty_and_comment_only_source() {
    assert!(assemble("").unwrap().is_empty());
    assert!(assemble("; nothing here\n\n  # or here\n").unwrap().is_empty());
}

#[test]
fn case_insensitive_mnemonics() {
    let prog = assemble("ADD s1, s2, s3\nHalt\n").unwrap();
    assert_eq!(prog.instrs[0], Instr::SAlu { op: AluOp::Add, rd: s(1), ra: s(2), rb: s(3) });
    assert_eq!(prog.instrs[1], Instr::Halt);
}

#[test]
fn words_encode_correctly() {
    let prog = assemble("nop\nhalt\n").unwrap();
    let words = prog.words();
    assert_eq!(words[0], 0x00_000000);
    assert_eq!(words[1], 0x01_000000);
}

#[test]
fn errors_carry_column_spans() {
    // `addd` starts at byte 8 → column 9, length 4.
    let errs = assemble("nop\n        addd s1, s2, s3\n").unwrap_err();
    assert_eq!(errs.len(), 1);
    assert_eq!((errs[0].line, errs[0].col, errs[0].len), (2, 9, 4));
    assert!(matches!(errs[0].kind, AsmErrorKind::UnknownMnemonic(_)));
    assert_eq!(errs[0].to_string(), "line 2:9: unknown mnemonic `addd`");

    // The out-of-range literal itself is the span.
    let errs = assemble("li s1, 99999\n").unwrap_err();
    assert_eq!((errs[0].line, errs[0].col, errs[0].len), (1, 8, 5));
}

#[test]
fn caret_excerpt_points_at_the_token() {
    let src = "nop\n        addd s1, s2, s3\n";
    let errs = assemble(src).unwrap_err();
    let text = crate::render_errors_with_source(src, &errs);
    assert_eq!(
        text,
        "error: unknown mnemonic `addd`\n\
         \x20 |\n\
         2 |         addd s1, s2, s3\n\
         \x20 |         ^^^^\n"
    );
}

#[test]
fn program_spans_cover_every_instruction() {
    let src = "start:  li s1, 10\n\
               \n\
               \taddi s2, s1, -3\n\
               halt\n";
    let prog = assemble(src).unwrap();
    assert_eq!(prog.spans.len(), prog.instrs.len());
    assert_eq!(prog.spans[0], crate::SrcSpan { line: 1, col: 9, len: 2 });
    assert_eq!(prog.spans[1], crate::SrcSpan { line: 3, col: 2, len: 4 });
    assert_eq!(prog.spans[2], crate::SrcSpan { line: 4, col: 1, len: 4 });
}
