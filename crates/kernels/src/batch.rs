//! Multithreaded batch query processing: the kernel that shows what the
//! hardware threads are *for*. A block of equality queries is answered
//! against a table of keys (one record per PE); each query is a
//! broadcast-compare plus a responder count whose result feeds a store —
//! a reduction hazard per query. One thread stalls b+r cycles per query;
//! a fleet of threads (each owning a slice of the query block) keeps the
//! pipeline full.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::Word;

use crate::harness::{pad_to, run_kernel, to_words};

/// Queries live at `smem[QUERY_BASE..]`, results at `smem[RESULT_BASE..]`.
const QUERY_BASE: i64 = 64;
/// Result block base.
const RESULT_BASE: i64 = 512;

/// Batch outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Per-query responder counts.
    pub counts: Vec<u32>,
    /// Run statistics.
    pub stats: Stats,
}

/// `workers` threads, each answering a contiguous slice of `q` queries.
/// With `workers == 0` the main thread answers everything itself (the
/// single-threaded baseline, same instruction mix).
pub(crate) fn program(q: usize, workers: usize) -> String {
    let per = q.checked_div(workers).unwrap_or(q);
    assert!(workers == 0 || q.is_multiple_of(workers), "query count divisible by workers");
    if workers == 0 {
        return format!(
            "
main:   plw    p2, 0(p0)       ; keys
        li     s7, 0           ; query index
        li     s6, {q}
qloop:  ceq    f1, s7, s6
        bt     f1, done
        lw     s2, {qb}(s7)
        pceqs  pf1, p2, s2
        rcount s8, pf1
        sw     s8, {rb}(s7)
        addi   s7, s7, 1
        j      qloop
done:   halt
            ",
            qb = QUERY_BASE,
            rb = RESULT_BASE,
        );
    }
    // Each worker has its own two-instruction entry stub carrying its
    // slice number. Thread ids cannot be used for work assignment: a fast
    // worker may exit while the main thread is still spawning, so a later
    // spawn can reuse its context id.
    let stubs: String =
        (0..workers).map(|k| format!("stub{k}: li s5, {k}\n        j  wbody\n")).collect();
    format!(
        "
main:   li   s1, stub0
        li   s2, 0
        li   s3, {workers}
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 16(s2)
        addi s1, s1, 2         ; next worker's entry stub
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 16(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
{stubs}wbody:  plw    p2, 0(p0)       ; keys (per-thread parallel registers)
        li     s7, {per}
        mul    s7, s7, s5      ; start = slice * per
        add    s6, s7, s0
        addi   s6, s6, {per}   ; end
qloop:  ceq    f1, s7, s6
        bt     f1, wdone
        lw     s2, {qb}(s7)
        pceqs  pf1, p2, s2
        rcount s8, pf1
        sw     s8, {rb}(s7)
        addi   s7, s7, 1
        j      qloop
wdone:  texit
        ",
        qb = QUERY_BASE,
        rb = RESULT_BASE,
    )
}

/// Answer `queries` against `keys` with `workers` hardware threads
/// (0 = run everything on the main thread).
pub fn run(
    cfg: MachineConfig,
    keys: &[i64],
    queries: &[i64],
    workers: usize,
) -> Result<BatchResult, RunError> {
    assert!(keys.len() <= cfg.num_pes);
    assert!((RESULT_BASE as usize) + queries.len() <= cfg.smem_words);
    assert!((QUERY_BASE as usize) + queries.len() <= RESULT_BASE as usize);
    assert!(workers == 0 || queries.len().is_multiple_of(workers));
    assert!(workers < cfg.threads, "main thread + workers must fit");
    let w = cfg.width;
    let pad_key = w.mask() as i64;
    assert!(queries.iter().all(|&q| q != pad_key));
    let padded = pad_to(keys.to_vec(), cfg.num_pes, pad_key);
    let (m, stats) = run_kernel(cfg, &program(queries.len(), workers), |mach| {
        mach.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            mach.smem_mut().write((QUERY_BASE as usize + i) as u32, Word::from_i64(q, w)).unwrap();
        }
    })?;
    let counts = (0..queries.len())
        .map(|i| m.smem().read((RESULT_BASE as usize + i) as u32).unwrap().to_u32())
        .collect();
    Ok(BatchResult { counts, stats })
}

/// Host reference.
pub fn reference(keys: &[i64], queries: &[i64]) -> Vec<u32> {
    queries.iter().map(|q| keys.iter().filter(|&&k| k == *q).count() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<i64> {
        (0..64).map(|i| (i * 13) % 16).collect()
    }

    #[test]
    fn single_threaded_counts() {
        let queries: Vec<i64> = (0..16).collect();
        let r = run(MachineConfig::new(64), &keys(), &queries, 0).unwrap();
        assert_eq!(r.counts, reference(&keys(), &queries));
    }

    #[test]
    fn multithreaded_counts_match() {
        let queries: Vec<i64> = (0..48).map(|i| i % 16).collect();
        for workers in [2usize, 4, 8, 12] {
            let r = run(MachineConfig::new(64), &keys(), &queries, workers).unwrap();
            assert_eq!(r.counts, reference(&keys(), &queries), "workers = {workers}");
        }
    }

    #[test]
    fn multithreading_speeds_up_the_batch() {
        let queries: Vec<i64> = (0..240).map(|i| i % 16).collect();
        let cfg = MachineConfig::new(256);
        let st = run(cfg, &keys(), &queries, 0).unwrap();
        let mt = run(cfg, &keys(), &queries, 12).unwrap();
        assert_eq!(st.counts, mt.counts);
        assert!(
            mt.stats.cycles * 2 < st.stats.cycles,
            "12 workers should at least halve the batch time: {} vs {}",
            mt.stats.cycles,
            st.stats.cycles
        );
    }
}
