//! Shared kernel-running scaffolding.

use asc_asm::{assemble, render_errors, Program};
use asc_core::{Machine, MachineConfig, RunError, Stats};
use asc_isa::{Width, Word};

use crate::MAX_CYCLES;

/// Assemble, panicking with rendered diagnostics on failure (kernel
/// sources are generated; a failure is a bug in the generator).
pub fn assemble_kernel(src: &str) -> Program {
    assemble(src).unwrap_or_else(|errs| {
        panic!("kernel failed to assemble:\n{}\nsource:\n{src}", render_errors(&errs))
    })
}

/// Build a machine, run `setup` to distribute data, execute, and return
/// the machine (for result extraction) with its statistics.
pub fn run_kernel(
    cfg: MachineConfig,
    src: &str,
    setup: impl FnOnce(&mut Machine),
) -> Result<(Machine, Stats), RunError> {
    let program = assemble_kernel(src);
    let mut m = Machine::with_program(cfg, &program)?;
    setup(&mut m);
    let stats = m.run(MAX_CYCLES)?;
    Ok((m, stats))
}

/// Convert host values into machine words at the machine's width,
/// panicking if a value does not fit (kernel inputs must be
/// representable).
pub fn to_words(values: &[i64], width: Width) -> Vec<Word> {
    values
        .iter()
        .map(|&v| {
            assert!(
                v >= width.smin() && v <= width.mask() as i64,
                "value {v} does not fit {width}"
            );
            Word::from_i64(v, width)
        })
        .collect()
}

/// Pad a value list to the PE count with a filler.
pub fn pad_to(mut values: Vec<i64>, n: usize, fill: i64) -> Vec<i64> {
    assert!(values.len() <= n, "more values ({}) than PEs ({n})", values.len());
    values.resize(n, fill);
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_words_checks_range() {
        let w = to_words(&[0, 255, -1], Width::W8);
        assert_eq!(w[1].to_u32(), 255);
        assert_eq!(w[2].to_u32(), 0xff);
    }

    #[test]
    #[should_panic]
    fn to_words_rejects_overflow() {
        to_words(&[300], Width::W8);
    }

    #[test]
    fn pad() {
        assert_eq!(pad_to(vec![1, 2], 4, 9), vec![1, 2, 9, 9]);
    }

    #[test]
    #[should_panic]
    fn pad_rejects_too_many() {
        pad_to(vec![1, 2, 3], 2, 0);
    }
}
