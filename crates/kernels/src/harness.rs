//! Shared kernel-running scaffolding.
//!
//! Set `MTASC_KERNEL_OBS=1` to attach the cycle-attribution profiler to
//! every kernel run and print a top-5 stall-reason summary (with the
//! hottest site of each) to stderr after each kernel — a quick way to see
//! where a kernel's issue slots go without modifying its code. Observed
//! runs are also recorded into the persistent run registry (honouring
//! `$MTASC_RUNS_DIR`), and the summary prints the registry run id.

use asc_asm::{assemble, render_errors, Program};
use asc_core::obs::{Profile, RunReport};
use asc_core::{Machine, MachineConfig, RunError, Stats};
use asc_isa::{Width, Word};
use asc_obs_store::{config_fingerprint, program_hash, RunHandle, RunMeta, RunStore};

use crate::MAX_CYCLES;

fn obs_enabled() -> bool {
    std::env::var("MTASC_KERNEL_OBS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `MTASC_NO_FUSE=1` disables the block-fusion engine for every kernel
/// run through this harness — the blunt-instrument form of
/// `mtasc run --no-fuse`, used by the differential tests and for timing
/// the instruction-major executor from the benches.
fn fusion_disabled() -> bool {
    std::env::var("MTASC_NO_FUSE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Render the top-5 stall reasons of a profiled run, largest first, each
/// with its hottest (thread, pc) site (empty string if the run never
/// stalled).
pub fn stall_summary(profile: &Profile) -> String {
    let cycles = profile.total_cycles();
    let mut out = String::new();
    for s in profile.top_stalls(5) {
        let pct = if cycles == 0 { 0.0 } else { 100.0 * s.cycles as f64 / cycles as f64 };
        let site = match s.hottest {
            Some(h) => format!("  hottest t{} pc {} ({} cycles)", h.thread, h.pc, h.cycles),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {:<26} {:>8} cycles ({pct:>5.1}%){site}\n",
            s.reason.label(),
            s.cycles
        ));
    }
    out
}

/// Assemble, panicking with rendered diagnostics on failure (kernel
/// sources are generated; a failure is a bug in the generator).
pub fn assemble_kernel(src: &str) -> Program {
    assemble(src).unwrap_or_else(|errs| {
        panic!("kernel failed to assemble:\n{}\nsource:\n{src}", render_errors(&errs))
    })
}

/// Build a machine, run `setup` to distribute data, execute, and return
/// the machine (for result extraction) with its statistics.
pub fn run_kernel(
    cfg: MachineConfig,
    src: &str,
    setup: impl FnOnce(&mut Machine),
) -> Result<(Machine, Stats), RunError> {
    let program = assemble_kernel(src);
    let cfg = if fusion_disabled() { cfg.without_fusion() } else { cfg };
    let mut m = Machine::with_program(cfg, &program)?;
    let mut rec = None;
    if obs_enabled() {
        m.attach_profiler();
        rec = begin_obs_record(src, &m);
    }
    setup(&mut m);
    let stats = match m.run(MAX_CYCLES) {
        Ok(stats) => stats,
        Err(e) => {
            if let Some(rec) = rec {
                let _ = rec.finish_fault(&e.to_string(), m.cycle(), m.stats().issued);
            }
            return Err(e);
        }
    };
    if let Some(profile) = m.profile() {
        eprintln!(
            "[kernel obs] {} cycles, {} issued, IPC {:.3}; {} attributed + {} drain (conservation: {})",
            stats.cycles,
            stats.issued,
            stats.ipc(),
            profile.attributed_cycles() - profile.drain_cycles(),
            profile.drain_cycles(),
            if profile.attributed_cycles() == stats.cycles { "exact" } else { "VIOLATED" }
        );
        let summary = stall_summary(profile);
        if summary.is_empty() {
            eprintln!("[kernel obs] no stall cycles");
        } else {
            eprintln!("[kernel obs] top stall reasons:\n{}", summary.trim_end_matches('\n'));
        }
    }
    if let Some(mut rec) = rec {
        if let Some(profile) = m.profile() {
            let path = rec.artifact_path("profile.json");
            if std::fs::write(&path, profile.to_json().to_pretty()).is_ok() {
                rec.add_artifact("profile.json");
            }
        }
        if let Ok(meta) = rec.finish_ok(stats.cycles, stats.issued) {
            eprintln!("[kernel obs] recorded run {}", meta.id);
        }
    }
    Ok((m, stats))
}

/// Record an observed kernel run into the registry (at the default,
/// `$MTASC_RUNS_DIR`-honouring root). Failures are swallowed:
/// observability must never break a kernel test run.
fn begin_obs_record(src: &str, m: &Machine) -> Option<RunHandle> {
    begin_obs_record_at(RunStore::default_root(), src, m)
}

fn begin_obs_record_at(root: std::path::PathBuf, src: &str, m: &Machine) -> Option<RunHandle> {
    let store = RunStore::open(root).ok()?;
    let machine = RunReport::from_machine(m).machine;
    let meta = RunMeta::begin(
        "kernel",
        "<kernel>",
        program_hash(src),
        config_fingerprint(&machine),
        machine.pes,
    );
    store.begin(meta).ok()
}

/// Every program this crate can emit, as `(name, source)` pairs at
/// representative sizes — the lint corpus behind `mtasc lint --kernels`
/// and the CI gate that keeps the kernel suite clean under
/// `--deny warnings`. Parameterized generators are instantiated at the
/// sizes the tests and experiments use on the 16-PE prototype.
pub fn corpus() -> Vec<(String, String)> {
    vec![
        ("search".into(), crate::search::program()),
        ("select(n=16)".into(), crate::select::program(16)),
        ("iterate".into(), crate::iterate::program()),
        ("mst(n=8)".into(), crate::mst::program(8)),
        ("string_match(n=16,m=4)".into(), crate::string_match::program(16, 4)),
        ("string_match_shift(n=16,m=4)".into(), crate::string_match::shift_program(16, 4)),
        ("image_stats(per_pe=4,valid=16)".into(), crate::image::stats_program(4, 16)),
        ("sort(n=16)".into(), crate::sort::program(16)),
        ("hull(n=16)".into(), crate::hull::program(16)),
        ("tracker".into(), crate::tracker::program()),
        ("batch(q=4,workers=4)".into(), crate::batch::program(4, 4)),
        ("prefix(n=16)".into(), crate::prefix::program(16)),
        ("stencil(n=16,passes=2)".into(), crate::stencil::program(16, 2)),
        ("micro/reduction_chain(8)".into(), crate::micro::reduction_chain(8)),
        ("micro/mt_reduction_fleet(4,8)".into(), crate::micro::mt_reduction_fleet(4, 8)),
        ("micro/unrolled_chain(8,4)".into(), crate::micro::unrolled_chain(8, 4)),
        ("micro/unrolled_fleet(4,8,4)".into(), crate::micro::unrolled_fleet(4, 8, 4)),
        ("micro/mixed_fleet(4,8)".into(), crate::micro::mixed_fleet(4, 8)),
        ("micro/independent_reductions(8)".into(), crate::micro::independent_reductions(8)),
        ("micro/mixed_workload(8)".into(), crate::micro::mixed_workload(8)),
    ]
}

/// Convert host values into machine words at the machine's width,
/// panicking if a value does not fit (kernel inputs must be
/// representable).
pub fn to_words(values: &[i64], width: Width) -> Vec<Word> {
    values
        .iter()
        .map(|&v| {
            assert!(
                v >= width.smin() && v <= width.mask() as i64,
                "value {v} does not fit {width}"
            );
            Word::from_i64(v, width)
        })
        .collect()
}

/// Pad a value list to the PE count with a filler.
pub fn pad_to(mut values: Vec<i64>, n: usize, fill: i64) -> Vec<i64> {
    assert!(values.len() <= n, "more values ({}) than PEs ({n})", values.len());
    values.resize(n, fill);
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_words_checks_range() {
        let w = to_words(&[0, 255, -1], Width::W8);
        assert_eq!(w[1].to_u32(), 255);
        assert_eq!(w[2].to_u32(), 0xff);
    }

    #[test]
    #[should_panic]
    fn to_words_rejects_overflow() {
        to_words(&[300], Width::W8);
    }

    #[test]
    fn pad() {
        assert_eq!(pad_to(vec![1, 2], 4, 9), vec![1, 2, 9, 9]);
    }

    #[test]
    fn stall_summary_comes_from_the_profiler() {
        // a reduction chain stalls on every consumer; the profiled summary
        // must rank reduction hazards first and point at a hot site
        let program = assemble_kernel(&crate::micro::reduction_chain(8));
        let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
        m.attach_profiler();
        m.run(MAX_CYCLES).unwrap();
        let profile = m.profile().expect("profiler attached");
        assert_eq!(profile.attributed_cycles(), m.stats().cycles, "conservation");
        let text = stall_summary(profile);
        assert!(!text.is_empty());
        assert!(text.lines().count() <= 5, "top five only:\n{text}");
        assert!(text.contains("hazard"), "{text}");
        assert!(text.contains("hottest t0 pc "), "hot site attributed:\n{text}");
        // an empty profile renders nothing
        assert!(stall_summary(&Profile::new(1, 0)).is_empty());
    }

    #[test]
    #[should_panic]
    fn pad_rejects_too_many() {
        pad_to(vec![1, 2, 3], 2, 0);
    }

    #[test]
    fn observed_kernel_runs_record_into_the_registry() {
        // exercises the obs recording path directly — toggling the
        // MTASC_KERNEL_OBS / MTASC_RUNS_DIR env here would race with
        // parallel tests, so the registry root is passed explicitly
        let root = std::env::temp_dir().join(format!("mtasc_kernel_obs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src = crate::micro::reduction_chain(4);
        let program = assemble_kernel(&src);
        let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
        m.attach_profiler();
        let mut rec = begin_obs_record_at(root.clone(), &src, &m).expect("registry opens");
        let stats = m.run(MAX_CYCLES).unwrap();
        let profile = m.profile().unwrap();
        std::fs::write(rec.artifact_path("profile.json"), profile.to_json().to_pretty()).unwrap();
        rec.add_artifact("profile.json");
        let meta = rec.finish_ok(stats.cycles, stats.issued).unwrap();
        assert!(asc_obs_store::is_ulid(&meta.id));
        assert_eq!(meta.kind, "kernel");
        assert!(meta.config.contains("pes=16"), "{}", meta.config);
        let store = RunStore::open(&root).unwrap();
        let (listed, skipped) = store.list().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].cycles, stats.cycles);
        assert_eq!(listed[0].artifacts, vec!["profile.json".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
