//! Inclusive prefix sum (scan) via the PE interconnection network: the
//! Hillis–Steele log-step pattern, with shift distances doubling each
//! step. An extension kernel — the base prototype has no inter-PE
//! network; the lineage's embedded processor \[7\] added one, exposed here
//! as `pshift`.

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{pad_to, run_kernel, to_words};

/// Scan outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixResult {
    /// Inclusive prefix sums, one per input element.
    pub sums: Vec<i64>,
    /// Run statistics.
    pub stats: Stats,
}

/// Unrolled Hillis–Steele: ⌈log₂ n⌉ shift+add steps. The `pshift`
/// immediate is 8 bits, so distances above 127 are realized as a chain of
/// shorter shifts.
pub(crate) fn program(n: usize) -> String {
    let mut body = String::new();
    let mut d = 1usize;
    while d < n {
        let mut remaining = d;
        let mut src = "p2";
        while remaining > 0 {
            let step = remaining.min(127);
            body.push_str(&format!("        pshift p3, {src}, {step}\n"));
            src = "p3";
            remaining -= step;
        }
        body.push_str("        padd   p2, p2, p3\n");
        d *= 2;
    }
    format!(
        "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6
        plw    p2, 0(p0) ?pf1
{body}        halt
        ",
        last = n as i64 - 1,
    )
}

/// Compute the inclusive prefix sum of `values` (one per PE; sums must fit
/// the signed width).
pub fn run(cfg: MachineConfig, values: &[i64]) -> Result<PrefixResult, RunError> {
    let n = values.len();
    assert!(n >= 1 && n <= cfg.num_pes);
    let w = cfg.width;
    let total: i64 = values.iter().map(|v| v.abs()).sum();
    assert!(total <= w.smax(), "prefix sums must fit the signed width");
    let padded = pad_to(values.to_vec(), cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(n), |mach| {
        mach.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
    })?;
    let sums = (0..n).map(|i| m.array().gpr(i, 0, 2).to_i64(w)).collect();
    Ok(PrefixResult { sums, stats })
}

/// Host reference.
pub fn reference(values: &[i64]) -> Vec<i64> {
    values
        .iter()
        .scan(0i64, |acc, &v| {
            *acc += v;
            Some(*acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_scan() {
        let r = run(MachineConfig::new(8), &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(r.sums, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn single_element_and_negatives() {
        assert_eq!(run(MachineConfig::new(4), &[7]).unwrap().sums, vec![7]);
        assert_eq!(run(MachineConfig::new(4), &[5, -3, 2, -4]).unwrap().sums, vec![5, 2, 4, 0]);
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..15 {
            let n = rng.random_range(1..=100);
            let values: Vec<i64> = (0..n).map(|_| rng.random_range(-50..50)).collect();
            let got = run(MachineConfig::new(128), &values).unwrap();
            assert_eq!(got.sums, reference(&values));
        }
    }

    #[test]
    fn log_steps() {
        // ⌈log₂ n⌉ shift+add pairs: instruction count grows only
        // logarithmically with n
        let a = run(MachineConfig::new(256), &[1; 16]).unwrap();
        let b = run(MachineConfig::new(256), &vec![1; 256]).unwrap();
        assert!(b.stats.issued <= a.stats.issued + 10);
    }
}
