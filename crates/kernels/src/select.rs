//! Max/min selection with argmax/argmin: the associative "find the
//! extremum and who holds it" idiom (RMAX, then a search for the maximum,
//! then the multiple response resolver).

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{pad_to, run_kernel, to_words};

/// Selection outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectResult {
    /// The maximum value.
    pub max: i64,
    /// PE index of the first PE holding the maximum.
    pub argmax: u32,
    /// The minimum value.
    pub min: i64,
    /// PE index of the first PE holding the minimum.
    pub argmin: u32,
    /// Run statistics.
    pub stats: Stats,
}

pub(crate) fn program(n_valid: usize) -> String {
    format!(
        "
        li     s7, {max_idx}
        pidx   p1
        pcles  pf3, p1, s7     ; valid data mask
        plw    p2, 0(p0) ?pf3
        rmax   s1, p2 ?pf3
        pfclr  pf1
        pceqs  pf1, p2, s1 ?pf3
        pfirst pf2, pf1
        rget   s2, p1, pf2
        rmin   s3, p2 ?pf3
        pfclr  pf1
        pceqs  pf1, p2, s3 ?pf3
        pfirst pf2, pf1
        rget   s4, p1, pf2
        halt
        ",
        max_idx = n_valid - 1
    )
}

/// Find max/min and their PE indices over `values` (at most one per PE).
pub fn run(cfg: MachineConfig, values: &[i64]) -> Result<SelectResult, RunError> {
    assert!(!values.is_empty());
    let w = cfg.width;
    let n_valid = values.len();
    let padded = pad_to(values.to_vec(), cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(n_valid), |m| {
        m.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
    })?;
    Ok(SelectResult {
        max: m.sreg(0, 1).to_i64(w),
        argmax: m.sreg(0, 2).to_u32(),
        min: m.sreg(0, 3).to_i64(w),
        argmin: m.sreg(0, 4).to_u32(),
        stats,
    })
}

/// Host reference: (max, argmax, min, argmin), first index on ties.
pub fn reference(values: &[i64]) -> (i64, u32, i64, u32) {
    let mut max = values[0];
    let mut argmax = 0u32;
    let mut min = values[0];
    let mut argmin = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if v > max {
            max = v;
            argmax = i as u32;
        }
        if v < min {
            min = v;
            argmin = i as u32;
        }
    }
    (max, argmax, min, argmin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_selection() {
        let values = vec![3, -7, 100, 42, -7, 100];
        let r = run(MachineConfig::new(8), &values).unwrap();
        assert_eq!(r.max, 100);
        assert_eq!(r.argmax, 2, "first of the tied maxima");
        assert_eq!(r.min, -7);
        assert_eq!(r.argmin, 1);
    }

    #[test]
    fn negative_values_and_partial_array() {
        // padding must not win even though it is 0 > all values
        let values = vec![-5, -3, -9];
        let r = run(MachineConfig::new(16), &values).unwrap();
        assert_eq!(r.max, -3);
        assert_eq!(r.argmax, 1);
        assert_eq!(r.min, -9);
    }

    #[test]
    fn single_element() {
        let r = run(MachineConfig::new(4), &[7]).unwrap();
        assert_eq!((r.max, r.argmax, r.min, r.argmin), (7, 0, 7, 0));
    }

    #[test]
    fn matches_reference_on_random_data() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..20 {
            let n = rng.random_range(1..=100);
            let values: Vec<i64> = (0..n).map(|_| rng.random_range(-1000..1000)).collect();
            let got = run(MachineConfig::new(128), &values).unwrap();
            let (max, argmax, min, argmin) = reference(&values);
            assert_eq!((got.max, got.argmax, got.min, got.argmin), (max, argmax, min, argmin));
        }
    }
}
