#![warn(missing_docs)]

//! # asc-kernels — associative algorithms for the MTASC processor
//!
//! The paper's future work includes "implementing software for the
//! architecture in order to better show the performance advantages of
//! multithreading and to explore possible application areas". This crate
//! is that software: classic associative-computing (ASC) kernels written
//! in MTASC assembly, with host-side data distribution, result extraction,
//! and reference implementations for validation.
//!
//! | kernel | associative idiom exercised |
//! |--------|------------------------------|
//! | [`search`] | broadcast-compare, responder count, pick-one |
//! | [`select`] | global max/min with argmax (RMAX + search + MRR) |
//! | [`iterate`] | sequential responder iteration (PFIRST loop) |
//! | [`mst`] | Prim's MST, the canonical ASC demonstration \[4\] |
//! | [`string_match`] | sliding-window search with flag accumulation |
//! | [`image`] | sum/count reductions (the sum unit's motivating use) |
//! | [`sort`] | associative selection sort (extract-min + MRR retire) |
//! | [`hull`] | convex hull by associative QuickHull (stack on the CU) |
//! | [`tracker`] | air-traffic track association — the STARAN-era flagship |
//! | [`batch`] | multithreaded batch queries — the hardware threads' showcase |
//! | [`prefix`] | log-step scan over the PE interconnect (`pshift` extension) |
//! | [`stencil`] | 3-point stencil over the interconnect |
//! | [`micro`] | parameterized stall/throughput stressors for the benches |
//!
//! Every kernel returns both its computed result and the run's [`Stats`],
//! so the experiments can report cycles alongside correctness.

pub mod batch;
pub mod harness;
pub mod hull;
pub mod image;
pub mod iterate;
pub mod micro;
pub mod mst;
pub mod prefix;
pub mod search;
pub mod select;
pub mod sort;
pub mod stencil;
pub mod string_match;
pub mod tracker;

pub use asc_core::{MachineConfig, RunError, Stats};

/// Default cycle budget for kernel runs.
pub const MAX_CYCLES: u64 = 50_000_000;
