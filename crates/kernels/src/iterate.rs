//! Sequential responder iteration: the ASC "step through the responders"
//! mode of the multiple response resolver. Each iteration picks the first
//! remaining responder (PFIRST), reads its value (RGET), processes it in
//! the control unit, and removes it from the responder set (flag AND-NOT).
//!
//! The kernel computes an order-sensitive fold (a polynomial-style hash)
//! over the values of all records matching a key — something a single
//! reduction cannot do, hence the iteration.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::{Width, Word};

use crate::harness::{pad_to, run_kernel, to_words};

/// Iteration outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterateResult {
    /// Number of responders processed.
    pub processed: u32,
    /// Order-sensitive fold: `h = h*3 + value` over responders in PE
    /// order.
    pub fold: u32,
    /// Run statistics.
    pub stats: Stats,
}

pub(crate) fn program() -> String {
    "
        lw     s1, 0(s0)       ; key
        plw    p2, 0(p0)       ; keys
        plw    p3, 1(p0)       ; values
        pceqs  pf1, p2, s1     ; responders
        li     s3, 0           ; fold h
        li     s4, 0           ; processed count
loop:   rany   f1, pf1
        bf     f1, done
        pfirst pf2, pf1        ; first remaining responder
        rget   s2, p3, pf2     ; its value
        muli   s3, s3, 3
        add    s3, s3, s2      ; h = h*3 + value
        addi   s4, s4, 1
        pfandn pf1, pf1, pf2   ; remove it
        j      loop
done:   halt
    "
    .to_string()
}

/// Process every record whose key matches, one at a time, in PE order.
pub fn run(
    cfg: MachineConfig,
    records: &[(i64, i64)],
    query: i64,
) -> Result<IterateResult, RunError> {
    let w = cfg.width;
    let pad_key = w.mask() as i64;
    assert!(query != pad_key);
    let keys = pad_to(records.iter().map(|r| r.0).collect(), cfg.num_pes, pad_key);
    let values = pad_to(records.iter().map(|r| r.1).collect(), cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(), |m| {
        m.smem_mut().write(0, Word::from_i64(query, w)).unwrap();
        m.array_mut().scatter_column(0, &to_words(&keys, w)).unwrap();
        m.array_mut().scatter_column(1, &to_words(&values, w)).unwrap();
    })?;
    Ok(IterateResult { processed: m.sreg(0, 4).to_u32(), fold: m.sreg(0, 3).to_u32(), stats })
}

/// Host reference fold at the machine width.
pub fn reference(records: &[(i64, i64)], query: i64, width: Width) -> (u32, u32) {
    let mut h: u32 = 0;
    let mut n = 0;
    for &(k, v) in records {
        if k == query {
            h = h.wrapping_mul(3).wrapping_add(v as u32) & width.mask();
            n += 1;
        }
    }
    (n, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn iterates_in_pe_order() {
        let records = vec![(1, 10), (2, 99), (1, 20), (1, 30)];
        let r = run(MachineConfig::new(8), &records, 1).unwrap();
        assert_eq!(r.processed, 3);
        // ((10*3 + 20)*3 + 30) = 180; with h starting 0: ((0*3+10)*3+20)*3+30
        assert_eq!(r.fold, 180);
    }

    #[test]
    fn zero_responders() {
        let r = run(MachineConfig::new(4), &[(1, 10)], 9).unwrap();
        assert_eq!(r.processed, 0);
        assert_eq!(r.fold, 0);
    }

    #[test]
    fn matches_reference_on_random_data() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..15 {
            let n = rng.random_range(1..=48);
            let records: Vec<(i64, i64)> =
                (0..n).map(|_| (rng.random_range(0..6), rng.random_range(0..50))).collect();
            let cfg = MachineConfig::new(64);
            let got = run(cfg, &records, 3).unwrap();
            let (count, fold) = reference(&records, 3, cfg.width);
            assert_eq!(got.processed, count);
            assert_eq!(got.fold, fold);
        }
    }

    #[test]
    fn cost_scales_with_responders_not_records() {
        let few: Vec<(i64, i64)> = (0..100).map(|i| (i64::from(i == 7), i)).collect();
        let many: Vec<(i64, i64)> = (0..100).map(|i| (1, i)).collect();
        let a = run(MachineConfig::new(128), &few, 1).unwrap();
        let b = run(MachineConfig::new(128), &many, 1).unwrap();
        assert!(b.stats.issued > a.stats.issued * 10);
    }
}
