//! Associative database search: one record per PE (key in `lmem[0]`,
//! value in `lmem[1]`), the query key broadcast from the control unit.
//! Returns the number of matching records and the value of the first
//! match — the introductory example of the ASC paradigm: search is a
//! constant-time parallel compare, not an index walk.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::Word;

use crate::harness::{pad_to, run_kernel, to_words};

/// Search outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Number of records whose key matched.
    pub matches: u32,
    /// Value of the first matching record (`None` if no match).
    pub first_value: Option<u32>,
    /// PE index of the first match.
    pub first_index: Option<u32>,
    /// Run statistics.
    pub stats: Stats,
}

/// The kernel program: key arrives in scalar memory slot 0.
pub(crate) fn program() -> String {
    "
        lw     s1, 0(s0)       ; query key
        plw    p2, 0(p0)       ; keys
        plw    p3, 1(p0)       ; values
        pidx   p1
        pceqs  pf1, p2, s1     ; associative search
        rcount s2, pf1         ; responder count
        pfirst pf2, pf1        ; resolve
        rget   s3, p3, pf2     ; first value
        rget   s4, p1, pf2     ; first index
        halt
    "
    .to_string()
}

/// Run the search over `(key, value)` records. Records are padded with a
/// key that differs from `query` (all-ones) so padding never matches.
pub fn run(
    cfg: MachineConfig,
    records: &[(i64, i64)],
    query: i64,
) -> Result<SearchResult, RunError> {
    let n = cfg.num_pes;
    let w = cfg.width;
    let pad_key = w.mask() as i64;
    assert!(query != pad_key, "query collides with the padding sentinel");
    let keys = pad_to(records.iter().map(|r| r.0).collect(), n, pad_key);
    let values = pad_to(records.iter().map(|r| r.1).collect(), n, 0);

    let (m, stats) = run_kernel(cfg, &program(), |m| {
        m.smem_mut().write(0, Word::from_i64(query, w)).unwrap();
        m.array_mut().scatter_column(0, &to_words(&keys, w)).unwrap();
        m.array_mut().scatter_column(1, &to_words(&values, w)).unwrap();
    })?;

    let matches = m.sreg(0, 2).to_u32();
    let (first_value, first_index) = if matches > 0 {
        (Some(m.sreg(0, 3).to_u32()), Some(m.sreg(0, 4).to_u32()))
    } else {
        (None, None)
    };
    Ok(SearchResult { matches, first_value, first_index, stats })
}

/// Host reference.
pub fn reference(records: &[(i64, i64)], query: i64) -> (u32, Option<u32>, Option<u32>) {
    let matches = records.iter().filter(|r| r.0 == query).count() as u32;
    let first = records.iter().position(|r| r.0 == query);
    (matches, first.map(|i| records[i].1 as u32), first.map(|i| i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_all_matches() {
        let records = vec![(5, 100), (7, 200), (5, 300), (9, 400)];
        let r = run(MachineConfig::new(16), &records, 5).unwrap();
        assert_eq!(r.matches, 2);
        assert_eq!(r.first_value, Some(100));
        assert_eq!(r.first_index, Some(0));
    }

    #[test]
    fn no_match() {
        let records = vec![(1, 10), (2, 20)];
        let r = run(MachineConfig::new(8), &records, 42).unwrap();
        assert_eq!(r.matches, 0);
        assert_eq!(r.first_value, None);
    }

    #[test]
    fn matches_reference_on_random_data() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.random_range(1..=64);
            let records: Vec<(i64, i64)> =
                (0..n).map(|_| (rng.random_range(0..16), rng.random_range(0..1000))).collect();
            let query = rng.random_range(0..16);
            let got = run(MachineConfig::new(64), &records, query).unwrap();
            let (matches, first_value, first_index) = reference(&records, query);
            assert_eq!(got.matches, matches);
            assert_eq!(got.first_value, first_value);
            assert_eq!(got.first_index, first_index);
        }
    }

    #[test]
    fn search_cost_is_independent_of_record_count() {
        // the associative claim: O(1) parallel search regardless of n
        let recs_small: Vec<(i64, i64)> = (0..8).map(|i| (i, i)).collect();
        let recs_large: Vec<(i64, i64)> = (0..512).map(|i| (i % 100, i)).collect();
        let a = run(MachineConfig::new(512), &recs_small, 3).unwrap();
        let b = run(MachineConfig::new(512), &recs_large, 3).unwrap();
        assert_eq!(a.stats.issued, b.stats.issued, "same instruction count");
    }
}
