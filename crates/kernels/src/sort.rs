//! Associative selection sort: repeatedly extract the minimum with a
//! masked RMIN, emit it, and retire the responder through the multiple
//! response resolver — n associative steps to sort n values, the textbook
//! ASC sorting procedure (constant work per step regardless of n).

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{pad_to, run_kernel, to_words};

/// Where the sorted output lands in scalar memory.
const OUT_BASE: i64 = 32;

/// Sort outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortResult {
    /// The values in ascending order.
    pub sorted: Vec<i64>,
    /// Run statistics.
    pub stats: Stats,
}

pub(crate) fn program(n: usize) -> String {
    format!(
        "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6     ; remaining set
        plw    p2, 0(p0) ?pf1
        li     s3, 0           ; output index
        li     s4, {n}
step:   ceq    f1, s3, s4
        bt     f1, done
        rmin   s1, p2 ?pf1     ; smallest remaining
        sw     s1, {out}(s3)
        pfclr  pf2
        pceqs  pf2, p2, s1 ?pf1
        pfirst pf3, pf2        ; retire exactly one holder
        pfandn pf1, pf1, pf3
        addi   s3, s3, 1
        j      step
done:   halt
        ",
        last = n as i64 - 1,
        out = OUT_BASE,
    )
}

/// Sort `values` ascending (one per PE; duplicates allowed).
pub fn run(cfg: MachineConfig, values: &[i64]) -> Result<SortResult, RunError> {
    let n = values.len();
    assert!(n >= 1 && n <= cfg.num_pes);
    assert!((OUT_BASE as usize) + n <= cfg.smem_words, "output must fit scalar memory");
    let w = cfg.width;
    let padded = pad_to(values.to_vec(), cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(n), |mach| {
        mach.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
    })?;
    let sorted =
        (0..n).map(|i| m.smem().read((OUT_BASE as usize + i) as u32).unwrap().to_i64(w)).collect();
    Ok(SortResult { sorted, stats })
}

/// Host reference.
pub fn reference(values: &[i64]) -> Vec<i64> {
    let mut v = values.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_with_duplicates_and_negatives() {
        let values = vec![5, -3, 8, -3, 0, 8, 1];
        let r = run(MachineConfig::new(8), &values).unwrap();
        assert_eq!(r.sorted, vec![-3, -3, 0, 1, 5, 8, 8]);
    }

    #[test]
    fn single_value() {
        assert_eq!(run(MachineConfig::new(4), &[9]).unwrap().sorted, vec![9]);
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = rng.random_range(1..=64);
            let values: Vec<i64> = (0..n).map(|_| rng.random_range(-500..500)).collect();
            let got = run(MachineConfig::new(64), &values).unwrap();
            assert_eq!(got.sorted, reference(&values));
        }
    }

    #[test]
    fn linear_associative_steps() {
        // instructions per extracted element are constant
        let a = run(MachineConfig::new(128), &(0..16).rev().collect::<Vec<_>>()).unwrap();
        let b = run(MachineConfig::new(128), &(0..64).rev().collect::<Vec<_>>()).unwrap();
        let per_a = a.stats.issued as f64 / 16.0;
        let per_b = b.stats.issued as f64 / 64.0;
        assert!((per_a - per_b).abs() < 2.0, "{per_a} vs {per_b}");
    }
}
