//! Parameterized microkernels for the experiments: reduction-dependency
//! chains (the stall worst case), multithreaded worker fleets, and mixed
//! instruction streams. These generate assembly source; the benches and
//! experiment tables run them across machine configurations.

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::run_kernel;
use crate::MAX_CYCLES;

/// A single thread executing `iters` dependent
/// reduce → broadcast-consume pairs: every `padds` waits on the previous
/// `rsum` (a broadcast-reduction hazard), so a single-threaded pipelined
/// machine stalls b+r cycles per iteration.
pub fn reduction_chain(iters: u32) -> String {
    format!(
        "
        li    s6, {iters}
        li    s7, 0
        pidx  p1
wloop:  padds p2, p1, s7    ; waits on the previous rsum
        rsum  s7, p2
        addi  s6, s6, -1
        ceqi  f1, s6, 0
        bf    f1, wloop
        halt
        "
    )
}

/// `workers` hardware threads each running a `reduction_chain(iters)`
/// body; the main thread spawns them, joins them, and halts. Total work
/// equals `reduction_chain(workers * iters)`.
pub fn mt_reduction_fleet(workers: u32, iters: u32) -> String {
    assert!(workers >= 1);
    format!(
        "
main:   li   s1, worker
        li   s2, 0
        li   s3, {workers}
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 32(s2)
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 32(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
worker: li   s6, {iters}
        pidx p1
wloop:  padds p2, p1, s7
        rsum s7, p2
        addi s6, s6, -1
        ceqi f1, s6, 0
        bf   f1, wloop
        texit
        "
    )
}

/// Body text of `unroll` dependent reduce/consume pairs (used by the
/// unrolled chain generators: fewer loop-control instructions per hazard,
/// so deeper machines need more threads to reach full issue rate).
fn unrolled_pairs(unroll: u32) -> String {
    let mut body = String::new();
    for _ in 0..unroll {
        body.push_str("        padds p2, p1, s7\n        rsum  s7, p2\n");
    }
    body
}

/// Single-threaded unrolled reduction chain: `iters` iterations of
/// `unroll` dependent pairs.
pub fn unrolled_chain(iters: u32, unroll: u32) -> String {
    format!(
        "
        li    s6, {iters}
        li    s7, 0
        pidx  p1
wloop:
{body}        addi  s6, s6, -1
        ceqi  f1, s6, 0
        bf    f1, wloop
        halt
        ",
        body = unrolled_pairs(unroll),
    )
}

/// Multithreaded unrolled fleet: `workers` threads each running
/// `unrolled_chain(iters, unroll)` bodies.
pub fn unrolled_fleet(workers: u32, iters: u32, unroll: u32) -> String {
    assert!(workers >= 1);
    format!(
        "
main:   li   s1, worker
        li   s2, 0
        li   s3, {workers}
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 32(s2)
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 32(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
worker: li   s6, {iters}
        pidx p1
wloop:
{body}        addi s6, s6, -1
        ceqi f1, s6, 0
        bf   f1, wloop
        texit
        ",
        body = unrolled_pairs(unroll),
    )
}

/// The mixed workload body wrapped in a spawn/join fleet.
pub fn mixed_fleet(workers: u32, iters: u32) -> String {
    assert!(workers >= 1);
    format!(
        "
main:   li   s1, worker
        li   s2, 0
        li   s3, {workers}
spawnl: ceq  f1, s2, s3
        bt   f1, joins
        tspawn s4, s1
        sw   s4, 32(s2)
        addi s2, s2, 1
        j    spawnl
joins:  li   s2, 0
joinl:  ceq  f1, s2, s3
        bt   f1, done
        lw   s4, 32(s2)
        tjoin s4
        addi s2, s2, 1
        j    joinl
done:   halt
worker: li   s6, {iters}
        pidx p1
        pli  p2, 1
wloop:  paddi p2, p2, 3
        pxor  p3, p2, p1
        pclti pf1, p3, 40
        rcount s2, pf1
        add   s5, s5, s2
        rmax  s3, p3
        padds p4, p1, s3
        addi  s6, s6, -1
        ceqi  f1, s6, 0
        bf    f1, wloop
        texit
        "
    )
}

/// A stream of `iters` *independent* reductions — exercises the network's
/// one-per-cycle initiation rate rather than its latency.
pub fn independent_reductions(iters: u32) -> String {
    format!(
        "
        li    s6, {iters}
        pidx  p1
wloop:  rsum  s1, p1
        rmax  s2, p1
        rmin  s3, p1
        ror   s4, p1
        addi  s6, s6, -1
        ceqi  f1, s6, 0
        bf    f1, wloop
        halt
        "
    )
}

/// A scalar/parallel/reduction mix approximating "typical" associative
/// code (≈ the instruction-class ratio of the kernel suite): useful as a
/// neutral workload in throughput comparisons.
pub fn mixed_workload(iters: u32) -> String {
    format!(
        "
        li    s6, {iters}
        li    s5, 0
        pidx  p1
        pli   p2, 1
wloop:  paddi p2, p2, 3
        pxor  p3, p2, p1
        pclti pf1, p3, 40
        rcount s2, pf1
        add   s5, s5, s2
        rmax  s3, p3
        padds p4, p1, s3
        addi  s6, s6, -1
        ceqi  f1, s6, 0
        bf    f1, wloop
        halt
        "
    )
}

/// Run a generated microkernel on a configuration.
pub fn run_micro(cfg: MachineConfig, src: &str) -> Result<Stats, RunError> {
    let (_, stats) = run_kernel(cfg, src, |_| {})?;
    Ok(stats)
}

/// Convenience: cycles per chain iteration on a machine (used by the
/// stall-scaling experiment E5).
pub fn chain_cycles_per_iter(cfg: MachineConfig, iters: u32) -> Result<f64, RunError> {
    let stats = run_micro(cfg, &reduction_chain(iters))?;
    Ok(stats.cycles as f64 / iters as f64)
}

const _: () = assert!(MAX_CYCLES > 1_000_000);

#[cfg(test)]
mod tests {
    use super::*;
    use asc_core::StallReason;

    #[test]
    fn chain_cost_tracks_b_plus_r() {
        // per-iteration cost on one thread ≈ (b+r) stall + issue slots
        for p in [16usize, 256] {
            let cfg = MachineConfig::new(p).single_threaded();
            let t = cfg.timing();
            let per_iter = chain_cycles_per_iter(cfg, 200).unwrap();
            let expected = (t.b + t.r) as f64 + 5.0; // 5 instructions/iter
            assert!((per_iter - expected).abs() < 3.0, "p={p}: {per_iter} vs ~{expected}");
        }
    }

    #[test]
    fn fleet_beats_single_thread() {
        let st =
            run_micro(MachineConfig::new(16).single_threaded(), &reduction_chain(7 * 30)).unwrap();
        let mt = run_micro(MachineConfig::new(16), &mt_reduction_fleet(7, 30)).unwrap();
        assert!(mt.cycles < st.cycles, "{} vs {}", mt.cycles, st.cycles);
    }

    #[test]
    fn independent_reductions_do_not_stall_on_hazards() {
        let stats =
            run_micro(MachineConfig::new(64).single_threaded(), &independent_reductions(50))
                .unwrap();
        assert_eq!(stats.stalls_for(StallReason::ReductionHazard), 0);
        assert_eq!(stats.stalls_for(StallReason::BroadcastReductionHazard), 0);
    }

    #[test]
    fn mixed_workload_runs() {
        let stats = run_micro(MachineConfig::new(16), &mixed_workload(20)).unwrap();
        assert!(stats.issued > 150);
    }
}
