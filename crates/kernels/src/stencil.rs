//! 1-D 3-point stencil (smoothing / box filter) over the PE
//! interconnection network: `y[i] = x[i-1] + x[i] + x[i+1]` with zero
//! boundaries — two single-hop shifts and two adds, independent of the
//! array length. The classic embedded/image workload of the lineage's
//! interconnect paper \[7\].

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{pad_to, run_kernel, to_words};

/// Stencil outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StencilResult {
    /// Output samples (same length as the input).
    pub output: Vec<i64>,
    /// Run statistics.
    pub stats: Stats,
}

pub(crate) fn program(n: usize, passes: u32) -> String {
    let mut body = String::new();
    for _ in 0..passes {
        body.push_str(
            "        pshift p3, p2, 1
        pshift p4, p2, -1
        padd   p2, p2, p3
        padd   p2, p2, p4
        pfnot  pf2, pf1        ; zero out the padding lanes again
        pli    p2, 0 ?pf2
",
        );
    }
    format!(
        "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6
        plw    p2, 0(p0)
{body}        halt
        ",
        last = n as i64 - 1,
    )
}

/// Apply `passes` rounds of the 3-point sum stencil to `samples` (one per
/// PE).
pub fn run(cfg: MachineConfig, samples: &[i64], passes: u32) -> Result<StencilResult, RunError> {
    let n = samples.len();
    assert!(n >= 1 && n <= cfg.num_pes);
    let w = cfg.width;
    let padded = pad_to(samples.to_vec(), cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(n, passes), |mach| {
        mach.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
    })?;
    let output = (0..n).map(|i| m.array().gpr(i, 0, 2).to_i64(w)).collect();
    Ok(StencilResult { output, stats })
}

/// Host reference.
pub fn reference(samples: &[i64], passes: u32) -> Vec<i64> {
    let n = samples.len();
    let mut x = samples.to_vec();
    for _ in 0..passes {
        let mut y = vec![0i64; n];
        for i in 0..n {
            let left = if i > 0 { x[i - 1] } else { 0 };
            let right = if i + 1 < n { x[i + 1] } else { 0 };
            y[i] = left + x[i] + right;
        }
        x = y;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_pass() {
        let r = run(MachineConfig::new(8), &[1, 2, 3, 4], 1).unwrap();
        assert_eq!(r.output, vec![3, 6, 9, 7]);
    }

    #[test]
    fn impulse_response_spreads() {
        let mut input = vec![0i64; 9];
        input[4] = 1;
        let r = run(MachineConfig::new(16), &input, 2).unwrap();
        assert_eq!(r.output, reference(&input, 2));
        assert_eq!(r.output[4], 3, "center of the 2-pass kernel");
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..10 {
            let n = rng.random_range(1..=64);
            let passes = rng.random_range(1..=3);
            let samples: Vec<i64> = (0..n).map(|_| rng.random_range(-20..20)).collect();
            let got = run(MachineConfig::new(64), &samples, passes).unwrap();
            assert_eq!(got.output, reference(&samples, passes), "n={n} passes={passes}");
        }
    }

    #[test]
    fn cost_independent_of_length() {
        let a = run(MachineConfig::new(256), &[1; 8], 1).unwrap();
        let b = run(MachineConfig::new(256), &vec![1; 256], 1).unwrap();
        assert_eq!(a.stats.issued, b.stats.issued);
    }
}
