//! Image statistics — the workloads the paper cites for the sum unit
//! ("used in a number of image and video processing algorithms"): pixel
//! sum, extrema, threshold counting, and a histogram built from repeated
//! responder counts. Pixels are distributed across PEs, several per PE
//! when the image is larger than the array: each PE accumulates its strip
//! locally, then one global reduction finishes.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::Word;

use crate::harness::{pad_to, run_kernel, to_words};

/// Image statistics outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageStats {
    /// Sum of all pixels (saturating at the machine width, per the sum
    /// unit's semantics — keep images small enough if exactness matters).
    pub sum: i64,
    /// Minimum pixel (over the strip-padded layout; pads are zero).
    pub min: i64,
    /// Maximum pixel.
    pub max: i64,
    /// Pixels strictly above the threshold.
    pub above_threshold: u32,
    /// Run statistics.
    pub stats: Stats,
}

/// `pixels_per_pe` pixels at `lmem[0..]` in each of `valid_pes` PEs;
/// threshold in `smem\[0\]`; running threshold count in `smem\[1\]`.
pub(crate) fn stats_program(pixels_per_pe: usize, valid_pes: usize) -> String {
    format!(
        "
        li     s6, {last_pe}
        pidx   p1
        pcles  pf1, p1, s6     ; PEs holding data
        lw     s7, 0(s0)       ; threshold
        pli    p3, 0           ; strip address
        pli    p4, 0           ; strip sum
        plw    p5, 0(p3) ?pf1  ; strip max, seeded with first pixel
        pmov   p6, p5 ?pf1     ; strip min, same seed
        li     s3, 0
        li     s4, {k}
strip:  ceq    f1, s3, s4
        bt     f1, reduce
        plw    p2, 0(p3) ?pf1
        padd   p4, p4, p2 ?pf1 ; strip sum
        pmax   p5, p5, p2 ?pf1 ; strip max
        pmin   p6, p6, p2 ?pf1 ; strip min
        pfclr  pf4
        pcles  pf4, p2, s7 ?pf1 ; pixel <= threshold
        pfclr  pf5
        pfnot  pf5, pf4 ?pf1    ; pixel > threshold, active only
        rcount s8, pf5
        lw     s9, 1(s0)
        add    s9, s9, s8
        sw     s9, 1(s0)
        paddi  p3, p3, 1
        addi   s3, s3, 1
        j      strip
reduce: rsum   s1, p4 ?pf1
        rmin   s2, p6 ?pf1
        rmax   s5, p5 ?pf1
        lw     s9, 1(s0)
        halt
        ",
        last_pe = valid_pes as i64 - 1,
        k = pixels_per_pe,
    )
}

/// Compute statistics of `pixels` (non-negative values fitting the signed
/// width; threshold non-negative so strip padding never counts).
pub fn run(cfg: MachineConfig, pixels: &[i64], threshold: i64) -> Result<ImageStats, RunError> {
    assert!(!pixels.is_empty());
    assert!(threshold >= 0, "kernel requires a non-negative threshold");
    assert!(pixels.iter().all(|&v| v >= 0), "pixel values are non-negative");
    let w = cfg.width;
    let p = cfg.num_pes;
    let per_pe = pixels.len().div_ceil(p);
    assert!(per_pe <= cfg.lmem_words);
    let valid_pes = pixels.len().div_ceil(per_pe);
    let (m, stats) = run_kernel(cfg, &stats_program(per_pe, valid_pes), |mach| {
        mach.smem_mut().write(0, Word::from_i64(threshold, w)).unwrap();
        mach.smem_mut().write(1, Word::ZERO).unwrap();
        for j in 0..valid_pes {
            let strip: Vec<i64> =
                (0..per_pe).map(|i| pixels.get(j * per_pe + i).copied().unwrap_or(0)).collect();
            mach.array_mut().lmem_load_slice(j, 0, &to_words(&strip, w)).unwrap();
        }
    })?;
    Ok(ImageStats {
        sum: m.sreg(0, 1).to_i64(w),
        min: m.sreg(0, 2).to_i64(w),
        max: m.sreg(0, 5).to_i64(w),
        above_threshold: m.sreg(0, 9).to_u32(),
        stats,
    })
}

/// Host reference (padding zeros included, mirroring the strip layout).
pub fn reference(pixels: &[i64], threshold: i64, num_pes: usize) -> (i64, i64, i64, u32) {
    let per_pe = pixels.len().div_ceil(num_pes);
    let valid_pes = pixels.len().div_ceil(per_pe);
    let padded: Vec<i64> =
        (0..valid_pes * per_pe).map(|i| pixels.get(i).copied().unwrap_or(0)).collect();
    let sum = padded.iter().sum();
    let min = *padded.iter().min().unwrap();
    let max = *padded.iter().max().unwrap();
    let above = padded.iter().filter(|&&v| v > threshold).count() as u32;
    (sum, min, max, above)
}

/// Histogram via repeated responder counting: one broadcast-compare pair
/// and an exact responder count per bin.
pub mod histogram {
    use super::*;

    /// Histogram of `values` into `bins` equal-width buckets over
    /// `[0, range)`. One value per PE; results land in `smem[16..16+bins]`.
    pub fn run(
        cfg: MachineConfig,
        values: &[i64],
        bins: usize,
        range: i64,
    ) -> Result<(Vec<u32>, Stats), RunError> {
        assert!(bins >= 1 && range >= bins as i64);
        assert!(values.len() <= cfg.num_pes);
        assert!(values.iter().all(|&v| (0..range).contains(&v)));
        let w = cfg.width;
        let width_per_bin = range / bins as i64;
        let src = format!(
            "
        li     s6, {last}
        pidx   p1
        pcles  pf1, p1, s6     ; valid data
        plw    p2, 0(p0) ?pf1
        li     s2, 0           ; bin index
        li     s3, {bins}
        li     s4, 0           ; lower bound
        li     s5, {bw}
bin:    ceq    f1, s2, s3
        bt     f1, done
        add    s7, s4, s5      ; upper bound
        pfclr  pf2
        pclts  pf2, p2, s4 ?pf1 ; v < lo
        pfclr  pf5
        pfnot  pf5, pf2 ?pf1    ; v >= lo, active only
        pfclr  pf3
        pclts  pf3, p2, s7 ?pf1 ; v < hi
        pfand  pf4, pf5, pf3
        rcount s8, pf4
        sw     s8, 16(s2)       ; hist[bin]
        add    s4, s4, s5
        addi   s2, s2, 1
        j      bin
done:   halt
            ",
            last = values.len() as i64 - 1,
            bins = bins,
            bw = width_per_bin,
        );
        let vals = values.to_vec();
        let (m, stats) = run_kernel(cfg, &src, |mach| {
            let padded = pad_to(vals, cfg.num_pes, 0);
            mach.array_mut().scatter_column(0, &to_words(&padded, w)).unwrap();
        })?;
        let mut hist = Vec::with_capacity(bins);
        for b in 0..bins {
            hist.push(m.smem().read(16 + b as u32).unwrap().to_u32());
        }
        Ok((hist, stats))
    }

    /// Host reference. Values at or beyond `bins * (range/bins)` fall in no
    /// bin (mirrors the kernel's half-open windows).
    pub fn reference(values: &[i64], bins: usize, range: i64) -> Vec<u32> {
        let bw = range / bins as i64;
        let mut hist = vec![0u32; bins];
        for &v in values {
            if v < bins as i64 * bw {
                hist[(v / bw) as usize] += 1;
            }
        }
        hist
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        #[test]
        fn histogram_counts() {
            let values = vec![0, 1, 5, 9, 9, 3, 7, 2];
            let (hist, _) = run(MachineConfig::new(8), &values, 5, 10).unwrap();
            assert_eq!(hist, vec![2, 2, 1, 1, 2]);
            assert_eq!(reference(&values, 5, 10), vec![2, 2, 1, 1, 2]);
        }

        #[test]
        fn single_bin() {
            let values = vec![0, 1, 2];
            let (hist, _) = run(MachineConfig::new(4), &values, 1, 3).unwrap();
            assert_eq!(hist, vec![3]);
        }

        #[test]
        fn matches_reference_on_random_values() {
            let mut rng = StdRng::seed_from_u64(66);
            for _ in 0..10 {
                let n = rng.random_range(1..=32);
                let values: Vec<i64> = (0..n).map(|_| rng.random_range(0..64)).collect();
                let (hist, _) = run(MachineConfig::new(32), &values, 8, 64).unwrap();
                assert_eq!(hist, reference(&values, 8, 64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_pixel_per_pe() {
        let pixels: Vec<i64> = (1..=16).collect();
        let r = run(MachineConfig::new(16), &pixels, 10).unwrap();
        assert_eq!(r.sum, 136);
        assert_eq!(r.min, 1);
        assert_eq!(r.max, 16);
        assert_eq!(r.above_threshold, 6);
    }

    #[test]
    fn multiple_pixels_per_pe() {
        let pixels: Vec<i64> = (0..64).map(|i| i % 7).collect();
        let r = run(MachineConfig::new(16), &pixels, 3).unwrap();
        let (sum, min, max, above) = reference(&pixels, 3, 16);
        assert_eq!((r.sum, r.min, r.max, r.above_threshold), (sum, min, max, above));
    }

    #[test]
    fn matches_reference_on_random_images() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..10 {
            let n = rng.random_range(1..=200);
            let pixels: Vec<i64> = (0..n).map(|_| rng.random_range(0..100)).collect();
            let threshold = rng.random_range(0..100);
            let got = run(MachineConfig::new(32), &pixels, threshold).unwrap();
            let (sum, min, max, above) = reference(&pixels, threshold, 32);
            assert_eq!((got.sum, got.min, got.max, got.above_threshold), (sum, min, max, above));
        }
    }
}
