//! Prim's minimum spanning tree — the canonical associative-computing
//! demonstration (Potter et al. \[4\] present it as the ASC showcase): with
//! one vertex per PE and each vertex's adjacency row in its local memory,
//! every Prim step is a *constant number of associative operations*
//! (masked RMIN, search, resolve, broadcast, masked PMIN), so the whole
//! MST takes O(n) parallel steps instead of O(n²) sequential work.

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{run_kernel, to_words};

/// "No edge" weight: must exceed every real edge weight.
pub const INF: i64 = 0x3fff;

/// MST outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    /// Total weight of the tree.
    pub total_weight: u64,
    /// Run statistics.
    pub stats: Stats,
}

/// Adjacency-row layout: PE `j` holds `w(j, u)` at `lmem[u]` for all `u`.
pub(crate) fn program(n: usize) -> String {
    format!(
        "
        .equ N, {n}
        li     s6, 0           ; root vertex
        li     s7, {last}      ; n-1
        pidx   p1
        pcles  pf6, p1, s7     ; valid vertices
        pmovs  p3, s6
        plw    p2, 0(p3) ?pf6  ; dist = w(j, root)
        pceqs  pf1, p1, s6     ; in-tree = {{root}}
        pfmov  pf2, pf1
        pfnot  pf2, pf2        ; candidates = not in-tree
        pfand  pf2, pf2, pf6
        li     s5, 0           ; total weight
        li     s3, 0           ; step counter
step:   ceq    f1, s3, s7
        bt     f1, done
        rmin   s1, p2 ?pf2     ; lightest crossing edge
        pfclr  pf3
        pceqs  pf3, p2, s1 ?pf2
        pfirst pf4, pf3
        rget   s2, p1, pf4     ; new vertex v
        add    s5, s5, s1      ; accumulate weight
        pceqs  pf5, p1, s2
        pfor   pf1, pf1, pf5   ; tree += v
        pfandn pf2, pf2, pf5   ; candidates -= v
        pmovs  p3, s2
        plw    p4, 0(p3) ?pf2  ; w(u, v) for candidates
        pmin   p2, p2, p4 ?pf2 ; dist update
        addi   s3, s3, 1
        j      step
done:   halt
        ",
        last = n - 1,
    )
}

/// Compute the MST weight of a connected undirected graph given as a full
/// adjacency matrix (`weights[i][j]`, `INF` for no edge; diagonal
/// ignored). Needs `n <= num_pes` and `n <= lmem_words`.
pub fn run(cfg: MachineConfig, weights: &[Vec<i64>]) -> Result<MstResult, RunError> {
    let n = weights.len();
    assert!(n >= 1 && n <= cfg.num_pes, "graph must fit the PE array");
    assert!(n <= cfg.lmem_words, "adjacency row must fit local memory");
    let w = cfg.width;
    let (m, stats) = run_kernel(cfg, &program(n), |m| {
        for (j, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), n, "square matrix required");
            m.array_mut().lmem_load_slice(j, 0, &to_words(row, w)).unwrap();
        }
    })?;
    Ok(MstResult { total_weight: m.sreg(0, 5).to_u32() as u64, stats })
}

/// Host reference: Prim's algorithm.
pub fn reference(weights: &[Vec<i64>]) -> u64 {
    let n = weights.len();
    let mut in_tree = vec![false; n];
    let mut dist = weights[0].clone();
    in_tree[0] = true;
    let mut total = 0u64;
    for _ in 1..n {
        let (v, &d) = dist
            .iter()
            .enumerate()
            .filter(|&(u, _)| !in_tree[u])
            .min_by_key(|&(_, &d)| d)
            .expect("graph connected");
        total += d as u64;
        in_tree[v] = true;
        for u in 0..n {
            if !in_tree[u] && weights[v][u] < dist[u] {
                dist[u] = weights[v][u];
            }
        }
    }
    total
}

/// Generate a random connected graph: a random spanning path plus random
/// extra edges, weights in `1..=max_w`.
pub fn random_graph(n: usize, max_w: i64, seed: u64) -> Vec<Vec<i64>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = vec![vec![INF; n]; n];
    // spanning path guarantees connectivity
    for i in 1..n {
        let wt = rng.random_range(1..=max_w);
        w[i - 1][i] = wt;
        w[i][i - 1] = wt;
    }
    // extra edges
    for _ in 0..(2 * n) {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            let wt = rng.random_range(1..=max_w);
            w[a][b] = wt.min(w[a][b]);
            w[b][a] = w[a][b];
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_triangle() {
        // triangle with weights 1, 2, 3 → MST = 1 + 2
        let w = vec![vec![INF, 1, 3], vec![1, INF, 2], vec![3, 2, INF]];
        let r = run(MachineConfig::new(4), &w).unwrap();
        assert_eq!(r.total_weight, 3);
        assert_eq!(reference(&w), 3);
    }

    #[test]
    fn single_vertex() {
        let w = vec![vec![INF]];
        let r = run(MachineConfig::new(4), &w).unwrap();
        assert_eq!(r.total_weight, 0);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..8 {
            let n = 4 + (seed as usize % 13) * 3;
            let g = random_graph(n, 100, seed);
            let got = run(MachineConfig::new(64), &g).unwrap();
            assert_eq!(got.total_weight, reference(&g), "n={n} seed={seed}");
        }
    }

    #[test]
    fn steps_scale_linearly() {
        // O(n) associative steps: instructions ≈ c₁ + c₂·n
        let g16 = random_graph(16, 50, 1);
        let g32 = random_graph(32, 50, 2);
        let a = run(MachineConfig::new(64), &g16).unwrap();
        let b = run(MachineConfig::new(64), &g32).unwrap();
        let per_step_a = a.stats.issued as f64 / 16.0;
        let per_step_b = b.stats.issued as f64 / 32.0;
        assert!(
            (per_step_a - per_step_b).abs() / per_step_a < 0.3,
            "instructions per vertex roughly constant: {per_step_a} vs {per_step_b}"
        );
    }
}
