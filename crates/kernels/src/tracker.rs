//! Air-traffic-control track association — *the* canonical associative
//! computing application (Potter's ASC work \[4\] grew out of exactly this
//! workload on the STARAN): a table of active tracks lives one-per-PE;
//! for every incoming radar report the machine
//!
//! 1. broadcasts the report position,
//! 2. computes squared distances to all live tracks in parallel,
//! 3. finds the nearest track within a gate (masked RMIN),
//! 4. associates the report (updates that track) — or, if nothing gates,
//!    allocates a *free PE* for a new track via the multiple response
//!    resolver.
//!
//! Every report is processed in a constant number of associative steps
//! regardless of the number of tracks.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::Word;

use crate::harness::{run_kernel, to_words};

/// Association gate: reports farther than this (squared distance) from
/// every live track start a new track.
pub const GATE2: i64 = 100;

/// A track state (host-side view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Track {
    /// Position.
    pub x: i64,
    /// Position.
    pub y: i64,
    /// Reports associated into this track (hit count).
    pub hits: u32,
}

/// Tracker outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerResult {
    /// Live tracks, by PE index.
    pub tracks: Vec<Option<Track>>,
    /// Reports that could not be stored (no free PE).
    pub dropped: u32,
    /// Run statistics.
    pub stats: Stats,
}

/// Reports at `smem[REPORT_BASE..]` (x, y pairs); count at `smem\[0\]`.
const REPORT_BASE: i64 = 16;

/// Per-PE state: `p2` = x, `p3` = y, `p4` = hits, `pf1` = live.
pub(crate) fn program() -> String {
    format!(
        "
        lw     s1, 0(s0)       ; report count
        li     s2, 0           ; report index
        li     s10, 0          ; dropped count
        pidx   p1
        pfclr  pf1             ; no live tracks
        pli    p2, 0           ; track x
        pli    p3, 0           ; track y
        pli    p4, 0           ; hit count

rloop:  ceq    f1, s2, s1
        bt     f1, done
        add    s3, s2, s2      ; 2*i
        lw     s4, {rb}(s3)    ; bx
        lw     s5, {rb1}(s3)   ; by

        ; squared distance to every live track
        psubs  p5, p2, s4 ?pf1
        pmul   p5, p5, p5 ?pf1
        psubs  p6, p3, s5 ?pf1
        pmul   p6, p6, p6 ?pf1
        padd   p5, p5, p6 ?pf1

        ; nearest live track within the gate
        li     s6, {gate}
        pfclr  pf2
        pclts  pf2, p5, s6 ?pf1   ; gated candidates
        rany   f2, pf2
        bf     f2, newtrk

        rmin   s7, p5 ?pf2
        pfclr  pf3
        pceqs  pf3, p5, s7 ?pf2
        pfirst pf4, pf3           ; the winning track
        pmovs  p2, s4 ?pf4        ; snap to the report
        pmovs  p3, s5 ?pf4
        paddi  p4, p4, 1 ?pf4     ; hits += 1
        j      next

newtrk: pfnot  pf5, pf1           ; free PEs
        rany   f3, pf5
        bf     f3, drop           ; table full
        pfirst pf6, pf5           ; allocate the first free PE
        pmovs  p2, s4 ?pf6
        pmovs  p3, s5 ?pf6
        pli    p4, 1 ?pf6
        pfor   pf1, pf1, pf6      ; now live
        j      next

drop:   addi   s10, s10, 1

next:   addi   s2, s2, 1
        j      rloop

done:   rcount s11, pf1           ; live track count
        halt
        ",
        rb = REPORT_BASE,
        rb1 = REPORT_BASE + 1,
        gate = GATE2,
    )
}

/// Maximum coordinate magnitude: keeps every squared distance within the
/// 16-bit signed range (2 * 120² = 28,800 < 32,767).
pub const MAX_COORD: i64 = 60;

/// Feed `reports` through the associative tracker on `cfg`.
pub fn run(cfg: MachineConfig, reports: &[(i64, i64)]) -> Result<TrackerResult, RunError> {
    assert!(2 * reports.len() + (REPORT_BASE as usize) <= cfg.smem_words);
    assert!(
        reports.iter().all(|&(x, y)| x.abs() <= MAX_COORD && y.abs() <= MAX_COORD),
        "coordinates limited to ±{MAX_COORD} so squared distances stay exact"
    );
    let w = cfg.width;
    let (m, stats) = run_kernel(cfg, &program(), |mach| {
        mach.smem_mut().write(0, Word::new(reports.len() as u32, w)).unwrap();
        let flat: Vec<i64> = reports.iter().flat_map(|&(x, y)| [x, y]).collect();
        let words = to_words(&flat, w);
        for (i, word) in words.iter().enumerate() {
            mach.smem_mut().write((REPORT_BASE as usize + i) as u32, *word).unwrap();
        }
    })?;
    let tracks = (0..cfg.num_pes)
        .map(|pe| {
            if m.array().flag(pe, 0, 1) {
                Some(Track {
                    x: m.array().gpr(pe, 0, 2).to_i64(w),
                    y: m.array().gpr(pe, 0, 3).to_i64(w),
                    hits: m.array().gpr(pe, 0, 4).to_u32(),
                })
            } else {
                None
            }
        })
        .collect();
    Ok(TrackerResult { tracks, dropped: m.sreg(0, 10).to_u32(), stats })
}

/// Host reference with identical association and allocation rules.
pub fn reference(reports: &[(i64, i64)], num_pes: usize) -> (Vec<Option<Track>>, u32) {
    let mut tracks: Vec<Option<Track>> = vec![None; num_pes];
    let mut dropped = 0;
    for &(bx, by) in reports {
        // nearest live track within the gate; first PE on ties
        let best = tracks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, (t.x - bx) * (t.x - bx) + (t.y - by) * (t.y - by))))
            .filter(|&(_, d2)| d2 < GATE2)
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        match best {
            Some((i, _)) => {
                let t = tracks[i].as_mut().unwrap();
                t.x = bx;
                t.y = by;
                t.hits += 1;
            }
            None => match tracks.iter().position(|t| t.is_none()) {
                Some(i) => tracks[i] = Some(Track { x: bx, y: by, hits: 1 }),
                None => dropped += 1,
            },
        }
    }
    (tracks, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn associates_nearby_reports() {
        // two aircraft, three sweeps each
        let reports = vec![
            (10, 10),
            (50, 50),
            (12, 11), // near track 0
            (52, 49), // near track 1
            (14, 12),
            (54, 48),
        ];
        let r = run(MachineConfig::new(8), &reports).unwrap();
        let live: Vec<&Track> = r.tracks.iter().flatten().collect();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].hits, 3);
        assert_eq!(live[1].hits, 3);
        assert_eq!((live[0].x, live[0].y), (14, 12), "track follows the last report");
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn far_reports_start_new_tracks() {
        let reports = vec![(0, 0), (60, 60), (-60, 60)];
        let r = run(MachineConfig::new(8), &reports).unwrap();
        assert_eq!(r.tracks.iter().flatten().count(), 3);
    }

    #[test]
    fn table_overflow_drops_reports() {
        // 4 PEs, 6 mutually-distant reports
        let reports: Vec<(i64, i64)> =
            (0..6).map(|i| ((i % 3) * 55 - 55, (i / 3) * 55 - 25)).collect();
        let r = run(MachineConfig::new(4), &reports).unwrap();
        let (_, dropped) = reference(&reports, 4);
        assert!(r.dropped > 0);
        assert_eq!(r.dropped, dropped);
    }

    #[test]
    fn matches_reference_on_random_report_streams() {
        let mut rng = StdRng::seed_from_u64(0xA7C);
        for trial in 0..10 {
            let n = rng.random_range(1..=40);
            let reports: Vec<(i64, i64)> =
                (0..n).map(|_| (rng.random_range(-60..=60), rng.random_range(-60..=60))).collect();
            let cfg = MachineConfig::new(16);
            let got = run(cfg, &reports).unwrap();
            let (tracks, dropped) = reference(&reports, 16);
            assert_eq!(got.tracks, tracks, "trial {trial}");
            assert_eq!(got.dropped, dropped, "trial {trial}");
        }
    }

    #[test]
    fn per_report_cost_is_constant() {
        // constant associative steps per report, independent of table size
        let near: Vec<(i64, i64)> = (0..20).map(|i| (i % 4, i % 4)).collect();
        let a = run(MachineConfig::new(16), &near).unwrap();
        let b = run(MachineConfig::new(256), &near).unwrap();
        assert_eq!(a.stats.issued, b.stats.issued);
    }
}
