//! Associative string matching: PE `j` holds the text window
//! `text[j .. j+m]` in its local memory (the host distributes overlapping
//! windows — the stand-in for the inter-PE shift network this processor
//! does not have). The pattern is broadcast character by character; each
//! PE ANDs per-character equality into its match flag, so the whole text
//! is scanned in O(m) steps regardless of text length.

use asc_core::{MachineConfig, RunError, Stats};
use asc_isa::Word;

use crate::harness::{run_kernel, to_words};

/// Match outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Number of occurrences.
    pub count: u32,
    /// Starting index of the first occurrence.
    pub first: Option<u32>,
    /// Run statistics.
    pub stats: Stats,
}

/// Pattern lives in scalar memory `[0..m)`; window length m, valid
/// starting positions `0..=n-m`.
pub(crate) fn program(n: usize, m: usize) -> String {
    format!(
        "
        li     s6, {last_start}
        pidx   p1
        pcles  pf1, p1, s6     ; valid starting positions
        li     s3, 0           ; i = 0
        li     s4, {m}
        pli    p3, 0           ; window offset register
char:   ceq    f1, s3, s4
        bt     f1, tally
        lw     s2, 0(s3)       ; pattern[i] (base = i, offset 0)
        plw    p2, 0(p3) ?pf1  ; window[i]
        pfclr  pf2
        pceqs  pf2, p2, s2 ?pf1
        pfand  pf1, pf1, pf2   ; running match flag
        paddi  p3, p3, 1
        addi   s3, s3, 1
        j      char
tally:  rcount s1, pf1
        pfirst pf3, pf1
        pidx   p1
        rget   s5, p1, pf3
        rany   f2, pf1
        halt
        ",
        last_start = n as i64 - m as i64,
    )
}

/// Count occurrences of `pattern` in `text` (byte strings; characters must
/// fit the machine width).
pub fn run(cfg: MachineConfig, text: &[u8], pattern: &[u8]) -> Result<MatchResult, RunError> {
    let n = text.len();
    let m = pattern.len();
    assert!(m >= 1, "empty pattern");
    assert!(n <= cfg.num_pes, "text must fit one character-window per PE");
    assert!(m <= cfg.lmem_words, "pattern must fit local memory windows");
    if m > n {
        return Ok(MatchResult { count: 0, first: None, stats: Stats::new(cfg.threads) });
    }
    let w = cfg.width;
    let (machine, stats) = run_kernel(cfg, &program(n, m), |mach| {
        // pattern into scalar memory
        let pat: Vec<i64> = pattern.iter().map(|&c| c as i64).collect();
        for (i, &c) in pat.iter().enumerate() {
            mach.smem_mut().write(i as u32, Word::from_i64(c, w)).unwrap();
        }
        // overlapping windows into PE local memories (sentinel-padded)
        for j in 0..n {
            let window: Vec<i64> =
                (0..m).map(|i| text.get(j + i).map(|&c| c as i64).unwrap_or(-1)).collect();
            mach.array_mut().lmem_load_slice(j, 0, &to_words(&window, w)).unwrap();
        }
    })?;
    let count = machine.sreg(0, 1).to_u32();
    let first = if machine.sflag(0, 2) { Some(machine.sreg(0, 5).to_u32()) } else { None };
    Ok(MatchResult { count, first, stats })
}

/// Interconnect variant: one character per PE (no window replication —
/// local memory holds exactly one word). The text is shifted left one PE
/// per pattern step, so `match[i] = AND_k (text[i+k] == pattern[k])` with
/// O(m) steps and O(1) memory per PE. Requires the `pshift` extension.
pub(crate) fn shift_program(n: usize, m: usize) -> String {
    format!(
        "
        li     s6, {last_start}
        pidx   p1
        pcles  pf1, p1, s6     ; valid starting positions
        plw    p2, 0(p0)       ; text characters
        pmov   p3, p2          ; sliding copy
        li     s3, 0           ; i
        li     s4, {m}
char:   ceq    f1, s3, s4
        bt     f1, tally
        lw     s2, 0(s3)       ; pattern[i]
        pfclr  pf2
        pceqs  pf2, p3, s2 ?pf1
        pfand  pf1, pf1, pf2
        pshift p3, p3, -1      ; next character slides into place
        addi   s3, s3, 1
        j      char
tally:  rcount s1, pf1
        pfirst pf3, pf1
        rget   s5, p1, pf3
        rany   f2, pf1
        halt
        ",
        last_start = n as i64 - m as i64,
    )
}

/// Count occurrences using the interconnection network instead of
/// replicated windows. Same result as [`run`], different hardware usage:
/// one text character per PE and O(m) single-hop shifts.
pub fn run_shift(cfg: MachineConfig, text: &[u8], pattern: &[u8]) -> Result<MatchResult, RunError> {
    let n = text.len();
    let m = pattern.len();
    assert!(m >= 1, "empty pattern");
    assert!(n <= cfg.num_pes);
    if m > n {
        return Ok(MatchResult { count: 0, first: None, stats: Stats::new(cfg.threads) });
    }
    let w = cfg.width;
    let (machine, stats) = run_kernel(cfg, &shift_program(n, m), |mach| {
        for (i, &c) in pattern.iter().enumerate() {
            mach.smem_mut().write(i as u32, Word::from_i64(c as i64, w)).unwrap();
        }
        let chars: Vec<i64> =
            (0..cfg.num_pes).map(|j| text.get(j).map(|&c| c as i64).unwrap_or(-1)).collect();
        mach.array_mut().scatter_column(0, &to_words(&chars, w)).unwrap();
    })?;
    let count = machine.sreg(0, 1).to_u32();
    let first = if machine.sflag(0, 2) { Some(machine.sreg(0, 5).to_u32()) } else { None };
    Ok(MatchResult { count, first, stats })
}

/// Host reference: naive scan.
pub fn reference(text: &[u8], pattern: &[u8]) -> (u32, Option<u32>) {
    if pattern.is_empty() || pattern.len() > text.len() {
        return (0, None);
    }
    let hits: Vec<usize> = (0..=text.len() - pattern.len())
        .filter(|&j| &text[j..j + pattern.len()] == pattern)
        .collect();
    (hits.len() as u32, hits.first().map(|&j| j as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_overlapping_occurrences() {
        let text = b"abababa";
        let r = run(MachineConfig::new(8), text, b"aba").unwrap();
        assert_eq!(r.count, 3, "overlapping matches at 0, 2, 4");
        assert_eq!(r.first, Some(0));
    }

    #[test]
    fn no_match_and_single_char() {
        let r = run(MachineConfig::new(16), b"hello world", b"xyz").unwrap();
        assert_eq!(r.count, 0);
        assert_eq!(r.first, None);
        let r = run(MachineConfig::new(16), b"hello world", b"o").unwrap();
        assert_eq!(r.count, 2);
        assert_eq!(r.first, Some(4));
    }

    #[test]
    fn pattern_longer_than_text() {
        let r = run(MachineConfig::new(8), b"ab", b"abc").unwrap();
        assert_eq!(r.count, 0);
    }

    #[test]
    fn match_at_end() {
        let r = run(MachineConfig::new(8), b"xxxxyz", b"yz").unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(r.first, Some(4));
    }

    #[test]
    fn matches_reference_on_random_strings() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let n = rng.random_range(1..=60);
            let m = rng.random_range(1..=4);
            let text: Vec<u8> = (0..n).map(|_| rng.random_range(b'a'..=b'c')).collect();
            let pattern: Vec<u8> = (0..m).map(|_| rng.random_range(b'a'..=b'c')).collect();
            let got = run(MachineConfig::new(64), &text, &pattern).unwrap();
            let (count, first) = reference(&text, &pattern);
            assert_eq!((got.count, got.first), (count, first), "{text:?} {pattern:?}");
        }
    }

    #[test]
    fn shift_variant_agrees_with_window_variant() {
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..15 {
            let n = rng.random_range(1..=60);
            let m = rng.random_range(1..=4);
            let text: Vec<u8> = (0..n).map(|_| rng.random_range(b'a'..=b'c')).collect();
            let pattern: Vec<u8> = (0..m).map(|_| rng.random_range(b'a'..=b'c')).collect();
            let cfg = MachineConfig::new(64);
            let windowed = run(cfg, &text, &pattern).unwrap();
            let shifted = run_shift(cfg, &text, &pattern).unwrap();
            assert_eq!((windowed.count, windowed.first), (shifted.count, shifted.first));
        }
    }

    #[test]
    fn shift_variant_uses_constant_local_memory() {
        // windows need m words per PE; the shift variant needs one
        let text: Vec<u8> = vec![b'a'; 32];
        let r = run_shift(MachineConfig::new(32), &text, b"aaaa").unwrap();
        assert_eq!(r.count, 29);
        assert_eq!(r.first, Some(0));
    }

    #[test]
    fn cost_scales_with_pattern_not_text() {
        let t1: Vec<u8> = vec![b'a'; 32];
        let t2: Vec<u8> = vec![b'a'; 256];
        let a = run(MachineConfig::new(256), &t1, b"ab").unwrap();
        let b = run(MachineConfig::new(256), &t2, b"ab").unwrap();
        assert_eq!(a.stats.issued, b.stats.issued, "O(m) regardless of n");
    }
}
