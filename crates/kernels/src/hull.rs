//! Convex hull by associative QuickHull: one point per PE; every step of
//! the classic recursion becomes O(1) associative work (broadcast the
//! segment endpoints, compute cross products in parallel, masked RMAX to
//! find the farthest point, MRR to resolve ties), with the recursion
//! stack kept in scalar memory. Associative geometry like this is a
//! staple of the ASC application literature.
//!
//! Points use small integer coordinates so the cross products fit the
//! 16-bit datapath (|coord| ≤ 60 keeps every product within ±7200).

use asc_core::{MachineConfig, RunError, Stats};

use crate::harness::{run_kernel, to_words};

/// Coordinate magnitude limit (keeps cross products in range at W16).
pub const MAX_COORD: i64 = 60;

/// Hull outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HullResult {
    /// `true` for each input point on the convex hull (strictly —
    /// collinear boundary points are excluded).
    pub on_hull: Vec<bool>,
    /// Number of hull vertices.
    pub count: u32,
    /// Run statistics.
    pub stats: Stats,
}

/// The kernel. Layout: x in `lmem[0]`, y in `lmem[1]`; segment stack at
/// `smem[64..]` (two words per entry); hull membership accumulates in
/// `pf7`.
pub(crate) fn program(n: usize) -> String {
    format!(
        "
        .equ STACK, 64
        li     s15, {last}
        pidx   p1
        pcles  pf1, p1, s15    ; valid points
        plw    p2, 0(p0) ?pf1  ; x
        plw    p3, 1(p0) ?pf1  ; y
        pfclr  pf7             ; hull membership

; ---- find A = lexicographically smallest (x, y) point ----
        rmin   s2, p2 ?pf1     ; min x
        pfclr  pf2
        pceqs  pf2, p2, s2 ?pf1
        rmin   s3, p3 ?pf2     ; min y among those
        pfclr  pf3
        pceqs  pf3, p3, s3 ?pf2
        pfirst pf4, pf3
        rget   s6, p1, pf4     ; A's index
        pfor   pf7, pf7, pf4

; ---- find B = lexicographically largest (x, y) point ----
        rmax   s4, p2 ?pf1
        pfclr  pf2
        pceqs  pf2, p2, s4 ?pf1
        rmax   s5, p3 ?pf2
        pfclr  pf3
        pceqs  pf3, p3, s5 ?pf2
        pfirst pf4, pf3
        rget   s7, p1, pf4     ; B's index
        pfor   pf7, pf7, pf4

; ---- degenerate single-point input: A == B → done ----
        ceq    f1, s6, s7
        bt     f1, finish

; ---- stack := [(A,B), (B,A)] ----
        li     s1, 0           ; sp (in entries)
        sw     s6, STACK(s0)
        sw     s7, 65(s0)
        sw     s7, 66(s0)
        sw     s6, 67(s0)
        li     s1, 2           ; two entries pushed

; ---- main loop: pop (P, Q), find farthest strictly-left point ----
loop:   ceqi   f1, s1, 0
        bt     f1, finish
        addi   s1, s1, -1
        add    s14, s1, s1     ; entry offset = 2*sp
        lw     s6, STACK(s14)  ; P index
        lw     s7, 65(s14)     ; Q index

        ; fetch P and Q coordinates associatively (search by index)
        pceqs  pf2, p1, s6
        rget   s2, p2, pf2     ; px
        rget   s3, p3, pf2     ; py
        pceqs  pf2, p1, s7
        rget   s4, p2, pf2     ; qx
        rget   s5, p3, pf2     ; qy

        ; cross = (qx-px)*(y-py) - (qy-py)*(x-px), per PE
        sub    s8, s4, s2      ; dx
        sub    s9, s5, s3      ; dy
        psubs  p4, p2, s2      ; x - px
        psubs  p5, p3, s3      ; y - py
        pmuls  p6, p5, s8      ; dx*(y-py)
        pmuls  p7, p4, s9      ; dy*(x-px)
        psub   p8, p6, p7      ; cross

        ; candidates: valid points strictly left of P->Q
        pfclr  pf2
        pclei  pf2, p8, 0 ?pf1 ; cross <= 0
        pfclr  pf3
        pfnot  pf3, pf2 ?pf1   ; cross > 0, valid only
        rany   f1, pf3
        bf     f1, loop        ; no candidates: segment done

        ; C = candidate with maximum cross (first on ties)
        rmax   s10, p8 ?pf3
        pfclr  pf4
        pceqs  pf4, p8, s10 ?pf3
        pfirst pf5, pf4
        rget   s11, p1, pf5    ; C's index
        pfor   pf7, pf7, pf5   ; C joins the hull

        ; push (P, C) and (C, Q)
        add    s14, s1, s1
        sw     s6, STACK(s14)
        sw     s11, 65(s14)
        addi   s1, s1, 1
        add    s14, s1, s1
        sw     s11, STACK(s14)
        sw     s7, 65(s14)
        addi   s1, s1, 1
        j      loop

finish: rcount s12, pf7
        halt
        ",
        last = n as i64 - 1,
    )
}

/// Compute the convex hull of `points` (one per PE, `|coord| <=`
/// [`MAX_COORD`]).
pub fn run(cfg: MachineConfig, points: &[(i64, i64)]) -> Result<HullResult, RunError> {
    let n = points.len();
    assert!(n >= 1 && n <= cfg.num_pes);
    assert!(
        points.iter().all(|&(x, y)| x.abs() <= MAX_COORD && y.abs() <= MAX_COORD),
        "coordinates limited to ±{MAX_COORD}"
    );
    let w = cfg.width;
    let mut xs: Vec<i64> = points.iter().map(|p| p.0).collect();
    let mut ys: Vec<i64> = points.iter().map(|p| p.1).collect();
    xs.resize(cfg.num_pes, 0);
    ys.resize(cfg.num_pes, 0);
    let (m, stats) = run_kernel(cfg, &program(n), |mach| {
        mach.array_mut().scatter_column(0, &to_words(&xs, w)).unwrap();
        mach.array_mut().scatter_column(1, &to_words(&ys, w)).unwrap();
    })?;
    let on_hull: Vec<bool> = (0..n).map(|i| m.array().flag(i, 0, 7)).collect();
    Ok(HullResult { on_hull, count: m.sreg(0, 12).to_u32(), stats })
}

/// Host reference: the same QuickHull recursion with identical
/// tie-breaking (lexicographic extremes; farthest = max cross, first
/// index on ties; strict inequalities exclude collinear points).
pub fn reference(points: &[(i64, i64)]) -> Vec<bool> {
    let n = points.len();
    let mut on_hull = vec![false; n];
    // first index wins ties, matching the machine's PFIRST resolution
    let a = (0..n).min_by_key(|&i| (points[i], i)).unwrap();
    let b = (0..n).max_by_key(|&i| (points[i], std::cmp::Reverse(i))).unwrap();
    on_hull[a] = true;
    on_hull[b] = true;
    if a == b {
        return on_hull;
    }
    let mut stack = vec![(a, b), (b, a)];
    while let Some((p, q)) = stack.pop() {
        let (px, py) = points[p];
        let (qx, qy) = points[q];
        let cross = |i: usize| (qx - px) * (points[i].1 - py) - (qy - py) * (points[i].0 - px);
        let best = (0..n).filter(|&i| cross(i) > 0).max_by(|&i, &j| {
            cross(i).cmp(&cross(j)).then(j.cmp(&i)) // first index wins ties
        });
        if let Some(c) = best {
            on_hull[c] = true;
            stack.push((p, c));
            stack.push((c, q));
        }
    }
    on_hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn square_with_interior_point() {
        let pts = vec![(0, 0), (10, 0), (10, 10), (0, 10), (5, 5)];
        let r = run(MachineConfig::new(8), &pts).unwrap();
        assert_eq!(r.on_hull, vec![true, true, true, true, false]);
        assert_eq!(r.count, 4);
    }

    #[test]
    fn triangle_and_collinear() {
        let pts = vec![(0, 0), (10, 0), (5, 8), (5, 0)]; // (5,0) lies on an edge
        let r = run(MachineConfig::new(8), &pts).unwrap();
        assert_eq!(r.on_hull, vec![true, true, true, false]);
    }

    #[test]
    fn degenerate_inputs() {
        // single point
        let r = run(MachineConfig::new(4), &[(3, 4)]).unwrap();
        assert_eq!(r.on_hull, vec![true]);
        assert_eq!(r.count, 1);
        // all collinear: only the extremes are hull vertices
        let pts = vec![(0, 0), (1, 1), (2, 2), (3, 3)];
        let r = run(MachineConfig::new(8), &pts).unwrap();
        assert_eq!(r.on_hull, vec![true, false, false, true]);
    }

    #[test]
    fn matches_reference_on_random_point_sets() {
        let mut rng = StdRng::seed_from_u64(0x4011);
        for trial in 0..15 {
            let n = rng.random_range(3..=48);
            let pts: Vec<(i64, i64)> =
                (0..n).map(|_| (rng.random_range(-50..=50), rng.random_range(-50..=50))).collect();
            let got = run(MachineConfig::new(64), &pts).unwrap();
            assert_eq!(got.on_hull, reference(&pts), "trial {trial}: {pts:?}");
        }
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![(-50, -50), (50, -50), (0, 50), (0, 0), (-10, -10)];
        let r = run(MachineConfig::new(8), &pts).unwrap();
        assert_eq!(r.on_hull, reference(&pts));
        assert_eq!(r.count, 3);
    }
}
