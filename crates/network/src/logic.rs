//! The logic unit: bitwise reduction of integers and flags, supporting AND
//! and OR. In hardware it is "a pipelined tree of OR gates with bypassable
//! inverters before and after the tree" — AND is computed as
//! `~(OR(~x))` by De Morgan. The functional model here implements both the
//! direct reduction and the De Morgan path and the tests check they agree.
//!
//! Integer reduction walks only the set bits of the packed active mask
//! (AND/OR are associative and commutative, so the fold equals the
//! hardware tree — no temporary leaf vector, no identity traffic); flag
//! reduction operates word-parallel on packed bitplanes, 64 PEs per `u64`.

use asc_isa::{FlagReduceOp, ReduceOp, Width, Word};
use asc_pe::ActiveMask;

/// Functional model of the logic reduction unit.
pub struct LogicUnit;

impl LogicUnit {
    /// Bitwise AND/OR over active PEs. Inactive PEs contribute the identity
    /// (all ones for AND, zero for OR).
    ///
    /// # Panics
    /// Panics if `op` is not `And` or `Or`.
    pub fn reduce(op: ReduceOp, values: &[Word], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(values.len(), active.lanes());
        Self::reduce_tiles(op, values, active, 0..active.words().len(), w)
    }

    /// [`LogicUnit::reduce`] restricted to the 64-lane tiles in `tiles` —
    /// one segment's leaf reduction in the two-level tree. AND/OR are
    /// associative, so segment partials combine with `ReduceOp::combine`
    /// in any grouping.
    pub fn reduce_tiles(
        op: ReduceOp,
        values: &[Word],
        active: &ActiveMask,
        tiles: std::ops::Range<usize>,
        w: Width,
    ) -> Word {
        assert!(matches!(op, ReduceOp::And | ReduceOp::Or), "logic unit only does AND/OR");
        // Bitwise AND/OR are associative and commutative, so the
        // hardware's tree order (AND being the OR tree with inverted
        // inputs and output) folds to the same word as a linear walk over
        // the set bits of the packed active mask — which skips 64
        // inactive lanes per word test instead of feeding the tree
        // identity leaves.
        let id = op.identity(w);
        let combine = |a: Word, b: Word| match op {
            ReduceOp::Or => a.or(b),
            ReduceOp::And => Word::new(a.to_u32() & b.to_u32(), w),
            _ => unreachable!(),
        };
        let mut acc = id;
        for wi in tiles {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            let base = wi * 64;
            if mw == u64::MAX {
                for &v in &values[base..base + 64] {
                    acc = combine(acc, v);
                }
            } else {
                let mut m = mw;
                while m != 0 {
                    acc = combine(acc, values[base + m.trailing_zeros() as usize]);
                    m &= m - 1;
                }
            }
        }
        acc
    }

    /// Flag reduction: responder detection over a packed bitplane. `Any` is
    /// a nonzero test of `flags & active`; `All` asks whether any *active*
    /// PE has the flag clear. Both are word-parallel and short-circuit —
    /// the tail invariant (mask bits beyond the last PE are zero) makes
    /// the partial last word fall out for free.
    pub fn reduce_flags(op: FlagReduceOp, flags: &[u64], active: &ActiveMask) -> bool {
        debug_assert_eq!(flags.len(), active.words().len());
        Self::reduce_flags_tiles(op, flags, active, 0..flags.len())
    }

    /// [`LogicUnit::reduce_flags`] restricted to the tiles in `tiles`:
    /// one segment's responder detection. A segment with no active lane
    /// contributes the identity (`false` for `Any`, `true` for `All`), so
    /// skipping unoccupied segments is exact.
    pub fn reduce_flags_tiles(
        op: FlagReduceOp,
        flags: &[u64],
        active: &ActiveMask,
        tiles: std::ops::Range<usize>,
    ) -> bool {
        let f = &flags[tiles.clone()];
        let a = &active.words()[tiles];
        match op {
            FlagReduceOp::Any => f.iter().zip(a).any(|(&f, &a)| f & a != 0),
            FlagReduceOp::All => f.iter().zip(a).all(|(&f, &a)| !f & a == 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w8(v: u32) -> Word {
        Word::new(v, Width::W8)
    }

    fn pack(flags: &[bool]) -> Vec<u64> {
        ActiveMask::from_bools(flags).words().to_vec()
    }

    #[test]
    fn and_or_basic() {
        let vals = [w8(0b1100), w8(0b1010), w8(0b1111)];
        let all = ActiveMask::all(3);
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &all, Width::W8), w8(0b1000));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &all, Width::W8), w8(0b1111));
    }

    #[test]
    fn inactive_pes_are_transparent() {
        let vals = [w8(0x0f), w8(0xf0)];
        let first = ActiveMask::from_bools(&[true, false]);
        let second = ActiveMask::from_bools(&[false, true]);
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &first, Width::W8), w8(0x0f));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &second, Width::W8), w8(0xf0));
    }

    #[test]
    fn empty_active_set_yields_identity() {
        let vals = [w8(1), w8(2)];
        let none = ActiveMask::new(2);
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &none, Width::W8), w8(0xff));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &none, Width::W8), w8(0));
    }

    #[test]
    fn flag_reduction() {
        let all3 = ActiveMask::all(3);
        assert!(LogicUnit::reduce_flags(FlagReduceOp::Any, &pack(&[false, true, false]), &all3));
        let first = ActiveMask::from_bools(&[true, false]);
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::Any, &pack(&[false, true]), &first));
        assert!(LogicUnit::reduce_flags(FlagReduceOp::All, &pack(&[true, false]), &first));
        let both = ActiveMask::all(2);
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::All, &pack(&[true, false]), &both));
        // empty active set
        let none = ActiveMask::new(1);
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::Any, &pack(&[true]), &none));
        assert!(LogicUnit::reduce_flags(FlagReduceOp::All, &pack(&[false]), &none));
    }

    #[test]
    #[should_panic]
    fn rejects_non_logic_op() {
        LogicUnit::reduce(ReduceOp::Sum, &[], &ActiveMask::new(0), Width::W8);
    }

    proptest! {
        /// The De Morgan AND path agrees with a plain fold, and OR agrees
        /// with a plain fold, for any width.
        #[test]
        fn matches_sequential_fold(
            vals in proptest::collection::vec(0u32..=0xffff_ffff, 1..64),
            actives in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            for w in Width::ALL {
                let n = vals.len().min(actives.len());
                let words: Vec<Word> = vals[..n].iter().map(|&v| Word::new(v, w)).collect();
                let act = ActiveMask::from_bools(&actives[..n]);
                let and = LogicUnit::reduce(ReduceOp::And, &words, &act, w);
                let or = LogicUnit::reduce(ReduceOp::Or, &words, &act, w);
                let mut fand = w.mask();
                let mut for_ = 0u32;
                for i in 0..n {
                    if actives[i] {
                        fand &= words[i].to_u32();
                        for_ |= words[i].to_u32();
                    }
                }
                prop_assert_eq!(and.to_u32(), fand);
                prop_assert_eq!(or.to_u32(), for_);
            }
        }

        /// Word-parallel flag reduction equals the per-PE tree reduction it
        /// replaced.
        #[test]
        fn flags_match_sequential(
            flags in proptest::collection::vec(any::<bool>(), 0..200),
            actives in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let n = flags.len().min(actives.len());
            let mask = ActiveMask::from_bools(&actives[..n]);
            let packed = pack(&flags[..n]);
            for op in [FlagReduceOp::Any, FlagReduceOp::All] {
                let expect = (0..n)
                    .map(|i| if actives[i] { flags[i] } else { op.identity() })
                    .fold(op.identity(), |a, b| op.combine(a, b));
                prop_assert_eq!(LogicUnit::reduce_flags(op, &packed, &mask), expect);
            }
        }
    }
}
