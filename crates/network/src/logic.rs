//! The logic unit: bitwise reduction of integers and flags, supporting AND
//! and OR. In hardware it is "a pipelined tree of OR gates with bypassable
//! inverters before and after the tree" — AND is computed as
//! `~(OR(~x))` by De Morgan. The functional model here implements both the
//! direct reduction and the De Morgan path and the tests check they agree.

use asc_isa::{FlagReduceOp, ReduceOp, Width, Word};

use crate::tree::tree_reduce;

/// Functional model of the logic reduction unit.
pub struct LogicUnit;

impl LogicUnit {
    /// Bitwise AND/OR over active PEs. Inactive PEs contribute the identity
    /// (all ones for AND, zero for OR).
    ///
    /// # Panics
    /// Panics if `op` is not `And` or `Or`.
    pub fn reduce(op: ReduceOp, values: &[Word], active: &[bool], w: Width) -> Word {
        assert!(matches!(op, ReduceOp::And | ReduceOp::Or), "logic unit only does AND/OR");
        let id = op.identity(w);
        let leaves: Vec<Word> =
            values.iter().zip(active).map(|(&v, &a)| if a { v } else { id }).collect();
        match op {
            ReduceOp::Or => tree_reduce(&leaves, id, |a, b| a.or(b)),
            ReduceOp::And => {
                // hardware path: invert, OR-tree, invert
                let inverted: Vec<Word> =
                    leaves.iter().map(|v| Word::new(!v.to_u32(), w)).collect();
                let ored = tree_reduce(&inverted, Word::ZERO, |a, b| a.or(b));
                Word::new(!ored.to_u32(), w)
            }
            _ => unreachable!(),
        }
    }

    /// Flag reduction: responder detection. `Any` = OR, `All` = AND over the
    /// active set.
    pub fn reduce_flags(op: FlagReduceOp, flags: &[bool], active: &[bool]) -> bool {
        let id = op.identity();
        let leaves: Vec<bool> =
            flags.iter().zip(active).map(|(&f, &a)| if a { f } else { id }).collect();
        tree_reduce(&leaves, id, |a, b| op.combine(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w8(v: u32) -> Word {
        Word::new(v, Width::W8)
    }

    #[test]
    fn and_or_basic() {
        let vals = [w8(0b1100), w8(0b1010), w8(0b1111)];
        let all = [true, true, true];
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &all, Width::W8), w8(0b1000));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &all, Width::W8), w8(0b1111));
    }

    #[test]
    fn inactive_pes_are_transparent() {
        let vals = [w8(0x0f), w8(0xf0)];
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &[true, false], Width::W8), w8(0x0f));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &[false, true], Width::W8), w8(0xf0));
    }

    #[test]
    fn empty_active_set_yields_identity() {
        let vals = [w8(1), w8(2)];
        assert_eq!(LogicUnit::reduce(ReduceOp::And, &vals, &[false, false], Width::W8), w8(0xff));
        assert_eq!(LogicUnit::reduce(ReduceOp::Or, &vals, &[false, false], Width::W8), w8(0));
    }

    #[test]
    fn flag_reduction() {
        assert!(LogicUnit::reduce_flags(FlagReduceOp::Any, &[false, true, false], &[true; 3]));
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::Any, &[false, true], &[true, false]));
        assert!(LogicUnit::reduce_flags(FlagReduceOp::All, &[true, false], &[true, false]));
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::All, &[true, false], &[true, true]));
        // empty active set
        assert!(!LogicUnit::reduce_flags(FlagReduceOp::Any, &[true], &[false]));
        assert!(LogicUnit::reduce_flags(FlagReduceOp::All, &[false], &[false]));
    }

    #[test]
    #[should_panic]
    fn rejects_non_logic_op() {
        LogicUnit::reduce(ReduceOp::Sum, &[], &[], Width::W8);
    }

    proptest! {
        /// The De Morgan AND path agrees with a plain fold, and OR agrees
        /// with a plain fold, for any width.
        #[test]
        fn matches_sequential_fold(
            vals in proptest::collection::vec(0u32..=0xffff_ffff, 1..64),
            actives in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            for w in Width::ALL {
                let n = vals.len().min(actives.len());
                let words: Vec<Word> = vals[..n].iter().map(|&v| Word::new(v, w)).collect();
                let act = &actives[..n];
                let and = LogicUnit::reduce(ReduceOp::And, &words, act, w);
                let or = LogicUnit::reduce(ReduceOp::Or, &words, act, w);
                let mut fand = w.mask();
                let mut for_ = 0u32;
                for i in 0..n {
                    if act[i] {
                        fand &= words[i].to_u32();
                        for_ |= words[i].to_u32();
                    }
                }
                prop_assert_eq!(and.to_u32(), fand);
                prop_assert_eq!(or.to_u32(), for_);
            }
        }
    }
}
