//! Names for the network's functional units, used by the simulator's
//! observability layer to attribute each network operation (and by any
//! downstream activity/cost model: per-unit operation counts are the raw
//! input to e.g. thermal analysis).

use asc_isa::ReduceOp;
use std::fmt;

/// One of the broadcast/reduction units of Section 6.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetUnit {
    /// The k-ary broadcast tree (instructions and scalar data downward).
    Broadcast,
    /// The bitwise AND/OR reduction tree (integers and flags).
    Logic,
    /// The signed/unsigned max/min reduction tree.
    MaxMin,
    /// The saturating-sum reduction tree.
    Sum,
    /// The exact response counter.
    Counter,
    /// The multiple response resolver (first responder).
    Resolver,
}

impl NetUnit {
    /// Every unit, in a fixed order (for tables and dense counters).
    pub const ALL: [NetUnit; 6] = [
        NetUnit::Broadcast,
        NetUnit::Logic,
        NetUnit::MaxMin,
        NetUnit::Sum,
        NetUnit::Counter,
        NetUnit::Resolver,
    ];

    /// Dense index matching [`NetUnit::ALL`].
    pub const fn index(self) -> usize {
        match self {
            NetUnit::Broadcast => 0,
            NetUnit::Logic => 1,
            NetUnit::MaxMin => 2,
            NetUnit::Sum => 3,
            NetUnit::Counter => 4,
            NetUnit::Resolver => 5,
        }
    }

    /// Stable machine-readable name (used in trace serialization).
    pub const fn label(self) -> &'static str {
        match self {
            NetUnit::Broadcast => "broadcast",
            NetUnit::Logic => "logic",
            NetUnit::MaxMin => "maxmin",
            NetUnit::Sum => "sum",
            NetUnit::Counter => "counter",
            NetUnit::Resolver => "resolver",
        }
    }

    /// The unit by its [`label`](NetUnit::label).
    pub fn from_label(s: &str) -> Option<NetUnit> {
        NetUnit::ALL.into_iter().find(|u| u.label() == s)
    }

    /// True if an instruction of this class occupies a *reduction* tree
    /// (data flowing PE-array → control unit). Fused parallel basic
    /// blocks must never contain such an instruction — the block-fusion
    /// engine in `asc-core` asserts this against every block it forms:
    /// a reduction's scalar result couples all lanes and would make
    /// tile-major execution order observable.
    pub const fn class_uses_reduction(class: asc_isa::InstrClass) -> bool {
        matches!(class, asc_isa::InstrClass::Reduction)
    }

    /// Which reduction tree executes a value reduction.
    pub const fn for_reduce(op: ReduceOp) -> NetUnit {
        match op {
            ReduceOp::And | ReduceOp::Or => NetUnit::Logic,
            ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU => NetUnit::MaxMin,
            ReduceOp::Sum => NetUnit::Sum,
        }
    }
}

impl fmt::Display for NetUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, u) in NetUnit::ALL.into_iter().enumerate() {
            assert_eq!(u.index(), i);
        }
    }

    #[test]
    fn labels_round_trip() {
        for u in NetUnit::ALL {
            assert_eq!(NetUnit::from_label(u.label()), Some(u));
        }
        assert_eq!(NetUnit::from_label("warp-drive"), None);
    }

    #[test]
    fn reduce_ops_map_to_units() {
        assert_eq!(NetUnit::for_reduce(ReduceOp::Sum), NetUnit::Sum);
        assert_eq!(NetUnit::for_reduce(ReduceOp::And), NetUnit::Logic);
        assert_eq!(NetUnit::for_reduce(ReduceOp::MinU), NetUnit::MaxMin);
    }
}
