//! The broadcast unit: a pipelined k-ary tree with a register at each node.
//! It accepts a new instruction (or scalar datum) each clock cycle and
//! delivers it to all PEs after ⌈log_k p⌉ cycles. The broadcast tree is
//! "not pipelined as deeply as the reduction network, since the broadcast
//! network does not perform any computation" — hence the configurable,
//! typically higher, arity.

use crate::tree::{tree_depth, DelayLine};

/// Structural model of the broadcast tree.
#[derive(Debug, Clone)]
pub struct BroadcastTree<T> {
    num_pes: usize,
    arity: usize,
    line: DelayLine<T>,
}

impl<T: Clone> BroadcastTree<T> {
    /// Build a k-ary broadcast tree over `num_pes` leaves.
    pub fn new(num_pes: usize, arity: usize) -> Self {
        assert!(arity >= 2);
        let latency = tree_depth(num_pes, arity);
        BroadcastTree { num_pes, arity, line: DelayLine::new(latency) }
    }

    /// Latency in cycles (⌈log_k p⌉).
    pub fn latency(&self) -> u64 {
        self.line.latency()
    }

    /// Tree arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of internal register nodes in the tree (used by the FPGA
    /// resource model): one root plus ⌈p/k⌉-grouped levels.
    pub fn node_count(&self) -> usize {
        let mut nodes = 0;
        let mut level = self.num_pes;
        while level > 1 {
            level = level.div_ceil(self.arity);
            nodes += level;
        }
        nodes.max(1)
    }

    /// Advance one cycle, optionally injecting a value at the root; when a
    /// value reaches the leaves this cycle, it is returned as a vector with
    /// one copy per PE.
    pub fn tick(&mut self, input: Option<T>) -> Option<Vec<T>> {
        self.line.tick(input).map(|v| std::iter::repeat_n(v, self.num_pes).collect())
    }

    /// Values currently moving down the tree.
    pub fn occupancy(&self) -> usize {
        self.line.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_geometry() {
        assert_eq!(BroadcastTree::<u32>::new(16, 4).latency(), 2);
        assert_eq!(BroadcastTree::<u32>::new(16, 2).latency(), 4);
        assert_eq!(BroadcastTree::<u32>::new(1, 2).latency(), 0);
        assert_eq!(BroadcastTree::<u32>::new(50, 4).latency(), 3);
    }

    #[test]
    fn delivers_to_every_pe() {
        let mut t = BroadcastTree::new(8, 2);
        assert_eq!(t.tick(Some(7u32)), None); // cycle 0
        assert_eq!(t.tick(None), None); // 1
        assert_eq!(t.tick(None), None); // 2
        assert_eq!(t.tick(None), Some(vec![7; 8])); // emerges at latency 3
    }

    #[test]
    fn sustains_one_per_cycle() {
        let mut t = BroadcastTree::new(16, 4);
        let mut received = Vec::new();
        for c in 0..20u32 {
            if let Some(v) = t.tick(if c < 10 { Some(c) } else { None }) {
                received.push(v[0]);
                assert_eq!(v.len(), 16);
            }
        }
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn node_counts() {
        // 16 leaves, arity 4: 4 first-level nodes + 1 root = 5
        assert_eq!(BroadcastTree::<u32>::new(16, 4).node_count(), 5);
        // 16 leaves, arity 2: 8 + 4 + 2 + 1 = 15
        assert_eq!(BroadcastTree::<u32>::new(16, 2).node_count(), 15);
        // single PE: just the root register
        assert_eq!(BroadcastTree::<u32>::new(1, 2).node_count(), 1);
    }
}
