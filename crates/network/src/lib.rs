#![warn(missing_docs)]

//! # asc-network — broadcast/reduction network models
//!
//! The defining hardware of an associative SIMD processor (Section 6.4 of
//! the paper): a **broadcast unit** (pipelined k-ary tree carrying
//! instructions and scalar data from the control unit to the PE array) and
//! five **reduction units** (pipelined trees carrying data the other way):
//!
//! | unit | function | latency |
//! |------|----------|---------|
//! | broadcast | instruction/data distribution | ⌈log_k p⌉ |
//! | logic | bitwise AND/OR of integers and flags | ⌈log₂ p⌉ |
//! | max/min | signed/unsigned maximum/minimum | ⌈log₂ p⌉ |
//! | sum | saturating sum | ⌈log₂ p⌉ |
//! | response counter | exact count of responders | ⌈log₂ p⌉ |
//! | multiple response resolver | first responder (parallel result) | ⌈log₂ p⌉ |
//!
//! Every unit has an initiation rate of one operation per cycle — the
//! property that lets the fine-grain multithreaded pipeline issue a
//! reduction every cycle without structural hazards.
//!
//! This crate provides both **functional** models (what value comes out,
//! respecting the tree association order, which matters for the saturating
//! sum) and **structural** models ([`DelayLine`], [`PipelinedUnit`]) that
//! the cycle-accurate simulator uses to track occupancy and latency.

pub mod broadcast;
pub mod count;
pub mod logic;
pub mod maxmin;
pub mod resolver;
pub mod sum;
pub mod tree;
pub mod unit;

pub use broadcast::BroadcastTree;
pub use count::ResponseCounter;
pub use logic::LogicUnit;
pub use maxmin::MaxMinUnit;
pub use resolver::MultipleResponseResolver;
pub use sum::SumUnit;
pub use tree::{reduction_latency, tree_depth, DelayLine, PipelinedUnit};
pub use unit::NetUnit;

use asc_isa::{ReduceOp, Width, Word};
use asc_pe::ActiveMask;

/// Geometry and latency of the whole broadcast/reduction network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Arity (k) of the broadcast tree — "variable and chosen so as to
    /// maximize system performance".
    pub broadcast_arity: usize,
}

impl NetworkConfig {
    /// Construct; `num_pes >= 1`, `broadcast_arity >= 2`.
    pub fn new(num_pes: usize, broadcast_arity: usize) -> NetworkConfig {
        assert!(num_pes >= 1, "need at least one PE");
        assert!(broadcast_arity >= 2, "broadcast tree arity must be >= 2");
        NetworkConfig { num_pes, broadcast_arity }
    }

    /// Broadcast latency `b` = ⌈log_k p⌉ cycles.
    pub fn broadcast_latency(&self) -> u64 {
        tree_depth(self.num_pes, self.broadcast_arity)
    }

    /// Reduction latency `r` = ⌈log₂ p⌉ cycles (all reduction units are
    /// binary trees).
    pub fn reduction_latency(&self) -> u64 {
        reduction_latency(self.num_pes)
    }
}

/// The full network: functional entry points used by the instruction
/// executor. Stateless (the pipelined occupancy is tracked by the timing
/// core; these units have initiation rate 1/cycle so they never reject an
/// operation).
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
}

impl Network {
    /// Build the network for a given geometry.
    pub fn new(cfg: NetworkConfig) -> Network {
        Network { cfg }
    }

    /// Network geometry.
    pub fn config(&self) -> NetworkConfig {
        self.cfg
    }

    /// Reduce a per-PE value (a register plane) over the active set with
    /// the given operation. Inactive PEs contribute the operation's
    /// identity element, exactly as the hardware feeds identity values into
    /// the tree leaves. Reads the plane in place; the saturating sum keeps
    /// the canonical tree association order.
    pub fn reduce(&self, op: ReduceOp, values: &[Word], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(values.len(), self.cfg.num_pes);
        debug_assert_eq!(active.lanes(), self.cfg.num_pes);
        match op {
            ReduceOp::And | ReduceOp::Or => LogicUnit::reduce(op, values, active, w),
            ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU => {
                MaxMinUnit::reduce(op, values, active, w)
            }
            ReduceOp::Sum => SumUnit::reduce(values, active, w),
        }
    }

    /// Responder detection: OR (any) / AND (all) over a packed flag
    /// bitplane, 64 PEs per word.
    pub fn reduce_flags(
        &self,
        op: asc_isa::FlagReduceOp,
        flags: &[u64],
        active: &ActiveMask,
    ) -> bool {
        LogicUnit::reduce_flags(op, flags, active)
    }

    /// Exact responder count from the packed bitplane, saturating at the
    /// word width.
    pub fn count_responders(&self, flags: &[u64], active: &ActiveMask, w: Width) -> Word {
        ResponseCounter::count(flags, active, w)
    }

    /// Multiple response resolution: index of the first responder, if any.
    /// (The hardware's one-hot parallel output is materialized by the PE
    /// array only when an instruction stores it to a flag plane.)
    pub fn first_responder(&self, flags: &[u64], active: &ActiveMask) -> Option<usize> {
        MultipleResponseResolver::first_responder(flags, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper_prototype() {
        // The paper's Figure 1 assumes two broadcast stages and four
        // reduction stages; that is exactly p = 16 with a 4-ary broadcast
        // tree and binary reduction trees.
        let cfg = NetworkConfig::new(16, 4);
        assert_eq!(cfg.broadcast_latency(), 2);
        assert_eq!(cfg.reduction_latency(), 4);
    }

    #[test]
    fn latency_scaling() {
        for (p, k, b, r) in [
            (1, 2, 0, 0),
            (2, 2, 1, 1),
            (4, 2, 2, 2),
            (50, 2, 6, 6),
            (1024, 2, 10, 10),
            (1024, 4, 5, 10),
            (1024, 16, 3, 10),
            (1000, 4, 5, 10),
        ] {
            let cfg = NetworkConfig::new(p, k);
            assert_eq!(cfg.broadcast_latency(), b, "p={p} k={k}");
            assert_eq!(cfg.reduction_latency(), r, "p={p} k={k}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_pes_rejected() {
        NetworkConfig::new(0, 2);
    }

    #[test]
    #[should_panic]
    fn unary_tree_rejected() {
        NetworkConfig::new(4, 1);
    }
}
