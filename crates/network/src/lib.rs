#![warn(missing_docs)]

//! # asc-network — broadcast/reduction network models
//!
//! The defining hardware of an associative SIMD processor (Section 6.4 of
//! the paper): a **broadcast unit** (pipelined k-ary tree carrying
//! instructions and scalar data from the control unit to the PE array) and
//! five **reduction units** (pipelined trees carrying data the other way):
//!
//! | unit | function | latency |
//! |------|----------|---------|
//! | broadcast | instruction/data distribution | ⌈log_k p⌉ |
//! | logic | bitwise AND/OR of integers and flags | ⌈log₂ p⌉ |
//! | max/min | signed/unsigned maximum/minimum | ⌈log₂ p⌉ |
//! | sum | saturating sum | ⌈log₂ p⌉ |
//! | response counter | exact count of responders | ⌈log₂ p⌉ |
//! | multiple response resolver | first responder (parallel result) | ⌈log₂ p⌉ |
//!
//! Every unit has an initiation rate of one operation per cycle — the
//! property that lets the fine-grain multithreaded pipeline issue a
//! reduction every cycle without structural hazards.
//!
//! This crate provides both **functional** models (what value comes out,
//! respecting the tree association order, which matters for the saturating
//! sum) and **structural** models ([`DelayLine`], [`PipelinedUnit`]) that
//! the cycle-accurate simulator uses to track occupancy and latency.

pub mod broadcast;
pub mod count;
pub mod logic;
pub mod maxmin;
pub mod resolver;
pub mod sum;
pub mod tree;
pub mod unit;

pub use broadcast::BroadcastTree;
pub use count::ResponseCounter;
pub use logic::LogicUnit;
pub use maxmin::MaxMinUnit;
pub use resolver::MultipleResponseResolver;
pub use sum::SumUnit;
pub use tree::{reduction_latency, tree_depth, DelayLine, PipelinedUnit};
pub use unit::NetUnit;

use asc_isa::{ReduceOp, Width, Word};
use asc_pe::{ActiveMask, SegmentGeometry};

/// Geometry and latency of the whole broadcast/reduction network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Arity (k) of the broadcast tree — "variable and chosen so as to
    /// maximize system performance".
    pub broadcast_arity: usize,
    /// Core-affine segmentation of the PE array. When segmented, every
    /// reduction runs as a two-level tree: a leaf reduction per segment
    /// feeding a root combiner over the segment partials. Results and
    /// latencies are identical to the flat tree at every segment count.
    pub segments: SegmentGeometry,
}

impl NetworkConfig {
    /// Construct; `num_pes >= 1`, `broadcast_arity >= 2`. The segment
    /// geometry defaults to the automatic slicing (one segment per 4096
    /// lanes); see [`NetworkConfig::with_segments`].
    pub fn new(num_pes: usize, broadcast_arity: usize) -> NetworkConfig {
        assert!(num_pes >= 1, "need at least one PE");
        assert!(broadcast_arity >= 2, "broadcast tree arity must be >= 2");
        NetworkConfig { num_pes, broadcast_arity, segments: SegmentGeometry::new(num_pes, 0) }
    }

    /// Replace the segment geometry (must cover the same number of PEs).
    pub fn with_segments(mut self, segments: SegmentGeometry) -> NetworkConfig {
        assert_eq!(segments.num_pes(), self.num_pes, "segment geometry covers a different array");
        self.segments = segments;
        self
    }

    /// Broadcast latency `b` = ⌈log_k p⌉ cycles.
    ///
    /// This flat formula stays authoritative under segmentation: a k-ary
    /// tree over the segments feeding k-ary subtrees inside each segment
    /// has depth ⌈log_k s⌉ + ⌈log_k S⌉, which equals ⌈log_k p⌉ exactly
    /// when the segment length `S` is a power of `k` and overshoots by at
    /// most one stage otherwise — the model charges the flat depth so
    /// cycle counts are segment-invariant.
    pub fn broadcast_latency(&self) -> u64 {
        tree_depth(self.num_pes, self.broadcast_arity)
    }

    /// Reduction latency `r` = ⌈log₂ p⌉ cycles (all reduction units are
    /// binary trees). Equals the sum of the two stages of
    /// [`NetworkConfig::two_level_reduction_latency`], so the segmented
    /// network charges the same latency as the flat one.
    pub fn reduction_latency(&self) -> u64 {
        reduction_latency(self.num_pes)
    }

    /// The `(leaf, root)` stage depths of the two-level reduction tree:
    /// ⌈log₂ S⌉ cycles in each segment's tree plus ⌈log₂ s⌉ in the root
    /// combiner over the `s` segment partials. Because full segments span
    /// a power-of-two number of lanes, the stages compose exactly:
    /// `leaf + root == reduction_latency()` at every segment count.
    pub fn two_level_reduction_latency(&self) -> (u64, u64) {
        let geo = self.segments;
        if !geo.is_segmented() {
            return (self.reduction_latency(), 0);
        }
        (reduction_latency(geo.lanes_per_seg()), reduction_latency(geo.count()))
    }
}

/// The full network: functional entry points used by the instruction
/// executor. Stateless (the pipelined occupancy is tracked by the timing
/// core; these units have initiation rate 1/cycle so they never reject an
/// operation).
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
}

impl Network {
    /// Build the network for a given geometry.
    pub fn new(cfg: NetworkConfig) -> Network {
        Network { cfg }
    }

    /// Network geometry.
    pub fn config(&self) -> NetworkConfig {
        self.cfg
    }

    /// Reduce a per-PE value (a register plane) over the active set with
    /// the given operation. Inactive PEs contribute the operation's
    /// identity element, exactly as the hardware feeds identity values into
    /// the tree leaves. Reads the plane in place; the saturating sum keeps
    /// the canonical tree association order.
    pub fn reduce(&self, op: ReduceOp, values: &[Word], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(values.len(), self.cfg.num_pes);
        debug_assert_eq!(active.lanes(), self.cfg.num_pes);
        if self.cfg.segments.is_segmented() {
            return self.reduce_two_level(op, values, active, w);
        }
        match op {
            ReduceOp::And | ReduceOp::Or => LogicUnit::reduce(op, values, active, w),
            ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU => {
                MaxMinUnit::reduce(op, values, active, w)
            }
            ReduceOp::Sum => SumUnit::reduce(values, active, w),
        }
    }

    /// The segmented two-level tree: a leaf reduction per segment feeding
    /// a root combiner over the segment partials. Segments whose lanes are
    /// all inactive — one bit test against the mask's occupancy summary —
    /// are skipped entirely, so a reduction over a responder set confined
    /// to a few segments never walks the rest of a million-lane plane.
    ///
    /// Bit-exactness at every segment count: for the associative units the
    /// root fold is `ReduceOp::combine` over in-order partials, and a
    /// skipped segment would have contributed the identity, which is
    /// neutral; for the non-associative saturating sum the root runs the
    /// canonical masked tree over the segment partials, which reproduces
    /// the flat tree's association order exactly because segment lengths
    /// are a power of two (see [`tree::tree_reduce_masked_range`]). The
    /// occupancy summary is conservative (a stale bit may mark an all-zero
    /// segment as occupied) — never wrong, because such a segment just
    /// contributes the identity.
    fn reduce_two_level(
        &self,
        op: ReduceOp,
        values: &[Word],
        active: &ActiveMask,
        w: Width,
    ) -> Word {
        let geo = self.cfg.segments;
        let id = op.identity(w);
        if let ReduceOp::Sum = op {
            // Segment-occupancy bits on the stack (MAX_SEGMENTS = 256):
            // the root tree's mask, pruning empty segments by subtree.
            let mut occ = [0u64; asc_pe::segments::MAX_SEGMENTS / 64];
            let mut any = false;
            for s in 0..geo.count() {
                if active.range_occupied(geo.seg_tile_range(s)) {
                    occ[s / 64] |= 1 << (s % 64);
                    any = true;
                }
            }
            if !any {
                return id;
            }
            return tree::tree_reduce_masked(
                geo.count(),
                id,
                &occ,
                &|s| SumUnit::reduce_tiles(values, active, geo.seg_tile_range(s), w),
                &|a, b| a.saturating_add_signed(b, w),
            );
        }
        let mut acc = id;
        for s in 0..geo.count() {
            let tiles = geo.seg_tile_range(s);
            if !active.range_occupied(tiles.clone()) {
                continue;
            }
            let partial = match op {
                ReduceOp::And | ReduceOp::Or => {
                    LogicUnit::reduce_tiles(op, values, active, tiles, w)
                }
                ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU => {
                    MaxMinUnit::reduce_tiles(op, values, active, tiles, w)
                }
                ReduceOp::Sum => unreachable!(),
            };
            acc = op.combine(acc, partial, w);
        }
        acc
    }

    /// Responder detection: OR (any) / AND (all) over a packed flag
    /// bitplane, 64 PEs per word.
    pub fn reduce_flags(
        &self,
        op: asc_isa::FlagReduceOp,
        flags: &[u64],
        active: &ActiveMask,
    ) -> bool {
        let geo = self.cfg.segments;
        if geo.is_segmented() {
            let mut acc = op.identity();
            for s in 0..geo.count() {
                let tiles = geo.seg_tile_range(s);
                if !active.range_occupied(tiles.clone()) {
                    continue; // no active lane: contributes the identity
                }
                acc = op.combine(acc, LogicUnit::reduce_flags_tiles(op, flags, active, tiles));
                // short-circuit exactly as the flat word scan does
                if acc != op.identity() {
                    return acc;
                }
            }
            return acc;
        }
        LogicUnit::reduce_flags(op, flags, active)
    }

    /// Exact responder count from the packed bitplane, saturating at the
    /// word width.
    pub fn count_responders(&self, flags: &[u64], active: &ActiveMask, w: Width) -> Word {
        let geo = self.cfg.segments;
        if geo.is_segmented() {
            // Per-segment raw counts summed in u64, saturated once at the
            // root — identical to the flat unit's width-unconstrained
            // internal adder tree.
            let total: u64 = (0..geo.count())
                .map(|s| geo.seg_tile_range(s))
                .filter(|tiles| active.range_occupied(tiles.clone()))
                .map(|tiles| ResponseCounter::count_tiles(flags, active, tiles))
                .sum();
            return Word::new(total.min(w.mask() as u64) as u32, w);
        }
        ResponseCounter::count(flags, active, w)
    }

    /// Multiple response resolution: index of the first responder, if any.
    /// (The hardware's one-hot parallel output is materialized by the PE
    /// array only when an instruction stores it to a flag plane.)
    pub fn first_responder(&self, flags: &[u64], active: &ActiveMask) -> Option<usize> {
        let geo = self.cfg.segments;
        if geo.is_segmented() {
            // Segments are scanned in ascending order, so the first
            // occupied segment with a responder holds the global winner —
            // the min-PE-index semantics of the flat resolver.
            return (0..geo.count()).map(|s| geo.seg_tile_range(s)).find_map(|tiles| {
                if !active.range_occupied(tiles.clone()) {
                    return None;
                }
                MultipleResponseResolver::first_responder_tiles(flags, active, tiles)
            });
        }
        MultipleResponseResolver::first_responder(flags, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper_prototype() {
        // The paper's Figure 1 assumes two broadcast stages and four
        // reduction stages; that is exactly p = 16 with a 4-ary broadcast
        // tree and binary reduction trees.
        let cfg = NetworkConfig::new(16, 4);
        assert_eq!(cfg.broadcast_latency(), 2);
        assert_eq!(cfg.reduction_latency(), 4);
    }

    #[test]
    fn latency_scaling() {
        for (p, k, b, r) in [
            (1, 2, 0, 0),
            (2, 2, 1, 1),
            (4, 2, 2, 2),
            (50, 2, 6, 6),
            (1024, 2, 10, 10),
            (1024, 4, 5, 10),
            (1024, 16, 3, 10),
            (1000, 4, 5, 10),
        ] {
            let cfg = NetworkConfig::new(p, k);
            assert_eq!(cfg.broadcast_latency(), b, "p={p} k={k}");
            assert_eq!(cfg.reduction_latency(), r, "p={p} k={k}");
        }
    }

    #[test]
    fn two_level_latency_composes_exactly() {
        // leaf + root == flat ⌈log₂ p⌉ at every geometry: the stage split
        // re-associates the tree without adding depth, because full
        // segments span a power-of-two number of lanes.
        for p in [1usize, 16, 100, 4096, 4097, 70_000, 1 << 18, (1 << 20) - 3, 1 << 20] {
            for req in [0usize, 1, 2, 7, 64, 256] {
                let cfg = NetworkConfig::new(p, 4).with_segments(SegmentGeometry::new(p, req));
                let (leaf, root) = cfg.two_level_reduction_latency();
                assert_eq!(leaf + root, cfg.reduction_latency(), "p={p} req={req}");
            }
        }
    }

    #[test]
    fn saturating_sum_association_across_segment_boundary() {
        // 130 PEs, 1-tile segments: lanes 63|64 and 127|128 straddle
        // segment boundaries. The values are chosen so node-by-node
        // saturation is order-sensitive: the canonical tree pairs (100,
        // 100) -> 127 (saturated), then 127 + (-100) = 27 — any
        // re-association across the boundary (e.g. summing segment 0
        // fully before segment 1) would change the result.
        let w = Width::W8;
        let n = 130;
        let mut vals = vec![Word::ZERO; n];
        vals[62] = Word::from_i64(100, w);
        vals[63] = Word::from_i64(100, w); // pairs with 62 inside seg 0
        vals[64] = Word::from_i64(-100, w); // first lane of seg 1
        vals[128] = Word::from_i64(77, w); // ragged last segment
        let mut active = ActiveMask::new(n);
        for i in [62, 63, 64, 128] {
            active.set(i, true);
        }
        let flat = Network::new(NetworkConfig::new(n, 2)).reduce(ReduceOp::Sum, &vals, &active, w);
        for req in [2usize, 3, 130] {
            let cfg = NetworkConfig::new(n, 2).with_segments(SegmentGeometry::new(n, req));
            let seg = Network::new(cfg).reduce(ReduceOp::Sum, &vals, &active, w);
            assert_eq!(seg, flat, "req={req}");
        }
        // Document the actual value: ((100+100)->127) + (-100) = 27, +77 = 104.
        assert_eq!(flat.to_i64(w), 104);
    }

    #[test]
    fn segmented_network_matches_flat_on_all_ops() {
        use asc_isa::FlagReduceOp;
        let w = Width::W16;
        let n = 70_001; // many segments at 1-tile granularity, ragged tail
        let vals: Vec<Word> =
            (0..n).map(|i| Word::from_i64((i as i64 * 37 % 4001) - 2000, w)).collect();
        let mut bools = vec![false; n];
        for i in (0..n).step_by(97) {
            bools[i] = true;
        }
        bools[n - 1] = true;
        let active = ActiveMask::from_bools(&bools);
        let flags: Vec<u64> = active.words().to_vec();
        let flat = Network::new(NetworkConfig::new(n, 4));
        for req in [3usize, 16, 256] {
            let seg =
                Network::new(NetworkConfig::new(n, 4).with_segments(SegmentGeometry::new(n, req)));
            for op in [
                ReduceOp::Sum,
                ReduceOp::Max,
                ReduceOp::Min,
                ReduceOp::MaxU,
                ReduceOp::MinU,
                ReduceOp::And,
                ReduceOp::Or,
            ] {
                assert_eq!(
                    seg.reduce(op, &vals, &active, w),
                    flat.reduce(op, &vals, &active, w),
                    "req={req} op={op:?}"
                );
            }
            assert_eq!(
                seg.count_responders(&flags, &active, w),
                flat.count_responders(&flags, &active, w),
                "req={req}"
            );
            assert_eq!(
                seg.first_responder(&flags, &active),
                flat.first_responder(&flags, &active),
                "req={req}"
            );
            for op in [FlagReduceOp::Any, FlagReduceOp::All] {
                assert_eq!(
                    seg.reduce_flags(op, &flags, &active),
                    flat.reduce_flags(op, &flags, &active),
                    "req={req} op={op:?}"
                );
            }
            // empty active set: identities everywhere
            let none = ActiveMask::new(n);
            assert_eq!(seg.reduce(ReduceOp::Sum, &vals, &none, w), Word::ZERO);
            assert_eq!(seg.first_responder(&flags, &none), None);
        }
    }

    #[test]
    #[should_panic]
    fn zero_pes_rejected() {
        NetworkConfig::new(0, 2);
    }

    #[test]
    #[should_panic]
    fn unary_tree_rejected() {
        NetworkConfig::new(4, 1);
    }
}
