//! The multiple response resolver (MRR): identifies the *first* responder
//! in a set, implementing the sequential and single selection modes of
//! responder resolution. Unlike the other reduction units its output is a
//! **parallel** value: a one-hot flag vector marking the first active PE
//! whose input flag is set.
//!
//! In hardware the MRR is a pipelined parallel prefix network (latency
//! ⌈log₂ p⌉). Two implementations are provided: the specification
//! (`resolve_naive`: a linear scan) and the parallel-prefix network the
//! hardware actually builds (`resolve`: Kogge–Stone style inclusive
//! prefix-OR, then `out[i] = in[i] & !prefix[i-1]`). The property tests
//! prove them equivalent.

use asc_pe::ActiveMask;

/// Functional model of the multiple response resolver.
pub struct MultipleResponseResolver;

impl MultipleResponseResolver {
    /// Bitplane fast path: index of the first responder under the mask,
    /// straight from the packed flag plane. A word-level scan finds the
    /// first nonzero `flags & active` word; `trailing_zeros` picks the
    /// lowest-numbered PE within it. This is the path the executor uses —
    /// the one-hot output vector of the hardware is reconstructed by the
    /// PE array when (and only when) an instruction stores it.
    pub fn first_responder(flags: &[u64], active: &ActiveMask) -> Option<usize> {
        debug_assert_eq!(flags.len(), active.words().len());
        Self::first_responder_tiles(flags, active, 0..flags.len())
    }

    /// [`MultipleResponseResolver::first_responder`] restricted to the
    /// tiles in `tiles`: one segment's resolution. Because segments are
    /// scanned in ascending order, the first segment with a responder
    /// yields the global minimum PE index.
    pub fn first_responder_tiles(
        flags: &[u64],
        active: &ActiveMask,
        tiles: std::ops::Range<usize>,
    ) -> Option<usize> {
        let base = tiles.start;
        flags[tiles.clone()].iter().zip(&active.words()[tiles]).enumerate().find_map(
            |(wi, (&f, &a))| {
                let r = f & a;
                (r != 0).then(|| (base + wi) * 64 + r.trailing_zeros() as usize)
            },
        )
    }
    /// Parallel-prefix implementation, as the hardware computes it.
    pub fn resolve(flags: &[bool], active: &[bool]) -> Vec<bool> {
        let n = flags.len();
        debug_assert_eq!(active.len(), n);
        // effective responder inputs
        let resp: Vec<bool> = (0..n).map(|i| flags[i] && active[i]).collect();
        // Kogge-Stone inclusive prefix OR
        let mut prefix = resp.clone();
        let mut dist = 1;
        while dist < n {
            let prev = prefix.clone();
            for i in dist..n {
                prefix[i] = prev[i] || prev[i - dist];
            }
            dist *= 2;
        }
        (0..n).map(|i| resp[i] && (i == 0 || !prefix[i - 1])).collect()
    }

    /// Specification: linear scan for the first responder.
    pub fn resolve_naive(flags: &[bool], active: &[bool]) -> Vec<bool> {
        let n = flags.len();
        let mut out = vec![false; n];
        for i in 0..n {
            if flags[i] && active[i] {
                out[i] = true;
                break;
            }
        }
        out
    }

    /// Index of the first responder, if any (host-side convenience).
    pub fn first_index(flags: &[bool], active: &[bool]) -> Option<usize> {
        (0..flags.len()).find(|&i| flags[i] && active[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_first() {
        let flags = [false, true, true, false, true];
        let active = [true; 5];
        let out = MultipleResponseResolver::resolve(&flags, &active);
        assert_eq!(out, vec![false, true, false, false, false]);
        assert_eq!(MultipleResponseResolver::first_index(&flags, &active), Some(1));
    }

    #[test]
    fn mask_excludes_earlier_responders() {
        let flags = [true, true, true];
        let active = [false, false, true];
        let out = MultipleResponseResolver::resolve(&flags, &active);
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn no_responders() {
        let out = MultipleResponseResolver::resolve(&[false; 4], &[true; 4]);
        assert_eq!(out, vec![false; 4]);
        assert_eq!(MultipleResponseResolver::first_index(&[false; 4], &[true; 4]), None);
    }

    #[test]
    fn empty_array() {
        assert!(MultipleResponseResolver::resolve(&[], &[]).is_empty());
    }

    #[test]
    fn single_pe() {
        assert_eq!(MultipleResponseResolver::resolve(&[true], &[true]), vec![true]);
        assert_eq!(MultipleResponseResolver::resolve(&[true], &[false]), vec![false]);
    }

    proptest! {
        /// The parallel-prefix network equals the linear-scan
        /// specification on all inputs.
        #[test]
        fn prefix_equals_naive(
            flags in proptest::collection::vec(any::<bool>(), 0..200),
            active in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let n = flags.len().min(active.len());
            prop_assert_eq!(
                MultipleResponseResolver::resolve(&flags[..n], &active[..n]),
                MultipleResponseResolver::resolve_naive(&flags[..n], &active[..n])
            );
        }

        /// The bitplane fast path finds the same PE as the linear-scan
        /// specification over the boolean vectors.
        #[test]
        fn bitplane_path_equals_first_index(
            flags in proptest::collection::vec(any::<bool>(), 0..200),
            active in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let n = flags.len().min(active.len());
            let packed = ActiveMask::from_bools(&flags[..n]).words().to_vec();
            let mask = ActiveMask::from_bools(&active[..n]);
            prop_assert_eq!(
                MultipleResponseResolver::first_responder(&packed, &mask),
                MultipleResponseResolver::first_index(&flags[..n], &active[..n])
            );
        }

        /// The output is always one-hot or all-zero, and the hot bit (if
        /// any) is a responder.
        #[test]
        fn output_is_one_hot(
            flags in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let active = vec![true; flags.len()];
            let out = MultipleResponseResolver::resolve(&flags, &active);
            let hot: Vec<usize> =
                (0..out.len()).filter(|&i| out[i]).collect();
            prop_assert!(hot.len() <= 1);
            if let Some(&i) = hot.first() {
                prop_assert!(flags[i]);
                prop_assert!(flags[..i].iter().all(|&f| !f));
            } else {
                prop_assert!(flags.iter().all(|&f| !f));
            }
        }
    }
}
