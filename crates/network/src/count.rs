//! The response counter: counts PEs whose responder bit is set. The ASC
//! model only requires a some/none test, but "due to the pipelined
//! implementation, the simpler counter would not have been any faster than
//! the exact one", so the unit produces an exact count via a pipelined
//! binary adder tree.
//!
//! With the flag file stored as packed bitplanes the functional model is a
//! handful of `count_ones` instructions: each `u64` word ANDs the
//! responder plane with the active mask and popcounts 64 PEs at once —
//! no per-PE loop and no allocation.

use asc_isa::{Width, Word};
use asc_pe::ActiveMask;

/// Functional model of the response counter.
pub struct ResponseCounter;

impl ResponseCounter {
    /// Exact count of active PEs with the flag set, straight from the
    /// packed bitplane. The internal adder tree is wide enough for any PE
    /// count; the final result saturates at the machine word's unsigned
    /// maximum when it cannot be represented (documented simulator
    /// semantics — the prototype's PE counts never approach this).
    pub fn count(flags: &[u64], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(flags.len(), active.words().len());
        let total = Self::count_tiles(flags, active, 0..flags.len());
        Word::new(total.min(w.mask() as u64) as u32, w)
    }

    /// Raw (unsaturated) responder count over the tiles in `tiles` — one
    /// segment's partial in the two-level adder tree. The root sums the
    /// partials in `u64` and saturates once, which is exactly what the
    /// width-unconstrained internal tree of the hardware does.
    pub fn count_tiles(flags: &[u64], active: &ActiveMask, tiles: std::ops::Range<usize>) -> u64 {
        flags[tiles.clone()]
            .iter()
            .zip(&active.words()[tiles])
            .map(|(&f, &a)| u64::from((f & a).count_ones()))
            .sum()
    }

    /// The some/none binary test the ASC model minimally requires: any
    /// word of the plane with a responder under the mask.
    pub fn any(flags: &[u64], active: &ActiveMask) -> bool {
        flags.iter().zip(active.words()).any(|(&f, &a)| f & a != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Pack a boolean flag column the same way the PE array stores planes.
    fn pack(flags: &[bool]) -> Vec<u64> {
        ActiveMask::from_bools(flags).words().to_vec()
    }

    #[test]
    fn counts_exactly() {
        let flags = pack(&[true, false, true, true]);
        let active = ActiveMask::from_bools(&[true, true, true, false]);
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W16).to_u32(), 2);
        assert!(ResponseCounter::any(&flags, &active));
        let none = ActiveMask::from_bools(&[true, false]);
        assert!(!ResponseCounter::any(&pack(&[false, true]), &none));
    }

    #[test]
    fn zero_responders() {
        let all = ActiveMask::all(8);
        assert_eq!(ResponseCounter::count(&pack(&[false; 8]), &all, Width::W8).to_u32(), 0);
        let empty = ActiveMask::new(0);
        assert_eq!(ResponseCounter::count(&[], &empty, Width::W8).to_u32(), 0);
    }

    #[test]
    fn saturates_at_word_max() {
        // 300 responders cannot be represented in 8 bits
        let flags = pack(&vec![true; 300]);
        let active = ActiveMask::all(300);
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W8).to_u32(), 255);
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W16).to_u32(), 300);
    }

    proptest! {
        /// The word-parallel popcount matches a sequential per-PE count.
        #[test]
        fn matches_popcount(
            flags in proptest::collection::vec(any::<bool>(), 0..200),
            active in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let n = flags.len().min(active.len());
            let expect = (0..n).filter(|&i| flags[i] && active[i]).count() as u32;
            let mask = ActiveMask::from_bools(&active[..n]);
            let packed = pack(&flags[..n]);
            let got = ResponseCounter::count(&packed, &mask, Width::W32);
            prop_assert_eq!(got.to_u32(), expect);
            prop_assert_eq!(ResponseCounter::any(&packed, &mask), expect > 0);
        }
    }
}
