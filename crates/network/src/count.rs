//! The response counter: counts PEs whose responder bit is set. The ASC
//! model only requires a some/none test, but "due to the pipelined
//! implementation, the simpler counter would not have been any faster than
//! the exact one", so the unit produces an exact count via a pipelined
//! binary adder tree.

use asc_isa::{Width, Word};

use crate::tree::tree_reduce;

/// Functional model of the response counter.
pub struct ResponseCounter;

impl ResponseCounter {
    /// Exact count of active PEs with the flag set. The internal adder tree
    /// is wide enough for any PE count; the final result saturates at the
    /// machine word's unsigned maximum when it cannot be represented
    /// (documented simulator semantics — the prototype's PE counts never
    /// approach this).
    pub fn count(flags: &[bool], active: &[bool], w: Width) -> Word {
        let leaves: Vec<u64> = flags.iter().zip(active).map(|(&f, &a)| u64::from(f && a)).collect();
        let total = tree_reduce(&leaves, 0, |a, b| a + b);
        Word::new(total.min(w.mask() as u64) as u32, w)
    }

    /// The some/none binary test the ASC model minimally requires.
    pub fn any(flags: &[bool], active: &[bool]) -> bool {
        flags.iter().zip(active).any(|(&f, &a)| f && a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_exactly() {
        let flags = [true, false, true, true];
        let active = [true, true, true, false];
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W16).to_u32(), 2);
        assert!(ResponseCounter::any(&flags, &active));
        assert!(!ResponseCounter::any(&[false, true], &[true, false]));
    }

    #[test]
    fn zero_responders() {
        assert_eq!(ResponseCounter::count(&[false; 8], &[true; 8], Width::W8).to_u32(), 0);
        assert_eq!(ResponseCounter::count(&[], &[], Width::W8).to_u32(), 0);
    }

    #[test]
    fn saturates_at_word_max() {
        // 300 responders cannot be represented in 8 bits
        let flags = vec![true; 300];
        let active = vec![true; 300];
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W8).to_u32(), 255);
        assert_eq!(ResponseCounter::count(&flags, &active, Width::W16).to_u32(), 300);
    }

    proptest! {
        /// The adder tree matches a sequential popcount.
        #[test]
        fn matches_popcount(
            flags in proptest::collection::vec(any::<bool>(), 0..128),
            active in proptest::collection::vec(any::<bool>(), 0..128),
        ) {
            let n = flags.len().min(active.len());
            let expect = (0..n).filter(|&i| flags[i] && active[i]).count() as u32;
            let got = ResponseCounter::count(&flags[..n], &active[..n], Width::W32);
            prop_assert_eq!(got.to_u32(), expect);
            prop_assert_eq!(
                ResponseCounter::any(&flags[..n], &active[..n]),
                expect > 0
            );
        }
    }
}
