//! Tree geometry, the canonical binary-tree reduction order, and the
//! structural pipeline primitives ([`DelayLine`], [`PipelinedUnit`]).

use std::collections::VecDeque;

/// Depth of a k-ary tree with `leaves` leaves: ⌈log_k leaves⌉. A single
/// leaf needs no tree (depth 0).
pub fn tree_depth(leaves: usize, arity: usize) -> u64 {
    assert!(arity >= 2);
    if leaves <= 1 {
        return 0;
    }
    let mut depth = 0u64;
    let mut reach = 1usize;
    while reach < leaves {
        reach = reach.saturating_mul(arity);
        depth += 1;
    }
    depth
}

/// Latency of a binary reduction tree: ⌈log₂ p⌉ cycles.
pub fn reduction_latency(num_pes: usize) -> u64 {
    tree_depth(num_pes, 2)
}

/// Reduce a slice with a binary tree over adjacent pairs, level by level —
/// the association order of the hardware adder/comparator trees.
///
/// This matters: the saturating sum is **not associative**, so the result
/// is *defined* as the value produced by this tree shape. All functional
/// models and the reference implementations in the tests use this same
/// order.
pub fn tree_reduce<T: Copy>(values: &[T], identity: T, combine: impl Fn(T, T) -> T) -> T {
    if values.is_empty() {
        return identity;
    }
    let mut level: Vec<T> = values.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 { combine(pair[0], pair[1]) } else { pair[0] });
        }
        level = next;
    }
    level[0]
}

/// Allocation-free variant of [`tree_reduce`]: reduces the `n` leaves
/// produced by `leaf(0..n)` in **exactly the same association order** as
/// `tree_reduce` over a materialized slice, without building the leaf
/// vector or any intermediate levels.
///
/// The equivalence rests on one observation about the level-order tree:
/// the root combines the subtree over the first `s` leaves with the
/// subtree over the rest, where `s` is the largest power of two strictly
/// less than `n` (for `n` an exact power of two, the halves). The
/// recursion applies that split at every node.
pub fn tree_reduce_with<T: Copy>(
    n: usize,
    identity: T,
    leaf: &impl Fn(usize) -> T,
    combine: &impl Fn(T, T) -> T,
) -> T {
    fn go<T: Copy>(
        start: usize,
        len: usize,
        leaf: &impl Fn(usize) -> T,
        combine: &impl Fn(T, T) -> T,
    ) -> T {
        match len {
            1 => leaf(start),
            2 => combine(leaf(start), leaf(start + 1)),
            _ => {
                // the boundary of the root's left subtree: half of len
                // rounded up to a power of two (= largest power of two
                // strictly below len, except exact powers, which halve)
                let split = len.next_power_of_two() >> 1;
                combine(
                    go(start, split, leaf, combine),
                    go(start + split, len - split, leaf, combine),
                )
            }
        }
    }
    if n == 0 {
        return identity;
    }
    go(0, n, leaf, combine)
}

/// True if any bit of `mask` is set in lane range `[start, end)`.
/// `mask` is packed 64 lanes per word, bit `i % 64` of word `i / 64`.
#[inline]
fn any_set(mask: &[u64], start: usize, end: usize) -> bool {
    let w0 = start / 64;
    let w1 = (end - 1) / 64;
    let lo = u64::MAX << (start % 64);
    let hi = u64::MAX >> (63 - (end - 1) % 64);
    if w0 == w1 {
        mask[w0] & lo & hi != 0
    } else {
        mask[w0] & lo != 0 || mask[w1] & hi != 0 || mask[w0 + 1..w1].iter().any(|&m| m != 0)
    }
}

/// Mask-pruned [`tree_reduce_with`]: the same association order with the
/// inactive leaves *eliminated* rather than materialized as identity
/// values. Exact whenever `combine(x, id) == combine(id, x) == x` — true
/// of every reduction unit's (combine, identity) pair, including the
/// non-associative saturating sum (adding zero never changes a value or
/// saturates) — because eliding an identity operand leaves the other
/// subtree's value unchanged at that node. Subtrees containing no active
/// leaf are skipped after a packed-word test, so the cost scales with the
/// number of *active* lanes, not the array size: the associative kernels
/// spend most of their reductions over small responder sets carved out of
/// a large array, where the full `2n - 1`-node walk of the identity-padded
/// tree is almost entirely identity traffic.
///
/// `mask` is the packed active set (64 lanes per `u64`, tail bits zero);
/// `leaf` is only ever invoked for active lane indices.
pub fn tree_reduce_masked<T: Copy>(
    n: usize,
    identity: T,
    mask: &[u64],
    leaf: &impl Fn(usize) -> T,
    combine: &impl Fn(T, T) -> T,
) -> T {
    tree_reduce_masked_range(0, n, identity, mask, leaf, combine)
}

/// [`tree_reduce_masked`] over the leaf range `[start, start + len)` — the
/// entry point of the two-level segmented tree. When `start` is a multiple
/// of a power-of-two segment length `S` and `len <= S`, the recursion here
/// is **identical** to the subtree the flat canonical tree builds over the
/// same range (every flat-tree node covering more than `S` leaves splits
/// at a multiple of `S`), so per-segment reductions combined by a canonical
/// tree over the segment partials reproduce the flat result bit for bit —
/// including the non-associative saturating sum.
pub fn tree_reduce_masked_range<T: Copy>(
    start: usize,
    len: usize,
    identity: T,
    mask: &[u64],
    leaf: &impl Fn(usize) -> T,
    combine: &impl Fn(T, T) -> T,
) -> T {
    if len == 0 || !any_set(mask, start, start + len) {
        return identity;
    }
    go_masked(start, len, mask, leaf, combine)
}

fn go_masked<T: Copy>(
    start: usize,
    len: usize,
    mask: &[u64],
    leaf: &impl Fn(usize) -> T,
    combine: &impl Fn(T, T) -> T,
) -> T {
    // invariant: [start, start + len) holds at least one active leaf
    if len == 1 {
        return leaf(start);
    }
    let split = len.next_power_of_two() >> 1;
    let left = any_set(mask, start, start + split);
    let right = any_set(mask, start + split, start + len);
    match (left, right) {
        (true, true) => combine(
            go_masked(start, split, mask, leaf, combine),
            go_masked(start + split, len - split, mask, leaf, combine),
        ),
        (true, false) => go_masked(start, split, mask, leaf, combine),
        (false, true) => go_masked(start + split, len - split, mask, leaf, combine),
        (false, false) => unreachable!("range invariant violated"),
    }
}

/// A fixed-latency, fully pipelined delay line: the structural model of a
/// pipelined tree. One value may enter per cycle ([`DelayLine::tick`]); it
/// emerges `latency` ticks later. With `latency == 0` the input appears at
/// the output in the same tick (a wire).
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: u64,
    /// In-flight values with the tick at which they emerge.
    inflight: VecDeque<(u64, T)>,
    now: u64,
}

impl<T> DelayLine<T> {
    /// Create a delay line with the given latency in ticks.
    pub fn new(latency: u64) -> DelayLine<T> {
        DelayLine { latency, inflight: VecDeque::new(), now: 0 }
    }

    /// The configured latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Advance one cycle, optionally inserting a value, and return the
    /// value (if any) that emerges this cycle.
    pub fn tick(&mut self, input: Option<T>) -> Option<T> {
        if let Some(v) = input {
            self.inflight.push_back((self.now + self.latency, v));
        }
        let out = match self.inflight.front() {
            Some(&(due, _)) if due <= self.now => self.inflight.pop_front().map(|(_, v)| v),
            _ => None,
        };
        self.now += 1;
        out
    }

    /// Number of values currently in flight.
    pub fn occupancy(&self) -> usize {
        self.inflight.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

/// A pipelined functional unit: a [`DelayLine`] that also applies a
/// function when the value enters — the structural model of a pipelined
/// reduction tree (the combine happens *inside* the pipe; only the timing
/// is observable).
#[derive(Debug, Clone)]
pub struct PipelinedUnit<I, O> {
    line: DelayLine<O>,
    f: fn(&I) -> O,
}

impl<I, O> PipelinedUnit<I, O> {
    /// Create with a latency and the unit's function.
    pub fn new(latency: u64, f: fn(&I) -> O) -> Self {
        PipelinedUnit { line: DelayLine::new(latency), f }
    }

    /// Advance one cycle, optionally starting an operation; returns the
    /// result completing this cycle, if any.
    pub fn tick(&mut self, input: Option<&I>) -> Option<O> {
        let mapped = input.map(|i| (self.f)(i));
        self.line.tick(mapped)
    }

    /// Operations in flight.
    pub fn occupancy(&self) -> usize {
        self.line.occupancy()
    }

    /// Latency in cycles.
    pub fn latency(&self) -> u64 {
        self.line.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_edge_cases() {
        assert_eq!(tree_depth(1, 2), 0);
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 2);
        assert_eq!(tree_depth(16, 4), 2);
        assert_eq!(tree_depth(17, 4), 3);
        assert_eq!(tree_depth(65536, 2), 16);
    }

    #[test]
    fn tree_reduce_matches_fold_for_associative_op() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(tree_reduce(&v, 0, |a, b| a + b), v.iter().sum());
        assert_eq!(tree_reduce(&v, u64::MAX, u64::min), 1);
        assert_eq!(tree_reduce::<u64>(&[], 7, |a, b| a + b), 7);
        assert_eq!(tree_reduce(&[42u64], 0, |a, b| a + b), 42);
    }

    #[test]
    fn tree_reduce_association_order() {
        // Non-associative combine exposes the order: pairwise adjacent,
        // level by level, odd element passes through.
        let order = tree_reduce(&["a", "b", "c"], "", |a, b| {
            Box::leak(format!("({a}{b})").into_boxed_str())
        });
        assert_eq!(order, "((ab)c)");
        let order = tree_reduce(&["a", "b", "c", "d", "e"], "", |a, b| {
            Box::leak(format!("({a}{b})").into_boxed_str())
        });
        assert_eq!(order, "(((ab)(cd))e)");
    }

    #[test]
    fn tree_reduce_with_matches_tree_reduce_association() {
        // The allocation-free recursion must reproduce the level-order
        // association exactly (the saturating sum is non-associative, so
        // any deviation is a behavioral change).
        let combine = |a: &'static str, b: &'static str| -> &'static str {
            Box::leak(format!("({a}{b})").into_boxed_str())
        };
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];
        for n in 0..=names.len() {
            let by_slice = tree_reduce(&names[..n], "", combine);
            let by_leaf = tree_reduce_with(n, "", &|i| names[i], &combine);
            assert_eq!(by_slice, by_leaf, "n={n}");
        }
        // and for a larger, non-associative numeric combine
        let sat = |a: i64, b: i64| (a + b).clamp(-100, 100);
        for n in [31usize, 32, 33, 100, 1000] {
            let leaves: Vec<i64> = (0..n as i64).map(|i| i * 7 % 23 - 11).collect();
            assert_eq!(
                tree_reduce(&leaves, 0, sat),
                tree_reduce_with(n, 0, &|i| leaves[i], &sat),
                "n={n}"
            );
        }
    }

    #[test]
    fn segmented_composition_matches_flat_tree() {
        // Per-segment canonical trees joined by a canonical tree over the
        // segment partials must equal the flat masked tree bit for bit —
        // for a non-associative (saturating) combine, power-of-two segment
        // lengths, ragged tails, and arbitrary masks. This is the
        // correctness theorem behind the two-level reduction network.
        let sat = |a: i64, b: i64| (a + b).clamp(-100, 100);
        for n in [5usize, 64, 65, 127, 128, 300, 1000] {
            let leaves: Vec<i64> = (0..n as i64).map(|i| i * 13 % 37 - 18).collect();
            let mask: Vec<u64> = (0..n.div_ceil(64))
                .map(|w| (w as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
                .collect();
            let flat = tree_reduce_masked(n, 0, &mask, &|i| leaves[i], &sat);
            for s_tiles in [1usize, 2, 4] {
                let s = s_tiles * 64;
                let segs = n.div_ceil(s);
                let partial = |si: usize| {
                    let start = si * s;
                    tree_reduce_masked_range(
                        start,
                        (n - start).min(s),
                        0,
                        &mask,
                        &|i| leaves[i],
                        &sat,
                    )
                };
                // exact segment occupancy
                let mut occ = vec![0u64; segs.div_ceil(64)];
                for si in 0..segs {
                    let start = si * s;
                    if any_set(&mask, start, start + (n - start).min(s)) {
                        occ[si / 64] |= 1 << (si % 64);
                    }
                }
                let two_level = tree_reduce_masked(segs, 0, &occ, &partial, &sat);
                assert_eq!(two_level, flat, "n={n} seg={s}");
                // conservative occupancy (every bit set) must agree too:
                // a spuriously "occupied" empty segment contributes the
                // identity, which is neutral at every node.
                let all = vec![u64::MAX; segs.div_ceil(64)];
                let conservative = tree_reduce_masked(segs, 0, &all, &partial, &sat);
                assert_eq!(conservative, flat, "n={n} seg={s} conservative");
            }
        }
    }

    #[test]
    fn delay_line_latency_and_rate() {
        let mut d: DelayLine<u32> = DelayLine::new(3);
        // one value per tick in, each emerges exactly 3 ticks later
        let mut outs = Vec::new();
        for t in 0..10u32 {
            let out = d.tick(if t < 5 { Some(t) } else { None });
            outs.push(out);
        }
        assert_eq!(
            outs,
            vec![None, None, None, Some(0), Some(1), Some(2), Some(3), Some(4), None, None]
        );
        assert!(d.is_empty());
    }

    #[test]
    fn zero_latency_is_a_wire() {
        let mut d: DelayLine<u32> = DelayLine::new(0);
        assert_eq!(d.tick(Some(9)), Some(9));
        assert_eq!(d.tick(None), None);
    }

    #[test]
    fn full_occupancy_sustained() {
        // initiation rate 1/cycle: the pipe sustains `latency` in-flight ops
        let mut d: DelayLine<u64> = DelayLine::new(8);
        for t in 0..100u64 {
            let out = d.tick(Some(t));
            if t >= 8 {
                assert_eq!(out, Some(t - 8));
                assert_eq!(d.occupancy(), 8);
            }
        }
    }

    #[test]
    fn pipelined_unit_applies_function() {
        let mut u: PipelinedUnit<Vec<u32>, u32> =
            PipelinedUnit::new(2, |v: &Vec<u32>| v.iter().sum());
        assert_eq!(u.tick(Some(&vec![1, 2, 3])), None);
        assert_eq!(u.tick(None), None);
        assert_eq!(u.tick(None), Some(6));
    }
}
