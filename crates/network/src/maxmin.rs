//! The maximum/minimum unit. Earlier ASC processors used the bit-serial
//! Falkoff algorithm (one bit of the word per cycle); the multithreaded
//! design replaces it with a pipelined tree of comparators so multiple
//! threads can have max/min reductions in flight simultaneously. Both
//! algorithms are implemented here: the tree is the architecture's unit;
//! [`MaxMinUnit::falkoff_max`] is used by the non-pipelined baseline and as
//! a cross-check.

use asc_isa::{ReduceOp, Width, Word};
use asc_pe::ActiveMask;

/// Functional model of the max/min reduction unit.
pub struct MaxMinUnit;

impl MaxMinUnit {
    /// Tree reduction for `Max`/`Min`/`MaxU`/`MinU` over the active set,
    /// reading the register plane in place (no leaf vector).
    ///
    /// # Panics
    /// Panics if `op` is not a max/min operation.
    pub fn reduce(op: ReduceOp, values: &[Word], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(values.len(), active.lanes());
        Self::reduce_tiles(op, values, active, 0..active.words().len(), w)
    }

    /// [`MaxMinUnit::reduce`] restricted to the 64-lane tiles in `tiles` —
    /// one segment's leaf reduction in the two-level tree. Max/min are
    /// associative, so segment partials combine with `ReduceOp::combine`
    /// in any grouping.
    pub fn reduce_tiles(
        op: ReduceOp,
        values: &[Word],
        active: &ActiveMask,
        tiles: std::ops::Range<usize>,
        w: Width,
    ) -> Word {
        assert!(
            matches!(op, ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU),
            "max/min unit got {op:?}"
        );
        // Min/max are associative *and* commutative, so the canonical tree
        // order of the hardware produces the same word as a linear fold —
        // which lets the functional model walk only the set bits of the
        // packed active mask (64 inactive lanes cost one word test)
        // instead of feeding 2n-1 tree nodes identity values.
        //
        // The fold itself runs in an order-isomorphic unsigned key domain:
        // flipping the sign bit of a w-bit word maps signed order onto
        // unsigned order, after which every variant is a plain `u32`
        // min/max — branchless, no per-element op dispatch, and the
        // full-word chunks autovectorize. Ties are exact duplicates
        // (stored words are width-truncated), so the mapped fold returns
        // the identical word `ReduceOp::combine` would.
        let signed = matches!(op, ReduceOp::Max | ReduceOp::Min);
        let maximize = matches!(op, ReduceOp::Max | ReduceOp::MaxU);
        let flip = if signed { 1u32 << (w.bits() - 1) } else { 0 };
        let fold = |acc: u32, v: Word| {
            let key = v.0 ^ flip;
            if maximize {
                acc.max(key)
            } else {
                acc.min(key)
            }
        };
        let mut acc = op.identity(w).0 ^ flip;
        for wi in tiles {
            let mw = active.words()[wi];
            if mw == 0 {
                continue;
            }
            let base = wi * 64;
            if mw == u64::MAX {
                acc = values[base..base + 64].iter().fold(acc, |a, &v| fold(a, v));
            } else {
                let mut m = mw;
                while m != 0 {
                    acc = fold(acc, values[base + m.trailing_zeros() as usize]);
                    m &= m - 1;
                }
            }
        }
        Word(acc ^ flip)
    }

    /// The Falkoff bit-serial maximum: examine one bit per step from the
    /// most significant down, keeping only candidates that have the bit set
    /// whenever any candidate does. Runs in `width` steps — the per-cycle
    /// behaviour of the original non-pipelined ASC processors. Operates on
    /// *unsigned* ordering (signed max is the same after flipping the sign
    /// bit, which is what [`MaxMinUnit::falkoff_max_signed`] does).
    ///
    /// Returns the maximum over active PEs, or `None` if no PE is active.
    pub fn falkoff_max(values: &[Word], active: &[bool], w: Width) -> Option<Word> {
        let mut candidates: Vec<bool> = active.to_vec();
        if !candidates.iter().any(|&c| c) {
            return None;
        }
        for bit in (0..w.bits()).rev() {
            let m = 1u32 << bit;
            let any_set = values.iter().zip(&candidates).any(|(v, &c)| c && v.to_u32() & m != 0);
            if any_set {
                for (v, c) in values.iter().zip(candidates.iter_mut()) {
                    if *c && v.to_u32() & m == 0 {
                        *c = false;
                    }
                }
            }
        }
        values.iter().zip(&candidates).find(|(_, &c)| c).map(|(&v, _)| v)
    }

    /// Falkoff maximum under *signed* ordering (flip the sign bit, take the
    /// unsigned maximum, flip back).
    pub fn falkoff_max_signed(values: &[Word], active: &[bool], w: Width) -> Option<Word> {
        let sign = 1u32 << (w.bits() - 1);
        let flipped: Vec<Word> = values.iter().map(|v| Word::new(v.to_u32() ^ sign, w)).collect();
        Self::falkoff_max(&flipped, active, w).map(|v| Word::new(v.to_u32() ^ sign, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn words(vs: &[i64], w: Width) -> Vec<Word> {
        vs.iter().map(|&v| Word::from_i64(v, w)).collect()
    }

    #[test]
    fn signed_vs_unsigned() {
        let w = Width::W8;
        let vals = words(&[-1, 3, 100, -128], w);
        let all = ActiveMask::all(4);
        assert_eq!(MaxMinUnit::reduce(ReduceOp::Max, &vals, &all, w).to_i64(w), 100);
        assert_eq!(MaxMinUnit::reduce(ReduceOp::Min, &vals, &all, w).to_i64(w), -128);
        // unsigned: -1 is 0xff, the largest
        assert_eq!(MaxMinUnit::reduce(ReduceOp::MaxU, &vals, &all, w).to_u32(), 0xff);
        assert_eq!(MaxMinUnit::reduce(ReduceOp::MinU, &vals, &all, w).to_u32(), 3);
    }

    #[test]
    fn respects_active_mask() {
        let w = Width::W8;
        let vals = words(&[100, 50, 75], w);
        let act = ActiveMask::from_bools(&[false, true, true]);
        assert_eq!(MaxMinUnit::reduce(ReduceOp::Max, &vals, &act, w).to_i64(w), 75);
    }

    #[test]
    fn empty_set_gives_identity() {
        let w = Width::W8;
        let vals = words(&[1], w);
        let none = ActiveMask::new(1);
        assert_eq!(MaxMinUnit::reduce(ReduceOp::Max, &vals, &none, w).to_i64(w), w.smin());
        assert_eq!(MaxMinUnit::reduce(ReduceOp::Min, &vals, &none, w).to_i64(w), w.smax());
    }

    #[test]
    fn falkoff_examples() {
        let w = Width::W8;
        let vals = words(&[5, 200, 13, 200], w);
        let all = [true; 4];
        assert_eq!(MaxMinUnit::falkoff_max(&vals, &all, w).unwrap().to_u32(), 200);
        assert_eq!(MaxMinUnit::falkoff_max(&vals, &[false; 4], w), None);
        let signed = words(&[-5, 3, -120], w);
        assert_eq!(MaxMinUnit::falkoff_max_signed(&signed, &[true; 3], w).unwrap().to_i64(w), 3);
    }

    proptest! {
        /// Falkoff (bit-serial) and the comparator tree agree on every
        /// input, for unsigned and signed orderings.
        #[test]
        fn falkoff_equals_tree(
            raw in proptest::collection::vec(0u32..=u32::MAX, 1..40),
            actives in proptest::collection::vec(any::<bool>(), 1..40),
        ) {
            for w in Width::ALL {
                let n = raw.len().min(actives.len());
                let vals: Vec<Word> = raw[..n].iter().map(|&v| Word::new(v, w)).collect();
                let act = &actives[..n];
                let mask = ActiveMask::from_bools(act);
                if act.iter().any(|&a| a) {
                    let tree_u = MaxMinUnit::reduce(ReduceOp::MaxU, &vals, &mask, w);
                    prop_assert_eq!(MaxMinUnit::falkoff_max(&vals, act, w), Some(tree_u));
                    let tree_s = MaxMinUnit::reduce(ReduceOp::Max, &vals, &mask, w);
                    prop_assert_eq!(MaxMinUnit::falkoff_max_signed(&vals, act, w), Some(tree_s));
                } else {
                    prop_assert_eq!(MaxMinUnit::falkoff_max(&vals, act, w), None);
                }
            }
        }

        /// The tree result equals the sequential fold (max/min are
        /// associative, so order cannot matter — this guards the identity
        /// handling).
        #[test]
        fn tree_equals_fold(
            raw in proptest::collection::vec(0u32..=u32::MAX, 1..40),
        ) {
            let w = Width::W16;
            let vals: Vec<Word> = raw.iter().map(|&v| Word::new(v, w)).collect();
            let act = ActiveMask::all(vals.len());
            let tree = MaxMinUnit::reduce(ReduceOp::Max, &vals, &act, w);
            let fold = vals.iter().fold(Word::from_i64(w.smin(), w), |a, &b| a.max_signed(b, w));
            prop_assert_eq!(tree, fold);
        }
    }
}
