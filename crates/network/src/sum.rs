//! The sum unit: a pipelined binary adder tree producing the sum of a data
//! word from every PE. Not required by the ASC model, but "used in a number
//! of image and video processing algorithms". If overflow occurs while
//! computing the sum, the result saturates to the largest or smallest
//! representable value — at *every* tree node, which makes the operation
//! non-associative; the result is defined by the canonical tree order of
//! [`crate::tree::tree_reduce`], which [`crate::tree::tree_reduce_with`]
//! reproduces without materializing the leaves.

use asc_isa::{ReduceOp, Width, Word};
use asc_pe::ActiveMask;

use crate::tree::{tree_reduce_masked, tree_reduce_masked_range};

/// Functional model of the saturating sum reduction unit.
pub struct SumUnit;

impl SumUnit {
    /// Saturating signed sum over the active set (inactive PEs contribute
    /// zero), reading the register plane in place. The saturating add is
    /// non-associative, so the canonical tree order must be preserved —
    /// the mask-pruned tree keeps it exactly (adding the zero identity
    /// never changes a value or saturates, so eliding inactive leaves is
    /// an identity transformation on the node values).
    pub fn reduce(values: &[Word], active: &ActiveMask, w: Width) -> Word {
        debug_assert_eq!(values.len(), active.lanes());
        tree_reduce_masked(values.len(), Word::ZERO, active.words(), &|i| values[i], &|a, b| {
            a.saturating_add_signed(b, w)
        })
    }

    /// One segment's leaf adder tree: the canonical masked tree over the
    /// 64-lane tiles in `tiles` only. Because segment lengths are a power
    /// of two, combining these partials with the canonical tree over the
    /// segments reproduces [`SumUnit::reduce`] exactly — association
    /// order, node-by-node saturation and all (see
    /// [`crate::tree::tree_reduce_masked_range`]).
    pub fn reduce_tiles(
        values: &[Word],
        active: &ActiveMask,
        tiles: std::ops::Range<usize>,
        w: Width,
    ) -> Word {
        let start = tiles.start * 64;
        let end = values.len().min(tiles.end * 64);
        tree_reduce_masked_range(
            start,
            end - start,
            Word::ZERO,
            active.words(),
            &|i| values[i],
            &|a, b| a.saturating_add_signed(b, w),
        )
    }

    /// Reference: the exact (unbounded) signed sum, clamped once at the
    /// end. Differs from [`SumUnit::reduce`] only when intermediate nodes
    /// saturate; the tests characterize exactly when the two agree.
    pub fn exact_clamped(values: &[Word], active: &ActiveMask, w: Width) -> Word {
        let s: i64 = values
            .iter()
            .enumerate()
            .filter(|(i, _)| active.is_active(*i))
            .map(|(_, v)| v.to_i64(w))
            .sum();
        Word::from_i64(s.clamp(w.smin(), w.smax()), w)
    }

    /// Identity check helper.
    pub fn identity() -> Word {
        ReduceOp::Sum.identity(Width::W32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn words(vs: &[i64], w: Width) -> Vec<Word> {
        vs.iter().map(|&v| Word::from_i64(v, w)).collect()
    }

    #[test]
    fn small_sums_are_exact() {
        let w = Width::W8;
        let vals = words(&[1, 2, 3, 4, 5], w);
        let act = ActiveMask::all(5);
        assert_eq!(SumUnit::reduce(&vals, &act, w).to_i64(w), 15);
        assert_eq!(SumUnit::exact_clamped(&vals, &act, w).to_i64(w), 15);
    }

    #[test]
    fn saturates_positive_and_negative() {
        let w = Width::W8;
        let all = ActiveMask::all(3);
        let vals = words(&[100, 100, 100], w);
        assert_eq!(SumUnit::reduce(&vals, &all, w).to_i64(w), 127);
        let vals = words(&[-100, -100, -100], w);
        assert_eq!(SumUnit::reduce(&vals, &all, w).to_i64(w), -128);
    }

    #[test]
    fn inactive_pes_contribute_zero() {
        let w = Width::W16;
        let vals = words(&[1000, 2000, 3000], w);
        let some = ActiveMask::from_bools(&[true, false, true]);
        assert_eq!(SumUnit::reduce(&vals, &some, w).to_i64(w), 4000);
        assert_eq!(SumUnit::reduce(&vals, &ActiveMask::new(3), w).to_i64(w), 0);
    }

    #[test]
    fn tree_saturation_is_sticky() {
        // (100 + 100) saturates to 127 at the first node; adding -100
        // afterwards gives 27, whereas the exact sum 100 would not clamp.
        // This documents the hardware's node-by-node saturation semantics.
        let w = Width::W8;
        let vals = words(&[100, 100, -100, 0], w);
        let all = ActiveMask::all(4);
        assert_eq!(SumUnit::reduce(&vals, &all, w).to_i64(w), 27);
        assert_eq!(SumUnit::exact_clamped(&vals, &all, w).to_i64(w), 100);
    }

    proptest! {
        /// When all inputs share one sign, node saturation and final
        /// clamping agree.
        #[test]
        fn same_sign_matches_exact(
            raw in proptest::collection::vec(0i64..=127, 1..64),
        ) {
            let w = Width::W8;
            let vals = words(&raw, w);
            let act = ActiveMask::all(vals.len());
            prop_assert_eq!(
                SumUnit::reduce(&vals, &act, w),
                SumUnit::exact_clamped(&vals, &act, w)
            );
        }

        /// If the exact sum of absolute values fits in the width, no node
        /// can saturate, so the tree sum is exact.
        #[test]
        fn no_overflow_is_exact(
            raw in proptest::collection::vec(-40i64..=40, 1..3),
        ) {
            let w = Width::W8;
            let vals = words(&raw, w);
            let act = ActiveMask::all(vals.len());
            let abs_sum: i64 = raw.iter().map(|v| v.abs()).sum();
            prop_assume!(abs_sum <= 127);
            prop_assert_eq!(
                SumUnit::reduce(&vals, &act, w).to_i64(w),
                raw.iter().sum::<i64>()
            );
        }

        /// The mask-pruned tree must match the identity-padded canonical
        /// tree on every mask — including masks spanning several packed
        /// words and values whose intermediate nodes saturate, where any
        /// deviation from the canonical association order would show.
        #[test]
        fn masked_tree_matches_identity_padded_tree(
            raw in proptest::collection::vec(-128i64..=127, 1..200),
            actives in proptest::collection::vec(any::<bool>(), 200),
        ) {
            let w = Width::W8;
            let n = raw.len();
            let vals = words(&raw, w);
            let act = ActiveMask::from_bools(&actives[..n]);
            let leaf = |i: usize| if act.is_active(i) { vals[i] } else { Word::ZERO };
            let reference = crate::tree::tree_reduce_with(
                n,
                Word::ZERO,
                &leaf,
                &|a, b| a.saturating_add_signed(b, w),
            );
            prop_assert_eq!(SumUnit::reduce(&vals, &act, w), reference);
        }
    }
}
