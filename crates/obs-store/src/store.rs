//! The on-disk registry: a root directory (default `.mtasc/runs`)
//! holding one subdirectory per run — manifest plus whatever artifacts
//! the invocation wrote (report, profile, trace, heartbeat) — and an
//! append-only `index.jsonl` of manifests.
//!
//! The index is written twice per run: a `running` line at begin and a
//! final line at finish; readers deduplicate by id, **last line wins**.
//! A crash between the two leaves an honest `running` entry behind —
//! `runs list` shows it, `runs gc` reaps it. `gc` compacts the index.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use asc_core::obs::Json;

use crate::meta::{RunMeta, RunStatus};
use crate::ulid::{ulid, unix_ms};

/// Name of the index file under the registry root.
pub const INDEX_FILE: &str = "index.jsonl";

/// Name of the manifest file inside each run directory.
pub const META_FILE: &str = "run_meta.json";

/// Name of the live heartbeat artifact (`mtasc.progress.v1` JSON-Lines).
pub const HEARTBEAT_FILE: &str = "progress.jsonl";

/// Result of resolving a user-supplied run reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolve {
    /// Exactly one run matched.
    One(Box<RunMeta>),
    /// The prefix matched several runs (their ids, newest first).
    Ambiguous(Vec<String>),
    /// Nothing matched.
    NotFound,
}

/// A run registry rooted at a directory.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Open (creating if needed) a registry at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RunStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunStore { root })
    }

    /// The conventional registry location: `$MTASC_RUNS_DIR` if set,
    /// else `.mtasc/runs` under the current directory.
    pub fn default_root() -> PathBuf {
        match std::env::var_os("MTASC_RUNS_DIR") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from(".mtasc").join("runs"),
        }
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of a run id (not necessarily existing).
    pub fn run_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Begin recording a run: stamp id and start time (unless the caller
    /// pre-set them — tests and golden fixtures do, for determinism),
    /// create the run directory, write the manifest, and index the
    /// `running` entry.
    pub fn begin(&self, mut meta: RunMeta) -> io::Result<RunHandle> {
        if meta.id.is_empty() {
            meta.id = ulid();
        }
        if meta.started_unix_ms == 0 {
            meta.started_unix_ms = unix_ms();
        }
        fs::create_dir_all(self.run_dir(&meta.id))?;
        self.write_entry(&meta)?;
        Ok(RunHandle { store: self.clone(), meta })
    }

    /// Record a manifest as-is (both index and run-dir manifest) —
    /// the single-shot form of begin/finish used when the run already
    /// happened.
    pub fn record(&self, meta: &RunMeta) -> io::Result<()> {
        assert!(!meta.id.is_empty(), "record() requires a stamped id");
        fs::create_dir_all(self.run_dir(&meta.id))?;
        self.write_entry(meta)
    }

    /// Write the run-dir manifest and append the index line.
    fn write_entry(&self, meta: &RunMeta) -> io::Result<()> {
        fs::write(self.run_dir(&meta.id).join(META_FILE), meta.to_json().to_pretty())?;
        let mut index =
            fs::OpenOptions::new().create(true).append(true).open(self.root.join(INDEX_FILE))?;
        // one write(2) for the whole line: with O_APPEND that makes the
        // append atomic, so concurrent recorders sharing a registry can
        // never interleave mid-line (writeln! would issue several writes)
        let line = meta.to_json().to_compact() + "\n";
        index.write_all(line.as_bytes())
    }

    /// All recorded runs, newest first (ids are ULIDs, so id order is
    /// creation order). Returns the manifests and how many malformed
    /// index lines were skipped (e.g. a torn write from a crashed run).
    pub fn list(&self) -> io::Result<(Vec<RunMeta>, usize)> {
        let text = match fs::read_to_string(self.root.join(INDEX_FILE)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        };
        let mut metas: Vec<RunMeta> = Vec::new();
        let mut skipped = 0;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match Json::parse(line).ok().as_ref().and_then(RunMeta::from_json) {
                Some(meta) => {
                    // last line wins: finish supersedes begin
                    match metas.iter_mut().find(|m| m.id == meta.id) {
                        Some(slot) => *slot = meta,
                        None => metas.push(meta),
                    }
                }
                None => skipped += 1,
            }
        }
        metas.sort_by(|a, b| b.id.cmp(&a.id));
        Ok((metas, skipped))
    }

    /// Resolve a user-supplied run reference: an exact id, or a unique
    /// id prefix (case-insensitive, 4+ characters recommended).
    pub fn find(&self, query: &str) -> io::Result<Resolve> {
        let (metas, _) = self.list()?;
        if let Some(m) = metas.iter().find(|m| m.id == query) {
            return Ok(Resolve::One(Box::new(m.clone())));
        }
        let q = query.to_ascii_uppercase();
        let hits: Vec<&RunMeta> =
            metas.iter().filter(|m| m.id.to_ascii_uppercase().starts_with(&q)).collect();
        Ok(match hits.as_slice() {
            [] => Resolve::NotFound,
            [one] => Resolve::One(Box::new((*one).clone())),
            many => Resolve::Ambiguous(many.iter().map(|m| m.id.clone()).collect()),
        })
    }

    /// Keep the newest `keep` runs; delete every older run's directory
    /// and compact the index to the survivors. Returns the removed ids,
    /// oldest first.
    pub fn gc(&self, keep: usize) -> io::Result<Vec<String>> {
        let (metas, _) = self.list()?;
        let (kept, removed) = metas.split_at(keep.min(metas.len()));
        let mut removed_ids: Vec<String> = removed.iter().map(|m| m.id.clone()).collect();
        removed_ids.reverse();
        for id in &removed_ids {
            let dir = self.run_dir(id);
            if dir.exists() {
                fs::remove_dir_all(&dir)?;
            }
        }
        // compact: rewrite the index with the survivors, oldest first so
        // future appends keep chronological file order
        let mut out = String::new();
        for meta in kept.iter().rev() {
            out.push_str(&meta.to_json().to_compact());
            out.push('\n');
        }
        fs::write(self.root.join(INDEX_FILE), out)?;
        Ok(removed_ids)
    }

    /// Render the registry in Prometheus text exposition format:
    /// run counts by status plus per-run cycle/issue/IPC gauges for
    /// finished runs.
    pub fn prometheus(&self) -> io::Result<String> {
        let (metas, _) = self.list()?;
        Ok(prometheus_text(&metas))
    }
}

/// A run being recorded: the directory is on disk, the index says
/// `running`; call one of the `finish_*` methods when the run ends.
#[derive(Debug)]
pub struct RunHandle {
    store: RunStore,
    meta: RunMeta,
}

impl RunHandle {
    /// The run's registry id.
    pub fn id(&self) -> &str {
        &self.meta.id
    }

    /// The run's directory (exists).
    pub fn dir(&self) -> PathBuf {
        self.store.run_dir(&self.meta.id)
    }

    /// Path for an artifact inside the run directory.
    pub fn artifact_path(&self, name: &str) -> PathBuf {
        self.dir().join(name)
    }

    /// Register an artifact file the caller wrote into the run
    /// directory (deduplicated; recorded at finish).
    pub fn add_artifact(&mut self, name: &str) {
        if !self.meta.artifacts.iter().any(|a| a == name) {
            self.meta.artifacts.push(name.to_string());
        }
    }

    /// The manifest as recorded so far.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Finish cleanly with the run's totals.
    pub fn finish_ok(mut self, cycles: u64, issued: u64) -> io::Result<RunMeta> {
        self.meta.status = RunStatus::Ok;
        self.meta.cycles = cycles;
        self.meta.issued = issued;
        self.finish()
    }

    /// Finish with a fault description (partial totals are kept).
    pub fn finish_fault(mut self, fault: &str, cycles: u64, issued: u64) -> io::Result<RunMeta> {
        self.meta.status = RunStatus::Fault;
        self.meta.fault = Some(fault.to_string());
        self.meta.cycles = cycles;
        self.meta.issued = issued;
        self.finish()
    }

    fn finish(mut self) -> io::Result<RunMeta> {
        if self.meta.finished_unix_ms.is_none() {
            self.meta.finished_unix_ms = Some(unix_ms().max(self.meta.started_unix_ms));
        }
        self.store.write_entry(&self.meta)?;
        Ok(self.meta)
    }
}

/// The `runs list --json` document: an array of manifests (each a
/// `mtasc.run_meta.v1` object), newest first.
pub fn list_to_json(metas: &[RunMeta]) -> Json {
    Json::Arr(metas.iter().map(RunMeta::to_json).collect())
}

/// The shared filter/paginate pipeline behind `mtasc runs list` and the
/// server's `GET /api/v1/runs` — one implementation so the two surfaces
/// stay byte-for-byte interchangeable. Returns the selected page and the
/// total number of runs that survived the filters (pre-pagination).
pub fn filter_list(
    mut metas: Vec<RunMeta>,
    status: Option<RunStatus>,
    program: Option<&str>,
    limit: Option<usize>,
    offset: usize,
) -> (Vec<RunMeta>, usize) {
    if let Some(status) = status {
        metas.retain(|m| m.status == status);
    }
    if let Some(query) = program {
        metas.retain(|m| program_hash_matches(&m.program_hash, query));
    }
    let total = metas.len();
    let page = metas.into_iter().skip(offset).take(limit.unwrap_or(usize::MAX)).collect();
    (page, total)
}

/// Whether a manifest's program hash matches a user query: the full
/// `fnv1a64:<16 hex>` form, or a (case-insensitive) prefix of the hex
/// digits with or without the algorithm tag.
pub fn program_hash_matches(hash: &str, query: &str) -> bool {
    let hex = hash.strip_prefix("fnv1a64:").unwrap_or(hash);
    let q = query.strip_prefix("fnv1a64:").unwrap_or(query);
    !q.is_empty() && hex.len() >= q.len() && hex[..q.len()].eq_ignore_ascii_case(q)
}

/// Column rendering for `mtasc runs list`.
pub fn render_list(metas: &[RunMeta]) -> String {
    let mut out = String::from(
        "ID                          STATUS   KIND     CYCLES     ISSUED  IPC    NAME\n",
    );
    for m in metas {
        out.push_str(&format!(
            "{:<26}  {:<7}  {:<7}  {:>9}  {:>9}  {:<5}  {}\n",
            m.id,
            m.status.label(),
            m.kind,
            if m.status == RunStatus::Running { "-".to_string() } else { m.cycles.to_string() },
            if m.status == RunStatus::Running { "-".to_string() } else { m.issued.to_string() },
            if m.status == RunStatus::Running {
                "-".to_string()
            } else {
                format!("{:.3}", m.ipc())
            },
            m.name
        ));
    }
    out
}

/// Prometheus text exposition of a manifest list.
pub fn prometheus_text(metas: &[RunMeta]) -> String {
    let mut out = String::new();
    out.push_str("# HELP mtasc_runs_total Recorded runs in the registry, by status.\n");
    out.push_str("# TYPE mtasc_runs_total gauge\n");
    for status in RunStatus::ALL {
        let n = metas.iter().filter(|m| m.status == status).count();
        out.push_str(&format!("mtasc_runs_total{{status=\"{}\"}} {n}\n", status.label()));
    }
    let finished: Vec<&RunMeta> = metas.iter().filter(|m| m.status != RunStatus::Running).collect();
    for (metric, help) in [
        ("mtasc_run_cycles", "Total cycles of a finished run."),
        ("mtasc_run_issued", "Instructions issued by a finished run."),
        ("mtasc_run_ipc", "Issued per cycle of a finished run."),
    ] {
        out.push_str(&format!("# HELP {metric} {help}\n# TYPE {metric} gauge\n"));
        for m in &finished {
            let value = match metric {
                "mtasc_run_cycles" => m.cycles.to_string(),
                "mtasc_run_issued" => m.issued.to_string(),
                _ => format!("{:.6}", m.ipc()),
            };
            out.push_str(&format!(
                "{metric}{{id=\"{}\",kind=\"{}\",name=\"{}\",status=\"{}\"}} {value}\n",
                escape_label(&m.id),
                escape_label(&m.kind),
                escape_label(&m.name),
                m.status.label(),
            ));
        }
    }
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::program_hash;
    use crate::ulid::ulid_at;

    fn tmp_store(tag: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("mtasc-obs-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn begin_meta(name: &str) -> RunMeta {
        RunMeta::begin("run", name, program_hash(name), "pes=16 w16 fine-grain".into(), 16)
    }

    #[test]
    fn begin_finish_list_round_trip() {
        let store = tmp_store("round-trip");
        let h = store.begin(begin_meta("a.asc")).unwrap();
        let id_a = h.id().to_string();
        assert!(store.run_dir(&id_a).join(META_FILE).exists());

        // while running, list shows the running entry
        let (metas, skipped) = store.list().unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].status, RunStatus::Running);

        let finished = h.finish_ok(1000, 400).unwrap();
        assert_eq!(finished.status, RunStatus::Ok);
        let (metas, _) = store.list().unwrap();
        assert_eq!(metas.len(), 1, "finish supersedes begin (last line wins)");
        assert_eq!(metas[0].cycles, 1000);
        assert!(metas[0].finished_unix_ms.is_some());

        // a second, faulted run lists first (newest first)
        let h2 = store.begin(begin_meta("b.asc")).unwrap();
        let id_b = h2.id().to_string();
        h2.finish_fault("cycle limit", 50, 10).unwrap();
        let (metas, _) = store.list().unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].id, id_b);
        assert_eq!(metas[0].status, RunStatus::Fault);
        assert_eq!(metas[0].fault.as_deref(), Some("cycle limit"));
        assert_eq!(metas[1].id, id_a);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn find_resolves_exact_prefix_and_ambiguity() {
        let store = tmp_store("find");
        let mut a = begin_meta("a.asc");
        a.id = ulid_at(1000, 1);
        let mut b = begin_meta("b.asc");
        b.id = ulid_at(1000, 2);
        store.record(&a).unwrap();
        store.record(&b).unwrap();

        assert!(matches!(store.find(&a.id).unwrap(), Resolve::One(m) if m.id == a.id));
        // the two ids differ only in the last character
        let shared = &a.id[..25];
        assert!(matches!(store.find(shared).unwrap(), Resolve::Ambiguous(ids) if ids.len() == 2));
        assert!(matches!(store.find(&a.id.to_lowercase()).unwrap(), Resolve::One(_)));
        assert_eq!(store.find("01ZZZZ").unwrap(), Resolve::NotFound);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_the_newest_and_compacts() {
        let store = tmp_store("gc");
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let mut m = begin_meta(&format!("k{i}.asc"));
            m.id = ulid_at(1000 + i, 7);
            store.record(&m).unwrap();
            ids.push(m.id);
        }
        let removed = store.gc(1).unwrap();
        assert_eq!(removed, ids[..3].to_vec(), "oldest three removed, oldest first");
        for id in &removed {
            assert!(!store.run_dir(id).exists());
        }
        let (metas, _) = store.list().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, ids[3]);
        // index was compacted to one line
        let index = fs::read_to_string(store.root().join(INDEX_FILE)).unwrap();
        assert_eq!(index.lines().count(), 1);
        // gc with nothing to remove is a no-op
        assert!(store.gc(5).unwrap().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn malformed_index_lines_are_skipped_not_fatal() {
        let store = tmp_store("torn");
        let mut m = begin_meta("a.asc");
        m.id = ulid_at(1, 1);
        store.record(&m).unwrap();
        // simulate a torn append from a crashed writer
        let mut f =
            fs::OpenOptions::new().append(true).open(store.root().join(INDEX_FILE)).unwrap();
        writeln!(f, "{{\"schema\":\"mtasc.run_me").unwrap();
        drop(f);
        let (metas, skipped) = store.list().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(skipped, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn empty_registry_lists_empty() {
        let store = tmp_store("empty");
        let (metas, skipped) = store.list().unwrap();
        assert!(metas.is_empty());
        assert_eq!(skipped, 0);
        assert_eq!(store.find("anything").unwrap(), Resolve::NotFound);
        assert!(store.gc(3).unwrap().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let store = tmp_store("prom");
        let mut ok = begin_meta("a.asc");
        ok.id = ulid_at(1, 1);
        ok.status = RunStatus::Ok;
        ok.cycles = 100;
        ok.issued = 50;
        ok.finished_unix_ms = Some(2);
        let mut running = begin_meta("weird\"name\\x.asc");
        running.id = ulid_at(2, 2);
        store.record(&ok).unwrap();
        store.record(&running).unwrap();
        let text = store.prometheus().unwrap();
        assert!(text.contains("# TYPE mtasc_runs_total gauge"));
        assert!(text.contains("mtasc_runs_total{status=\"ok\"} 1"), "{text}");
        assert!(text.contains("mtasc_runs_total{status=\"running\"} 1"), "{text}");
        assert!(text.contains(&format!("mtasc_run_cycles{{id=\"{}\"", ok.id)), "{text}");
        assert!(text.contains("mtasc_run_ipc"), "{text}");
        assert!(text.contains("0.500000"), "{text}");
        // running runs contribute no per-run series; labels are escaped
        assert!(!text.contains("weird\"name"), "{text}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn filter_list_filters_and_paginates() {
        let mut metas = Vec::new();
        for i in 0..5u64 {
            let mut m = begin_meta(&format!("k{i}.asc"));
            m.id = ulid_at(1000 + i, i.into());
            if i % 2 == 0 {
                m.status = RunStatus::Ok;
            }
            metas.push(m);
        }
        metas.sort_by(|a, b| b.id.cmp(&a.id));
        let (all, total) = filter_list(metas.clone(), None, None, None, 0);
        assert_eq!((all.len(), total), (5, 5));
        let (ok, total) = filter_list(metas.clone(), Some(RunStatus::Ok), None, None, 0);
        assert_eq!((ok.len(), total), (3, 3));
        let (page, total) = filter_list(metas.clone(), None, None, Some(2), 1);
        assert_eq!((page.len(), total), (2, 5));
        assert_eq!(page[0].id, metas[1].id, "offset skips the newest");
        let hash = program_hash("k3.asc");
        let (hit, total) = filter_list(metas.clone(), None, Some(&hash), None, 0);
        assert_eq!((hit.len(), total), (1, 1));
        assert_eq!(hit[0].name, "k3.asc");
        // bare-hex prefix, case-insensitive
        let prefix = hash.strip_prefix("fnv1a64:").unwrap()[..6].to_uppercase();
        let (hit, _) = filter_list(metas, None, Some(&prefix), None, 0);
        assert_eq!(hit.len(), 1);
        assert!(!program_hash_matches(&hash, ""), "empty query matches nothing");
    }

    #[test]
    fn list_renderings() {
        let mut ok = begin_meta("a.asc");
        ok.id = ulid_at(1, 1);
        ok.status = RunStatus::Ok;
        ok.cycles = 100;
        ok.issued = 50;
        ok.finished_unix_ms = Some(2);
        let mut running = begin_meta("b.asc");
        running.id = ulid_at(2, 2);
        let metas = [running.clone(), ok.clone()];
        let table = render_list(&metas);
        assert!(table.starts_with("ID "), "{table}");
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("0.500"), "{table}");
        assert!(table.lines().nth(1).unwrap().contains('-'), "running rows show dashes");
        let json = list_to_json(&metas);
        assert_eq!(json.as_arr().unwrap().len(), 2);
        assert_eq!(RunMeta::from_json(&json.as_arr().unwrap()[1]).unwrap(), ok);
    }
}
