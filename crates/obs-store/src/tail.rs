//! Tail-follow readers over the registry's append-only files.
//!
//! Two consumers follow live registry files: `mtasc runs watch` (a
//! terminal tailer) and the `mtasc serve` SSE endpoint (a streaming HTTP
//! tailer). Both sit on the same primitive, [`LineTail`]: an incremental
//! reader that remembers its byte offset between polls, buffers a torn
//! (unterminated) final line until the writer completes it, and resets
//! itself when the file shrinks underneath it (a `gc` compaction).
//! [`HeartbeatTail`] parses the lines as `mtasc.progress.v1` samples;
//! [`IndexWatcher`] folds `index.jsonl` lines into the same
//! last-line-wins manifest view [`RunStore::list`] produces, without
//! re-reading the whole index on every poll.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use asc_core::obs::{Json, ProgressSample};

use crate::meta::RunMeta;
use crate::store::INDEX_FILE;

/// One poll's worth of progress from a [`LineTail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailChunk {
    /// Complete lines read since the previous poll, newline stripped.
    pub lines: Vec<String>,
    /// True when the file shrank and the tail restarted from the top
    /// (consumers holding derived state must rebuild it).
    pub reset: bool,
}

/// An incremental, torn-tail-tolerant line reader over a growing file.
///
/// Each [`poll`](LineTail::poll) reads only the bytes appended since the
/// previous poll and returns the newly *completed* lines; a trailing
/// partial line (a writer mid-append) is buffered, not returned, until
/// its newline arrives. A missing file reads as empty — the writer may
/// not have created it yet.
#[derive(Debug)]
pub struct LineTail {
    path: PathBuf,
    offset: u64,
    pending: Vec<u8>,
    lines_seen: usize,
}

impl LineTail {
    /// Tail `path` from the beginning.
    pub fn new(path: impl Into<PathBuf>) -> LineTail {
        LineTail { path: path.into(), offset: 0, pending: Vec::new(), lines_seen: 0 }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// 1-based line number of the next complete line `poll` will return.
    pub fn next_line_number(&self) -> usize {
        self.lines_seen + 1
    }

    /// Read newly appended bytes and return the newly completed lines.
    pub fn poll(&mut self) -> io::Result<TailChunk> {
        let mut file = match fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // the file may have been removed (gc) after we read some
                // of it: report a reset so derived state is dropped too
                let reset = self.offset > 0 || !self.pending.is_empty();
                self.offset = 0;
                self.pending.clear();
                self.lines_seen = 0;
                return Ok(TailChunk { lines: Vec::new(), reset });
            }
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        let mut reset = false;
        if len < self.offset {
            // the file shrank: a compaction rewrote it; start over
            self.offset = 0;
            self.pending.clear();
            self.lines_seen = 0;
            reset = true;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh)?;
        self.offset += fresh.len() as u64;
        self.pending.extend_from_slice(&fresh);
        let mut lines = Vec::new();
        while let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.pending.drain(..=nl).take(nl).collect();
            lines.push(String::from_utf8_lossy(&line).into_owned());
            self.lines_seen += 1;
        }
        Ok(TailChunk { lines, reset })
    }
}

/// One poll's worth of parsed heartbeats from a [`HeartbeatTail`].
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatBatch {
    /// Samples parsed from the newly completed lines, in file order.
    pub samples: Vec<ProgressSample>,
    /// 1-based line numbers of newly completed lines that failed to
    /// parse as `mtasc.progress.v1` (blank lines are not counted).
    pub malformed: Vec<usize>,
}

/// Tails a run's `progress.jsonl`, parsing each completed line as a
/// `mtasc.progress.v1` sample. The shared follow engine behind both
/// `mtasc runs watch` and the `mtasc serve` SSE stream.
#[derive(Debug)]
pub struct HeartbeatTail {
    tail: LineTail,
}

impl HeartbeatTail {
    /// Tail the heartbeat file at `path` from the beginning.
    pub fn new(path: impl Into<PathBuf>) -> HeartbeatTail {
        HeartbeatTail { tail: LineTail::new(path) }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        self.tail.path()
    }

    /// Parse the heartbeats completed since the previous poll.
    pub fn poll(&mut self) -> io::Result<HeartbeatBatch> {
        let line_base = self.tail.next_line_number();
        let chunk = self.tail.poll()?;
        let mut batch = HeartbeatBatch { samples: Vec::new(), malformed: Vec::new() };
        for (i, line) in chunk.lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line).ok().as_ref().and_then(ProgressSample::from_json) {
                Some(s) => batch.samples.push(s),
                None => batch.malformed.push(line_base + i),
            }
        }
        Ok(batch)
    }
}

/// An incremental reader of the registry index: folds newly appended
/// `index.jsonl` lines into the same deduplicated, newest-first manifest
/// view [`crate::RunStore::list`] computes from scratch, re-reading only
/// the appended bytes per poll. When the index is compacted (shrinks),
/// the watcher rebuilds from the top transparently.
#[derive(Debug)]
pub struct IndexWatcher {
    tail: LineTail,
    metas: Vec<RunMeta>,
    skipped: usize,
}

impl IndexWatcher {
    /// Watch the index of the registry rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> IndexWatcher {
        IndexWatcher {
            tail: LineTail::new(root.as_ref().join(INDEX_FILE)),
            metas: Vec::new(),
            skipped: 0,
        }
    }

    /// Fold in any new index lines and return the current manifests
    /// (newest first) plus the cumulative count of malformed lines.
    pub fn poll(&mut self) -> io::Result<(&[RunMeta], usize)> {
        let chunk = self.tail.poll()?;
        if chunk.reset {
            self.metas.clear();
            self.skipped = 0;
        }
        let mut changed = false;
        for line in chunk.lines.iter().filter(|l| !l.trim().is_empty()) {
            match Json::parse(line).ok().as_ref().and_then(RunMeta::from_json) {
                Some(meta) => {
                    // last line wins: finish supersedes begin
                    match self.metas.iter_mut().find(|m| m.id == meta.id) {
                        Some(slot) => *slot = meta,
                        None => self.metas.push(meta),
                    }
                    changed = true;
                }
                None => self.skipped += 1,
            }
        }
        if changed {
            self.metas.sort_by(|a, b| b.id.cmp(&a.id));
        }
        Ok((&self.metas, self.skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{program_hash, RunStatus};
    use crate::store::RunStore;
    use crate::ulid::ulid_at;
    use std::io::Write as _;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtasc-obs-tail-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append(path: &Path, text: &str) {
        let mut f = fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
        f.write_all(text.as_bytes()).unwrap();
    }

    #[test]
    fn line_tail_buffers_torn_lines() {
        let dir = tmp_dir("torn");
        let path = dir.join("log");
        let mut tail = LineTail::new(&path);
        // missing file reads as empty, not an error
        assert_eq!(tail.poll().unwrap().lines, Vec::<String>::new());
        append(&path, "alpha\nbet");
        let chunk = tail.poll().unwrap();
        assert_eq!(chunk.lines, vec!["alpha"]);
        assert!(!chunk.reset);
        // the torn tail stays buffered until its newline arrives
        assert_eq!(tail.poll().unwrap().lines, Vec::<String>::new());
        append(&path, "a\ngamma\n");
        assert_eq!(tail.poll().unwrap().lines, vec!["beta", "gamma"]);
        assert_eq!(tail.next_line_number(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn line_tail_resets_on_shrink() {
        let dir = tmp_dir("shrink");
        let path = dir.join("log");
        append(&path, "one\ntwo\n");
        let mut tail = LineTail::new(&path);
        assert_eq!(tail.poll().unwrap().lines.len(), 2);
        // a compaction rewrote the file smaller: tail restarts from zero
        fs::write(&path, "three\n").unwrap();
        let chunk = tail.poll().unwrap();
        assert!(chunk.reset);
        assert_eq!(chunk.lines, vec!["three"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_tail_parses_and_flags_malformed() {
        let dir = tmp_dir("hb");
        let path = dir.join("progress.jsonl");
        let mut tail = HeartbeatTail::new(&path);
        let sample = |cycle: u64| ProgressSample { cycle, ..ProgressSample::default() };
        append(&path, &format!("{}\n", sample(10).to_json().to_compact()));
        append(&path, "{\"schema\":\"mtasc.progress.v1\",\"cyc"); // torn
        let batch = tail.poll().unwrap();
        assert_eq!(batch.samples.len(), 1);
        assert_eq!(batch.samples[0].cycle, 10);
        assert!(batch.malformed.is_empty(), "torn tail is buffered, not malformed");
        append(&path, "le\":broken}\nnot json\n");
        append(&path, &format!("{}\n", sample(20).to_json().to_compact()));
        let batch = tail.poll().unwrap();
        assert_eq!(batch.samples.len(), 1);
        assert_eq!(batch.samples[0].cycle, 20);
        assert_eq!(batch.malformed, vec![2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_watcher_matches_full_list() {
        let dir = tmp_dir("watch");
        let store = RunStore::open(&dir).unwrap();
        let mut watcher = IndexWatcher::new(&dir);
        let (metas, skipped) = watcher.poll().unwrap();
        assert!(metas.is_empty());
        assert_eq!(skipped, 0);

        let meta = |i: u64, name: &str| {
            let mut m = RunMeta::begin("run", name, program_hash(name), "pes=16".into(), 16);
            m.id = ulid_at(1_000 + i, i.into());
            m
        };
        let h = store.begin(meta(1, "a.asc")).unwrap();
        store.record(&meta(2, "b.asc")).unwrap();
        let (metas, _) = watcher.poll().unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].status, RunStatus::Running, "newest first, still running");

        // finish supersedes begin incrementally, same as a full list()
        h.finish_ok(100, 40).unwrap();
        append(&store.root().join(INDEX_FILE), "{\"torn"); // torn tail: pending, not skipped
        let (metas, skipped) = watcher.poll().unwrap();
        let (full, _) = store.list().unwrap();
        assert_eq!(metas, &full[..]);
        assert_eq!(metas[1].status, RunStatus::Ok);
        assert_eq!(skipped, 0);

        // gc compacts the index: the watcher rebuilds transparently
        append(&store.root().join(INDEX_FILE), " line}\n");
        store.gc(1).unwrap();
        let (metas, skipped) = watcher.poll().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(skipped, 0, "reset clears the malformed count too");
        let (full, _) = store.list().unwrap();
        assert_eq!(metas, &full[..]);
        let _ = fs::remove_dir_all(&dir);
    }
}
