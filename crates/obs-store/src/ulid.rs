//! ULID run identifiers: 48 bits of millisecond timestamp + 80 bits of
//! randomness, rendered as 26 Crockford base32 characters. Lexicographic
//! order equals creation order (the registry index and `runs list` sort
//! by id), ids are filesystem-safe, and the timestamp is recoverable for
//! display. Hand-rolled — the build environment has no crate registry —
//! with the spec's *monotonic* generator: ids minted within one
//! millisecond increment the random field, so same-process ids never
//! tie or go backwards.

use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Crockford base32 (no I, L, O, U).
const ALPHABET: &[u8; 32] = b"0123456789ABCDEFGHJKMNPQRSTVWXYZ";

/// Length of a rendered ULID.
pub const ULID_LEN: usize = 26;

static LAST: Mutex<(u64, u128)> = Mutex::new((0, 0));

/// Mint a fresh, process-monotonic ULID at the current wall-clock time.
pub fn ulid() -> String {
    let ms = unix_ms();
    let mut last = LAST.lock().unwrap();
    if ms > last.0 {
        *last = (ms, entropy80());
    } else {
        // same millisecond (or clock went backwards): keep the stored
        // timestamp and bump the random field, per the monotonic spec
        last.1 = (last.1 + 1) & ((1u128 << 80) - 1);
    }
    ulid_at(last.0, last.1)
}

/// Render the ULID for a given timestamp and 80-bit random field
/// (deterministic; tests and golden fixtures use this directly).
pub fn ulid_at(unix_ms: u64, rand80: u128) -> String {
    let v: u128 = ((unix_ms as u128 & ((1 << 48) - 1)) << 80) | (rand80 & ((1 << 80) - 1));
    let mut out = String::with_capacity(ULID_LEN);
    for i in 0..ULID_LEN {
        let shift = 5 * (ULID_LEN - 1 - i);
        out.push(ALPHABET[((v >> shift) & 31) as usize] as char);
    }
    out
}

/// Recover the millisecond timestamp from a ULID (`None` if malformed).
pub fn ulid_ms(id: &str) -> Option<u64> {
    if id.len() != ULID_LEN {
        return None;
    }
    let mut v: u128 = 0;
    for c in id.bytes() {
        v = (v << 5) | decode_char(c)? as u128;
    }
    Some((v >> 80) as u64)
}

/// True if `id` is a syntactically valid ULID.
pub fn is_ulid(id: &str) -> bool {
    ulid_ms(id).is_some()
}

fn decode_char(c: u8) -> Option<u8> {
    // Crockford decoding folds case and the easily-confused letters
    let c = c.to_ascii_uppercase();
    let c = match c {
        b'I' | b'L' => b'1',
        b'O' => b'0',
        _ => c,
    };
    ALPHABET.iter().position(|&a| a == c).map(|p| p as u8)
}

/// Current wall-clock time as Unix milliseconds.
pub fn unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Render a Unix-milliseconds timestamp as UTC `YYYY-MM-DD HH:MM:SS`
/// (civil-date arithmetic, no locale).
pub fn format_unix_ms(ms: u64) -> String {
    let secs = ms / 1000;
    let (h, m, s) = ((secs / 3600) % 24, (secs / 60) % 60, secs % 60);
    let days = (secs / 86_400) as i64;
    let (y, mo, d) = civil_from_days(days);
    format!("{y:04}-{mo:02}-{d:02} {h:02}:{m:02}:{s:02}")
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// 80 bits of per-call entropy from the standard library's randomly
/// keyed SipHash (two independently keyed hashers), mixed with a
/// process-wide counter — not cryptographic, but collision-safe for run
/// ids.
fn entropy80() -> u128 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut lo = RandomState::new().build_hasher();
    lo.write_u64(n);
    lo.write_u64(std::process::id() as u64);
    let mut hi = RandomState::new().build_hasher();
    hi.write_u64(!n);
    ((hi.finish() as u128) << 64 | lo.finish() as u128) & ((1 << 80) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_timestamp() {
        let id = ulid_at(1_700_000_000_123, 42);
        assert_eq!(id.len(), ULID_LEN);
        assert_eq!(ulid_ms(&id), Some(1_700_000_000_123));
        assert!(is_ulid(&id));
        assert!(!is_ulid("not-a-ulid"));
        assert!(!is_ulid(""));
    }

    #[test]
    fn sorts_by_time_then_mint_order() {
        let a = ulid_at(1000, 5);
        let b = ulid_at(1000, 6);
        let c = ulid_at(1001, 0);
        assert!(a < b && b < c);
        // live ids are strictly increasing even within one millisecond
        let ids: Vec<String> = (0..100).map(|_| ulid()).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn decoding_folds_confusable_characters() {
        let id = ulid_at(123_456, 789);
        let folded: String = id.to_lowercase().replace('1', "l").replace('0', "O");
        assert_eq!(ulid_ms(&folded), Some(123_456));
    }

    #[test]
    fn formats_timestamps() {
        // 2023-11-14T22:13:20Z
        assert_eq!(format_unix_ms(1_700_000_000_000), "2023-11-14 22:13:20");
        assert_eq!(format_unix_ms(0), "1970-01-01 00:00:00");
    }
}
