//! The run manifest: one `mtasc.run_meta.v1` JSON document per recorded
//! run, describing what ran (program hash, config fingerprint), when,
//! how it ended, and which artifacts the run directory holds. The same
//! document — compact, one per line — is the registry's index format.

use asc_core::obs::{Json, MachineMeta};

use crate::ulid::format_unix_ms;

/// Schema tag on every manifest; bump on incompatible change.
pub const RUN_META_SCHEMA: &str = "mtasc.run_meta.v1";

/// How a recorded run ended (or that it has not yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Begun but not finished — either in flight or abandoned.
    Running,
    /// Finished cleanly.
    Ok,
    /// Finished with a simulation fault (deadlock, cycle limit, trap...).
    Fault,
}

impl RunStatus {
    /// All statuses, in display order.
    pub const ALL: [RunStatus; 3] = [RunStatus::Running, RunStatus::Ok, RunStatus::Fault];

    /// The wire/display label.
    pub fn label(self) -> &'static str {
        match self {
            RunStatus::Running => "running",
            RunStatus::Ok => "ok",
            RunStatus::Fault => "fault",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<RunStatus> {
        RunStatus::ALL.into_iter().find(|r| r.label() == s)
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Manifest of one recorded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Registry id (a ULID; lexicographic order = creation order).
    pub id: String,
    /// What kind of invocation recorded it: `run`, `profile`, `kernel`.
    pub kind: String,
    /// Human name: the source path or kernel name.
    pub name: String,
    /// FNV-1a/64 of the program source, `fnv1a64:` + 16 hex digits.
    pub program_hash: String,
    /// Config fingerprint, e.g.
    /// `pes=16 threads=16 arity=4 w16 b=2 r=4 fine-grain simd=avx2`.
    pub config: String,
    /// PE count (also inside `config`; first-class for list columns).
    pub pes: u64,
    /// Start of the run, Unix milliseconds.
    pub started_unix_ms: u64,
    /// End of the run, Unix milliseconds (`None` while running).
    pub finished_unix_ms: Option<u64>,
    /// Current status.
    pub status: RunStatus,
    /// Fault description when `status` is [`RunStatus::Fault`].
    pub fault: Option<String>,
    /// Total cycles (0 while running).
    pub cycles: u64,
    /// Instructions issued (0 while running).
    pub issued: u64,
    /// Artifact files present in the run directory, in recording order
    /// (e.g. `report.json`, `profile.json`, `progress.jsonl`).
    pub artifacts: Vec<String>,
}

impl RunMeta {
    /// A fresh, running manifest (the store stamps `id` and start time).
    pub fn begin(
        kind: &str,
        name: &str,
        program_hash: String,
        config: String,
        pes: u64,
    ) -> RunMeta {
        RunMeta {
            id: String::new(),
            kind: kind.to_string(),
            name: name.to_string(),
            program_hash,
            config,
            pes,
            started_unix_ms: 0,
            finished_unix_ms: None,
            status: RunStatus::Running,
            fault: None,
            cycles: 0,
            issued: 0,
            artifacts: Vec::new(),
        }
    }

    /// Issued per cycle (0 when unfinished).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Serialize as a `mtasc.run_meta.v1` object. `None` fields are
    /// elided; [`RunMeta::from_json`] restores them as `None`, so the
    /// round-trip is lossless.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("schema".into(), Json::str(RUN_META_SCHEMA)),
            ("id".into(), Json::str(&self.id)),
            ("kind".into(), Json::str(&self.kind)),
            ("name".into(), Json::str(&self.name)),
            ("program_hash".into(), Json::str(&self.program_hash)),
            ("config".into(), Json::str(&self.config)),
            ("pes".into(), Json::U64(self.pes)),
            ("started_unix_ms".into(), Json::U64(self.started_unix_ms)),
            ("status".into(), Json::str(self.status.label())),
        ];
        if let Some(ms) = self.finished_unix_ms {
            obj.push(("finished_unix_ms".into(), Json::U64(ms)));
        }
        if let Some(fault) = &self.fault {
            obj.push(("fault".into(), Json::str(fault)));
        }
        obj.push(("cycles".into(), Json::U64(self.cycles)));
        obj.push(("issued".into(), Json::U64(self.issued)));
        obj.push(("artifacts".into(), Json::Arr(self.artifacts.iter().map(Json::str).collect())));
        Json::Obj(obj)
    }

    /// Reconstruct from [`RunMeta::to_json`]'s output. `None` on schema
    /// mismatch or missing/mistyped fields.
    pub fn from_json(v: &Json) -> Option<RunMeta> {
        if v.get("schema")?.as_str()? != RUN_META_SCHEMA {
            return None;
        }
        let artifacts = v
            .get("artifacts")?
            .as_arr()?
            .iter()
            .map(|a| a.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        Some(RunMeta {
            id: v.get("id")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            name: v.get("name")?.as_str()?.to_string(),
            program_hash: v.get("program_hash")?.as_str()?.to_string(),
            config: v.get("config")?.as_str()?.to_string(),
            pes: v.get("pes")?.as_u64()?,
            started_unix_ms: v.get("started_unix_ms")?.as_u64()?,
            finished_unix_ms: v.get("finished_unix_ms").and_then(Json::as_u64),
            status: RunStatus::from_label(v.get("status")?.as_str()?)?,
            fault: v.get("fault").and_then(Json::as_str).map(str::to_string),
            cycles: v.get("cycles")?.as_u64()?,
            issued: v.get("issued")?.as_u64()?,
            artifacts,
        })
    }

    /// Parse a manifest document (strict: any parse or schema failure is
    /// an error message).
    pub fn parse(text: &str) -> Result<RunMeta, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        RunMeta::from_json(&v).ok_or_else(|| format!("not a {RUN_META_SCHEMA} document"))
    }

    /// Multi-line human rendering (`mtasc runs show`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run      {}\n", self.id));
        out.push_str(&format!("kind     {}  ({})\n", self.kind, self.name));
        out.push_str(&format!("status   {}", self.status));
        if let Some(fault) = &self.fault {
            out.push_str(&format!(": {fault}"));
        }
        out.push('\n');
        out.push_str(&format!("started  {} UTC\n", format_unix_ms(self.started_unix_ms)));
        if let Some(ms) = self.finished_unix_ms {
            let dur = ms.saturating_sub(self.started_unix_ms);
            out.push_str(&format!(
                "finished {} UTC  ({}.{:03} s)\n",
                format_unix_ms(ms),
                dur / 1000,
                dur % 1000
            ));
        }
        out.push_str(&format!("program  {}\n", self.program_hash));
        out.push_str(&format!("config   {}\n", self.config));
        if self.status != RunStatus::Running {
            out.push_str(&format!(
                "totals   {} cycles, {} issued, IPC {:.3}\n",
                self.cycles,
                self.issued,
                self.ipc()
            ));
        }
        if !self.artifacts.is_empty() {
            out.push_str(&format!("artifacts {}\n", self.artifacts.join(", ")));
        }
        out
    }
}

/// FNV-1a/64 of a byte string, rendered as the registry's
/// `fnv1a64:<16 hex>` program-hash form.
pub fn program_hash(source: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{h:016x}")
}

/// The registry's one-line config fingerprint for a machine geometry,
/// including the host execution strategy the run executed with — the
/// SIMD dispatch tier, the resolved segment count and the Rayon dispatch
/// threshold (both env-overridable via `MTASC_SEGMENTS` /
/// `MTASC_PAR_THRESHOLD`). Two runs with the same geometry but different
/// strategies are not comparable on wall time, so all three are part of
/// the machine-config identity.
pub fn config_fingerprint(meta: &MachineMeta) -> String {
    format!(
        "pes={} threads={} arity={} w{} b={} r={} {} simd={} seg={} pt={}",
        meta.pes,
        meta.threads,
        meta.arity,
        meta.width_bits,
        meta.b,
        meta.r,
        meta.sched,
        meta.simd,
        meta.segments,
        meta.par_threshold
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_meta(id: &str, status: RunStatus) -> RunMeta {
        RunMeta {
            id: id.to_string(),
            kind: "run".into(),
            name: "prog.asc".into(),
            program_hash: program_hash("halt"),
            config: "pes=16 threads=16 arity=4 w16 b=2 r=4 fine-grain simd=avx2 seg=1 pt=4096"
                .into(),
            pes: 16,
            started_unix_ms: 1_700_000_000_000,
            finished_unix_ms: (status != RunStatus::Running).then_some(1_700_000_001_500),
            status,
            fault: (status == RunStatus::Fault).then(|| "deadlock at cycle 42".into()),
            cycles: if status == RunStatus::Running { 0 } else { 1176 },
            issued: if status == RunStatus::Running { 0 } else { 412 },
            artifacts: if status == RunStatus::Running {
                vec![]
            } else {
                vec!["report.json".into(), "progress.jsonl".into()]
            },
        }
    }

    #[test]
    fn fingerprint_includes_execution_strategy() {
        let meta = MachineMeta {
            pes: 16,
            threads: 16,
            arity: 4,
            width_bits: 16,
            b: 2,
            r: 4,
            sched: "fine-grain".into(),
            simd: "avx512".into(),
            segments: 4,
            par_threshold: 4096,
        };
        assert_eq!(
            config_fingerprint(&meta),
            "pes=16 threads=16 arity=4 w16 b=2 r=4 fine-grain simd=avx512 seg=4 pt=4096"
        );
    }

    #[test]
    fn json_round_trips_in_every_status() {
        for status in RunStatus::ALL {
            let m = sample_meta("01HF2K3M4N5P6Q7R8S9T0V1W2X", status);
            let back = RunMeta::parse(&m.to_json().to_pretty()).unwrap();
            assert_eq!(back, m, "{status}");
        }
    }

    #[test]
    fn rejects_other_schemas() {
        assert!(RunMeta::parse(r#"{"schema":"mtasc.run_report.v1"}"#).is_err());
        assert!(RunMeta::parse("[]").is_err());
        assert!(RunMeta::parse("{").is_err());
    }

    #[test]
    fn text_rendering_names_the_fault() {
        let m = sample_meta("01HF2K3M4N5P6Q7R8S9T0V1W2X", RunStatus::Fault);
        let text = m.to_text();
        assert!(text.contains("status   fault: deadlock at cycle 42"), "{text}");
        assert!(text.contains("2023-11-14 22:13:20 UTC"), "{text}");
        assert!(text.contains("(1.500 s)"), "{text}");
        // a running manifest has no totals line
        let running = sample_meta("01HF2K3M4N5P6Q7R8S9T0V1W2X", RunStatus::Running).to_text();
        assert!(!running.contains("totals"), "{running}");
    }

    #[test]
    fn program_hash_is_stable_and_discriminating() {
        assert_eq!(program_hash(""), "fnv1a64:cbf29ce484222325");
        assert_ne!(program_hash("halt"), program_hash("halt\n"));
        assert!(program_hash("x").starts_with("fnv1a64:"));
    }
}
