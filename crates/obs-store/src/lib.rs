//! # asc-obs-store — the persistent run registry
//!
//! Every `mtasc run`, `mtasc profile`, and observed kernels-harness
//! invocation records itself here: a directory per run under the
//! registry root (default `.mtasc/runs`, overridable with
//! `$MTASC_RUNS_DIR`) holding a [`RunMeta`] manifest
//! (`mtasc.run_meta.v1`: program hash, config fingerprint, timestamps,
//! exit status, fault info) next to the run's report/profile/trace/
//! heartbeat artifacts, plus an append-only `index.jsonl` the `mtasc
//! runs` subcommands read:
//!
//! * `runs list` — paginated, status-filtered listing ([`RunStore::list`],
//!   [`render_list`], [`list_to_json`]);
//! * `runs show <id>` — manifest + recorded hot-spot table
//!   ([`RunStore::find`] resolves unique id prefixes);
//! * `runs diff <a> <b>` — delegates to the direction-aware
//!   `stats diff` engine over recorded artifacts;
//! * `runs gc --keep N` — prunes old run directories and compacts the
//!   index ([`RunStore::gc`]);
//! * `runs export --prometheus` — text exposition format for scrape
//!   tooling ([`RunStore::prometheus`]);
//! * `runs watch <id>` — tails the run's `progress.jsonl` heartbeat
//!   (written live by `asc_core`'s `ProgressSampler`).
//!
//! Run ids are hand-rolled monotonic [ULIDs](ulid()): creation-ordered,
//! filesystem-safe, timestamp-recoverable. Everything serializes through
//! `asc_core::obs::Json`; the crate adds **no external dependencies**.

mod meta;
mod store;
mod tail;
mod ulid;

pub use meta::{config_fingerprint, program_hash, RunMeta, RunStatus, RUN_META_SCHEMA};
pub use store::{
    filter_list, list_to_json, program_hash_matches, prometheus_text, render_list, Resolve,
    RunHandle, RunStore, HEARTBEAT_FILE, INDEX_FILE, META_FILE,
};
pub use tail::{HeartbeatBatch, HeartbeatTail, IndexWatcher, LineTail, TailChunk};
pub use ulid::{format_unix_ms, is_ulid, ulid, ulid_at, ulid_ms, unix_ms, ULID_LEN};

#[cfg(all(test, feature = "proptest"))]
mod proptests;
