//! Property tests: the registry's wire formats round-trip losslessly —
//! `mtasc.run_meta.v1` manifests (through both the pretty run-dir form
//! and the compact index form) and `mtasc.progress.v1` heartbeat lines.

use asc_core::obs::{Json, ProgressSample};
use proptest::prelude::*;

use crate::{ulid_at, RunMeta, RunStatus};

/// splitmix64 — a tiny deterministic generator so these tests need no
/// rand dependency; each call advances the state.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A string exercising JSON escaping paths.
fn gnarly_string(state: &mut u64) -> String {
    const POOL: [&str; 8] =
        ["kernel", "a/b.asc", "q\"uote", "back\\slash", "tab\there", "new\nline", "uni £🦀", ""];
    POOL[(next(state) % POOL.len() as u64) as usize].to_string()
}

fn arbitrary_meta(state: &mut u64) -> RunMeta {
    let status = RunStatus::ALL[(next(state) % 3) as usize];
    let finished = status != RunStatus::Running;
    RunMeta {
        id: ulid_at(next(state) & ((1 << 48) - 1), next(state) as u128),
        kind: ["run", "profile", "kernel"][(next(state) % 3) as usize].into(),
        name: gnarly_string(state),
        program_hash: format!("fnv1a64:{:016x}", next(state)),
        config: gnarly_string(state),
        pes: next(state) % 65_537,
        started_unix_ms: next(state),
        finished_unix_ms: finished.then(|| next(state)),
        status,
        fault: (status == RunStatus::Fault).then(|| gnarly_string(state)),
        cycles: next(state),
        issued: next(state),
        artifacts: (0..next(state) % 4).map(|_| gnarly_string(state)).collect(),
    }
}

fn arbitrary_sample(state: &mut u64) -> ProgressSample {
    let mut stalls = [0u64; 10];
    for s in stalls.iter_mut() {
        // mix zeros in: zero-valued reasons are elided on the wire
        *s = if next(state) % 2 == 0 { 0 } else { next(state) };
    }
    ProgressSample {
        cycle: next(state),
        issued: next(state),
        stall_cycles: next(state),
        stalls,
        live_threads: (next(state) % 4096) as u32,
        // zero (cadence unknown) is elided on the wire, so mix it in
        every: if next(state) % 2 == 0 { 0 } else { next(state) },
        final_sample: next(state) % 2 == 0,
    }
}

proptest! {
    /// A manifest survives JSON round-trips through both renderings.
    #[test]
    fn run_meta_round_trips(seed in any::<u64>()) {
        let mut state = seed;
        for _ in 0..16 {
            let meta = arbitrary_meta(&mut state);
            let compact = RunMeta::parse(&meta.to_json().to_compact()).unwrap();
            prop_assert_eq!(&compact, &meta);
            let pretty = RunMeta::parse(&meta.to_json().to_pretty()).unwrap();
            prop_assert_eq!(&pretty, &meta);
        }
    }

    /// A heartbeat sample survives the JSON-Lines round-trip, including
    /// elided zero stall reasons.
    #[test]
    fn progress_round_trips(seed in any::<u64>()) {
        let mut state = seed;
        let samples: Vec<ProgressSample> =
            (0..16).map(|_| arbitrary_sample(&mut state)).collect();
        let text: String = samples
            .iter()
            .map(|s| s.to_json().to_compact() + "\n")
            .collect();
        let back = ProgressSample::parse_lines(&text).unwrap();
        prop_assert_eq!(back, samples);
    }

    /// Wrong-schema documents are rejected, never mis-parsed.
    #[test]
    fn run_meta_rejects_other_schemas(seed in any::<u64>()) {
        let mut state = seed;
        let meta = arbitrary_meta(&mut state);
        let mut v = meta.to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::str("mtasc.run_report.v1");
        }
        prop_assert!(RunMeta::from_json(&v).is_none());
        prop_assert!(ProgressSample::from_json(&v).is_none());
    }
}
