//! Execution statistics: issue counts by class and thread, and a stall
//! breakdown by hazard type — the quantities the paper's argument is about.

use asc_isa::InstrClass;
use std::fmt;

/// Why an issue slot went empty (or a particular thread could not issue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Waiting on a scalar→scalar or parallel→parallel dependency (load
    /// delay, multiplier latency, WAW interlock, ...).
    DataHazard,
    /// Parallel instruction waiting on a scalar producer (only load-use
    /// variants survive the EX→B1 forwarding path).
    BroadcastHazard,
    /// Scalar instruction waiting on a reduction result — the b+r stall of
    /// Figure 2 (middle).
    ReductionHazard,
    /// Parallel instruction waiting on a reduction result — Figure 2
    /// (bottom).
    BroadcastReductionHazard,
    /// Sequential multiplier/divider busy (structural hazard).
    Structural,
    /// Branch resolution bubble.
    BranchBubble,
    /// Blocked in `tjoin`.
    WaitJoin,
    /// Thread context is unallocated or has no instruction to run.
    NoThread,
    /// Coarse-grain thread-switch penalty.
    SwitchPenalty,
    /// Instruction buffer empty (finite fetch model only).
    FetchEmpty,
}

impl StallReason {
    /// All reasons, for table rendering.
    pub const ALL: [StallReason; 10] = [
        StallReason::DataHazard,
        StallReason::BroadcastHazard,
        StallReason::ReductionHazard,
        StallReason::BroadcastReductionHazard,
        StallReason::Structural,
        StallReason::BranchBubble,
        StallReason::WaitJoin,
        StallReason::NoThread,
        StallReason::SwitchPenalty,
        StallReason::FetchEmpty,
    ];

    /// Dense index for counters.
    pub const fn index(self) -> usize {
        match self {
            StallReason::DataHazard => 0,
            StallReason::BroadcastHazard => 1,
            StallReason::ReductionHazard => 2,
            StallReason::BroadcastReductionHazard => 3,
            StallReason::Structural => 4,
            StallReason::BranchBubble => 5,
            StallReason::WaitJoin => 6,
            StallReason::NoThread => 7,
            StallReason::SwitchPenalty => 8,
            StallReason::FetchEmpty => 9,
        }
    }

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            StallReason::DataHazard => "data hazard",
            StallReason::BroadcastHazard => "broadcast hazard",
            StallReason::ReductionHazard => "reduction hazard",
            StallReason::BroadcastReductionHazard => "broadcast-reduction hazard",
            StallReason::Structural => "structural (mul/div)",
            StallReason::BranchBubble => "branch bubble",
            StallReason::WaitJoin => "join wait",
            StallReason::NoThread => "no live thread",
            StallReason::SwitchPenalty => "thread-switch penalty",
            StallReason::FetchEmpty => "fetch buffer empty",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles simulated (to the last writeback).
    pub cycles: u64,
    /// Cycles in which an instruction issued.
    pub issued: u64,
    /// Issued instructions by pipeline class (scalar/parallel/reduction).
    pub issued_by_class: [u64; 3],
    /// Issued instructions per hardware thread.
    pub issued_by_thread: Vec<u64>,
    /// Cycles in which no instruction issued.
    pub stall_cycles: u64,
    /// Stall cycles by the reason of the highest-priority blocked thread.
    pub stalls: [u64; 10],
    /// Cycle of the last writeback (pipeline drain).
    pub last_writeback: u64,
    /// Thread switches (meaningful under coarse-grain scheduling).
    pub thread_switches: u64,
}

impl Stats {
    /// Allocate for `threads` hardware threads.
    pub fn new(threads: usize) -> Stats {
        Stats { issued_by_thread: vec![0; threads], ..Stats::default() }
    }

    /// Record an issue.
    pub fn record_issue(&mut self, thread: usize, class: InstrClass) {
        self.issued += 1;
        self.issued_by_thread[thread] += 1;
        let idx = match class {
            InstrClass::Scalar => 0,
            InstrClass::Parallel => 1,
            InstrClass::Reduction => 2,
        };
        self.issued_by_class[idx] += 1;
    }

    /// Record `n` stall cycles attributed to `reason`.
    pub fn record_stall(&mut self, reason: StallReason, n: u64) {
        self.stall_cycles += n;
        self.stalls[reason.index()] += n;
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Stall cycles attributed to a reason.
    pub fn stalls_for(&self, reason: StallReason) -> u64 {
        self.stalls[reason.index()]
    }

    /// Issue-slot utilization report, one line per non-zero reason.
    pub fn report(&self) -> String {
        let mut out = format!(
            "cycles: {}  issued: {} (scalar {}, parallel {}, reduction {})  IPC: {:.3}\n",
            self.cycles,
            self.issued,
            self.issued_by_class[0],
            self.issued_by_class[1],
            self.issued_by_class[2],
            self.ipc()
        );
        for reason in StallReason::ALL {
            let n = self.stalls_for(reason);
            if n > 0 {
                out.push_str(&format!("  stalls[{}]: {}\n", reason.label(), n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 10];
        for r in StallReason::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ipc_and_report() {
        let mut s = Stats::new(2);
        s.cycles = 10;
        s.record_issue(0, InstrClass::Scalar);
        s.record_issue(1, InstrClass::Reduction);
        s.record_stall(StallReason::ReductionHazard, 6);
        assert!((s.ipc() - 0.2).abs() < 1e-12);
        assert_eq!(s.issued_by_thread, vec![1, 1]);
        assert_eq!(s.stalls_for(StallReason::ReductionHazard), 6);
        let rep = s.report();
        assert!(rep.contains("reduction hazard"));
        assert!(rep.contains("IPC: 0.200"));
    }

    #[test]
    fn zero_cycles_ipc() {
        assert_eq!(Stats::new(1).ipc(), 0.0);
    }
}
