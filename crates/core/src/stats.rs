//! Execution statistics: issue counts by class and thread, and a stall
//! breakdown by hazard type — the quantities the paper's argument is about.
//!
//! `Stats` is the struct-of-counters view; [`Stats::to_registry`] exposes
//! the same quantities (plus derived gauges and histograms) as a named
//! [`Registry`], and [`Stats::report`] renders from that registry, so the
//! legacy text report and the machine-readable form cannot disagree.

use asc_isa::InstrClass;
use std::fmt;

use crate::obs::{Histogram, Registry};

/// Inclusive upper bucket edges for stall-span histograms (how long each
/// contiguous stall lasted, in cycles).
pub const SPAN_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Inclusive upper bucket edges for network queue-depth histograms
/// (in-flight operations sampled at each issue).
pub const DEPTH_BUCKETS: [u64; 6] = [0, 1, 2, 4, 8, 16];

/// Why an issue slot went empty (or a particular thread could not issue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Waiting on a scalar→scalar or parallel→parallel dependency (load
    /// delay, multiplier latency, WAW interlock, ...).
    DataHazard,
    /// Parallel instruction waiting on a scalar producer (only load-use
    /// variants survive the EX→B1 forwarding path).
    BroadcastHazard,
    /// Scalar instruction waiting on a reduction result — the b+r stall of
    /// Figure 2 (middle).
    ReductionHazard,
    /// Parallel instruction waiting on a reduction result — Figure 2
    /// (bottom).
    BroadcastReductionHazard,
    /// Sequential multiplier/divider busy (structural hazard).
    Structural,
    /// Branch resolution bubble.
    BranchBubble,
    /// Blocked in `tjoin`.
    WaitJoin,
    /// Thread context is unallocated or has no instruction to run.
    NoThread,
    /// Coarse-grain thread-switch penalty.
    SwitchPenalty,
    /// Instruction buffer empty (finite fetch model only).
    FetchEmpty,
}

impl StallReason {
    /// All reasons, for table rendering.
    pub const ALL: [StallReason; 10] = [
        StallReason::DataHazard,
        StallReason::BroadcastHazard,
        StallReason::ReductionHazard,
        StallReason::BroadcastReductionHazard,
        StallReason::Structural,
        StallReason::BranchBubble,
        StallReason::WaitJoin,
        StallReason::NoThread,
        StallReason::SwitchPenalty,
        StallReason::FetchEmpty,
    ];

    /// Dense index for counters.
    pub const fn index(self) -> usize {
        match self {
            StallReason::DataHazard => 0,
            StallReason::BroadcastHazard => 1,
            StallReason::ReductionHazard => 2,
            StallReason::BroadcastReductionHazard => 3,
            StallReason::Structural => 4,
            StallReason::BranchBubble => 5,
            StallReason::WaitJoin => 6,
            StallReason::NoThread => 7,
            StallReason::SwitchPenalty => 8,
            StallReason::FetchEmpty => 9,
        }
    }

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            StallReason::DataHazard => "data hazard",
            StallReason::BroadcastHazard => "broadcast hazard",
            StallReason::ReductionHazard => "reduction hazard",
            StallReason::BroadcastReductionHazard => "broadcast-reduction hazard",
            StallReason::Structural => "structural (mul/div)",
            StallReason::BranchBubble => "branch bubble",
            StallReason::WaitJoin => "join wait",
            StallReason::NoThread => "no live thread",
            StallReason::SwitchPenalty => "thread-switch penalty",
            StallReason::FetchEmpty => "fetch buffer empty",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters accumulated during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles simulated (to the last writeback).
    pub cycles: u64,
    /// Cycles in which an instruction issued.
    pub issued: u64,
    /// Issued instructions by pipeline class (scalar/parallel/reduction).
    pub issued_by_class: [u64; 3],
    /// Issued instructions per hardware thread.
    pub issued_by_thread: Vec<u64>,
    /// Cycles in which no instruction issued.
    pub stall_cycles: u64,
    /// Stall cycles by the reason of the highest-priority blocked thread.
    pub stalls: [u64; 10],
    /// Cycle of the last writeback (pipeline drain).
    pub last_writeback: u64,
    /// Thread switches (meaningful under coarse-grain scheduling).
    pub thread_switches: u64,
    /// Distribution of contiguous stall-span lengths, one histogram per
    /// [`StallReason`] (indexed by [`StallReason::index`]).
    pub stall_spans: Vec<Histogram>,
    /// In-flight broadcast-tree operations, sampled at each issue of a
    /// parallel or reduction instruction.
    pub broadcast_depth: Histogram,
    /// In-flight reduction-tree operations, sampled at each issue of a
    /// reduction instruction.
    pub reduction_depth: Histogram,
}

impl Stats {
    /// Allocate for `threads` hardware threads.
    pub fn new(threads: usize) -> Stats {
        Stats {
            issued_by_thread: vec![0; threads],
            stall_spans: StallReason::ALL.iter().map(|_| Histogram::new(&SPAN_BUCKETS)).collect(),
            broadcast_depth: Histogram::new(&DEPTH_BUCKETS),
            reduction_depth: Histogram::new(&DEPTH_BUCKETS),
            ..Stats::default()
        }
    }

    /// Record an issue.
    pub fn record_issue(&mut self, thread: usize, class: InstrClass) {
        self.issued += 1;
        self.issued_by_thread[thread] += 1;
        let idx = match class {
            InstrClass::Scalar => 0,
            InstrClass::Parallel => 1,
            InstrClass::Reduction => 2,
        };
        self.issued_by_class[idx] += 1;
    }

    /// Record a contiguous span of `n` stall cycles attributed to `reason`.
    pub fn record_stall(&mut self, reason: StallReason, n: u64) {
        self.stall_cycles += n;
        self.stalls[reason.index()] += n;
        if let Some(h) = self.stall_spans.get_mut(reason.index()) {
            h.record(n);
        }
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Stall cycles attributed to a reason.
    pub fn stalls_for(&self, reason: StallReason) -> u64 {
        self.stalls[reason.index()]
    }

    /// Export every counter as a named metric, plus derived gauges
    /// (IPC, per-thread issue-slot utilization) and the span/depth
    /// histograms. The registry is the canonical form: [`Stats::report`]
    /// and [`crate::obs::RunReport`] both render from it.
    pub fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter_add("cycles", self.cycles);
        reg.counter_add("issued", self.issued);
        reg.counter_add("issued.scalar", self.issued_by_class[0]);
        reg.counter_add("issued.parallel", self.issued_by_class[1]);
        reg.counter_add("issued.reduction", self.issued_by_class[2]);
        reg.gauge_set("ipc", self.ipc());
        for (t, &n) in self.issued_by_thread.iter().enumerate() {
            reg.counter_add(&format!("issued.thread.{t}"), n);
        }
        for (t, &n) in self.issued_by_thread.iter().enumerate() {
            let util = if self.cycles == 0 { 0.0 } else { n as f64 / self.cycles as f64 };
            reg.gauge_set(&format!("util.thread.{t}"), util);
        }
        reg.counter_add("stall_cycles", self.stall_cycles);
        for reason in StallReason::ALL {
            reg.counter_add(&format!("stall.{}", reason.label()), self.stalls_for(reason));
        }
        for reason in StallReason::ALL {
            if let Some(h) = self.stall_spans.get(reason.index()) {
                reg.histogram_set(&format!("stall_span.{}", reason.label()), h.clone());
            }
        }
        reg.histogram_set("queue_depth.broadcast", self.broadcast_depth.clone());
        reg.histogram_set("queue_depth.reduction", self.reduction_depth.clone());
        reg.counter_add("last_writeback", self.last_writeback);
        reg.counter_add("thread_switches", self.thread_switches);
        reg
    }

    /// Issue-slot utilization report, one line per non-zero reason.
    /// Rendered from [`Stats::to_registry`].
    pub fn report(&self) -> String {
        let reg = self.to_registry();
        let mut out = format!(
            "cycles: {}  issued: {} (scalar {}, parallel {}, reduction {})  IPC: {:.3}\n",
            reg.counter("cycles"),
            reg.counter("issued"),
            reg.counter("issued.scalar"),
            reg.counter("issued.parallel"),
            reg.counter("issued.reduction"),
            reg.gauge("ipc").unwrap_or(0.0)
        );
        for reason in StallReason::ALL {
            let n = reg.counter(&format!("stall.{}", reason.label()));
            if n > 0 {
                out.push_str(&format!("  stalls[{}]: {}\n", reason.label(), n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 10];
        for r in StallReason::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ipc_and_report() {
        let mut s = Stats::new(2);
        s.cycles = 10;
        s.record_issue(0, InstrClass::Scalar);
        s.record_issue(1, InstrClass::Reduction);
        s.record_stall(StallReason::ReductionHazard, 6);
        assert!((s.ipc() - 0.2).abs() < 1e-12);
        assert_eq!(s.issued_by_thread, vec![1, 1]);
        assert_eq!(s.stalls_for(StallReason::ReductionHazard), 6);
        let rep = s.report();
        assert!(rep.contains("reduction hazard"));
        assert!(rep.contains("IPC: 0.200"));
    }

    #[test]
    fn zero_cycles_ipc() {
        assert_eq!(Stats::new(1).ipc(), 0.0);
    }

    #[test]
    fn all_ordering_matches_index() {
        // `ALL[i].index() == i` for every variant — table renderers index
        // `stalls`/`stall_spans` by position in ALL, so the two orderings
        // must never drift apart.
        for (i, reason) in StallReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i, "{reason} out of place in StallReason::ALL");
        }
        assert_eq!(StallReason::ALL.len(), 10);
    }

    #[test]
    fn registry_mirrors_counters() {
        let mut s = Stats::new(2);
        s.cycles = 10;
        s.record_issue(0, InstrClass::Scalar);
        s.record_issue(1, InstrClass::Reduction);
        s.record_stall(StallReason::ReductionHazard, 6);
        s.broadcast_depth.record(2);
        let reg = s.to_registry();
        assert_eq!(reg.counter("cycles"), 10);
        assert_eq!(reg.counter("issued"), 2);
        assert_eq!(reg.counter("issued.scalar"), 1);
        assert_eq!(reg.counter("issued.reduction"), 1);
        assert_eq!(reg.counter("issued.thread.1"), 1);
        assert_eq!(reg.counter("stall.reduction hazard"), 6);
        assert_eq!(reg.counter("stall.data hazard"), 0);
        assert_eq!(reg.gauge("ipc"), Some(0.2));
        assert_eq!(reg.gauge("util.thread.0"), Some(0.1));
        let span = reg.histogram("stall_span.reduction hazard").unwrap();
        assert_eq!((span.count(), span.sum(), span.max()), (1, 6, 6));
        assert_eq!(reg.histogram("queue_depth.broadcast").unwrap().count(), 1);
    }

    #[test]
    fn default_stats_report_is_well_formed() {
        // A Default-constructed Stats has no span histograms; report() and
        // to_registry() must still work (used by code that builds Stats
        // without knowing the thread count).
        let s = Stats::default();
        assert!(s.report().starts_with("cycles: 0"));
        assert!(s.to_registry().histogram("stall_span.data hazard").is_none());
    }
}
