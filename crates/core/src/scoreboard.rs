//! The instruction status table ("maintained by the scheduler ... used by
//! the decode unit to detect hazards"): for every architectural register of
//! every thread, the first cycle at which its latest in-flight writer's
//! value can be consumed (through forwarding, or via the register file when
//! forwarding is disabled), and the pipeline class of that writer (needed
//! to classify a stall as a reduction hazard vs. an ordinary data hazard).

use asc_isa::{InstrClass, Operand, RegClass};

const FILES: usize = 4;
const REGS: usize = 16; // flags use the first 8 slots

fn file_index(class: RegClass) -> usize {
    match class {
        RegClass::SGpr => 0,
        RegClass::SFlag => 1,
        RegClass::PGpr => 2,
        RegClass::PFlag => 3,
    }
}

/// Sentinel "no in-flight producer" PC (cycle-0-ready entries).
pub const NO_PRODUCER_PC: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready: u64,
    producer: InstrClass,
    /// PC of the in-flight writer (profiler "waiting on" attribution).
    producer_pc: u32,
}

impl Default for Entry {
    fn default() -> Self {
        Entry { ready: 0, producer: InstrClass::Scalar, producer_pc: NO_PRODUCER_PC }
    }
}

/// Per-thread register readiness tracking.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    entries: Vec<[[Entry; REGS]; FILES]>,
}

impl Scoreboard {
    /// Allocate for `threads` hardware threads; everything ready at cycle
    /// 0.
    pub fn new(threads: usize) -> Scoreboard {
        Scoreboard { entries: vec![[[Entry::default(); REGS]; FILES]; threads] }
    }

    /// First cycle at which `op` of `thread` may be consumed.
    pub fn ready_time(&self, thread: usize, op: Operand) -> u64 {
        self.entries[thread][file_index(op.class)][op.index as usize].ready
    }

    /// Pipeline class of the latest writer of `op`.
    pub fn producer_class(&self, thread: usize, op: Operand) -> InstrClass {
        self.entries[thread][file_index(op.class)][op.index as usize].producer
    }

    /// PC of the latest in-flight writer of `op` ([`NO_PRODUCER_PC`] when
    /// nothing has written it since the thread context was cleared).
    pub fn producer_pc(&self, thread: usize, op: Operand) -> u32 {
        self.entries[thread][file_index(op.class)][op.index as usize].producer_pc
    }

    /// Record that `op` of `thread` will be produced (forward-ready) at the
    /// end of `ready`, by an instruction of class `producer` at `pc`.
    pub fn record_write(
        &mut self,
        thread: usize,
        op: Operand,
        ready: u64,
        producer: InstrClass,
        pc: u32,
    ) {
        self.entries[thread][file_index(op.class)][op.index as usize] =
            Entry { ready, producer, producer_pc: pc };
    }

    /// Clear a thread's entries (context reallocation).
    pub fn clear_thread(&mut self, thread: usize) {
        self.entries[thread] = [[Entry::default(); REGS]; FILES];
    }

    /// Number of `thread`'s registers whose in-flight writer has not yet
    /// produced its value at cycle `now` — a per-thread measure of
    /// outstanding work, sampled by observability tooling.
    pub fn pending_writes(&self, thread: usize, now: u64) -> usize {
        self.entries[thread].iter().flat_map(|file| file.iter()).filter(|e| e.ready > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_isa::{PFlag, PReg, SReg};

    #[test]
    fn tracks_per_thread_per_file() {
        let mut sb = Scoreboard::new(2);
        let s1 = Operand::s(SReg::from_index(1));
        let p1 = Operand::p(PReg::from_index(1));
        sb.record_write(0, s1, 10, InstrClass::Reduction, 7);
        sb.record_write(1, s1, 20, InstrClass::Scalar, 8);
        sb.record_write(0, p1, 30, InstrClass::Parallel, 9);
        assert_eq!(sb.ready_time(0, s1), 10);
        assert_eq!(sb.producer_class(0, s1), InstrClass::Reduction);
        assert_eq!(sb.producer_pc(0, s1), 7);
        assert_eq!(sb.producer_pc(0, p1), 9);
        assert_eq!(sb.producer_pc(1, p1), NO_PRODUCER_PC);
        assert_eq!(sb.ready_time(1, s1), 20);
        assert_eq!(sb.ready_time(0, p1), 30);
        // same index, different file
        assert_eq!(sb.ready_time(0, Operand::pf(PFlag::from_index(1))), 0);
    }

    #[test]
    fn pending_writes_counts_in_flight() {
        let mut sb = Scoreboard::new(2);
        let s1 = Operand::s(SReg::from_index(1));
        let p1 = Operand::p(PReg::from_index(1));
        assert_eq!(sb.pending_writes(0, 0), 0);
        sb.record_write(0, s1, 10, InstrClass::Reduction, 7);
        sb.record_write(0, p1, 5, InstrClass::Parallel, 2);
        assert_eq!(sb.pending_writes(0, 0), 2);
        assert_eq!(sb.pending_writes(0, 5), 1, "p1 produced at end of 5");
        assert_eq!(sb.pending_writes(0, 10), 0);
        assert_eq!(sb.pending_writes(1, 0), 0, "other thread unaffected");
    }

    #[test]
    fn clear_thread_resets() {
        let mut sb = Scoreboard::new(2);
        let s1 = Operand::s(SReg::from_index(1));
        sb.record_write(0, s1, 99, InstrClass::Reduction, 3);
        sb.clear_thread(0);
        assert_eq!(sb.ready_time(0, s1), 0);
        assert_eq!(sb.producer_class(0, s1), InstrClass::Scalar);
        assert_eq!(sb.producer_pc(0, s1), NO_PRODUCER_PC);
    }
}
