//! The cycle-accurate machine: fetch/decode/issue with fine-grain (or
//! coarse-grain) multithreading, the split pipeline's hazard model, and the
//! functional architectural state.
//!
//! ## Model summary (see `DESIGN.md` §3 for the derivation)
//!
//! One instruction issues per cycle from the scheduler, which rotates
//! priority over threads whose next instruction has no outstanding hazard
//! (the paper's "rotating priority selection policy ... to ensure fairness
//! between threads"). Hazards are detected against the *instruction status
//! table* ([`crate::scoreboard::Scoreboard`]): each architectural register
//! records when its latest in-flight writer's value becomes forwardable.
//!
//! Simplifications, stated: instruction fetch is ideal (per-thread buffers
//! always full; the branch-redirect bubble models the refill); write-back
//! ports are unlimited; inter-thread register transfers are serialized at
//! issue and must be synchronized by software (`tjoin`, flags), exactly as
//! the prototype required.

use std::collections::VecDeque;

use asc_asm::Program;
use asc_isa::{decode, DecodeError, Instr, InstrClass, Operand, RegClass, Word};
use asc_network::{NetUnit, Network};
use asc_pe::{
    DividerConfig, FlagFile, LocalMemory, MultiplierKind, PeArray, RegFile, SequentialUnit,
};

use crate::config::{FetchModel, MachineConfig, SchedPolicy};
use crate::error::RunError;
use crate::exec::Effect;
use crate::obs::profile::Profile;
use crate::obs::progress::{ProgressSample, ProgressSampler};
use crate::obs::{SeqUnit, SinkHandle, ThreadTransition, TraceEvent};
use crate::scoreboard::{Scoreboard, NO_PRODUCER_PC};
use crate::stats::{StallReason, Stats};
use crate::threads::{ThreadState, ThreadTable};
use crate::timing::Timing;

/// One issue event, recorded when tracing is enabled (the pipeline-diagram
/// renderers consume these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Cycle at which the instruction issued (entered SR).
    pub cycle: u64,
    /// Issuing thread.
    pub thread: usize,
    /// Instruction address.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
}

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An instruction issued from the given thread.
    Issued {
        /// The thread that issued.
        thread: usize,
    },
    /// No instruction could issue; the reason of the highest-priority
    /// blocked thread, and how many cycles were skipped (≥ 1 — the
    /// simulator fast-forwards through long stalls).
    Stalled {
        /// Attributed stall reason.
        reason: StallReason,
        /// Cycles consumed.
        cycles: u64,
    },
    /// The machine has halted (or every thread has exited).
    Finished,
}

/// Why a specific thread could not issue this cycle (internal).
#[derive(Debug, Clone, Copy)]
struct Blocked {
    reason: StallReason,
    /// Earliest cycle at which the thread might issue (`u64::MAX` for
    /// event-driven waits like joins).
    earliest: u64,
    /// The blocked thread (profiler attribution).
    thread: usize,
    /// PC of the instruction that could not issue.
    pc: u32,
    /// PC of the in-flight producer being waited on
    /// ([`NO_PRODUCER_PC`] when the wait has no register producer).
    waiting_on: u32,
}

/// The simulated Multithreaded ASC Processor.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) timing: Timing,
    pub(crate) imem: Vec<Result<Instr, DecodeError>>,
    pub(crate) sregs: RegFile,
    pub(crate) sflags: FlagFile,
    pub(crate) smem: LocalMemory,
    pub(crate) array: PeArray,
    /// Reusable packed active mask: filled from the instruction's mask
    /// field at issue, so masked execution allocates nothing per
    /// instruction.
    pub(crate) amask: asc_pe::ActiveMask,
    pub(crate) net: Network,
    pub(crate) threads: ThreadTable,
    score: Scoreboard,
    mul_scalar: SequentialUnit,
    div_scalar: SequentialUnit,
    mul_parallel: SequentialUnit,
    div_parallel: SequentialUnit,
    pub(crate) cycle: u64,
    halted: bool,
    rotate: usize,
    current: usize,
    /// Schedule-perturbation seed (resolved from the config and the
    /// `MTASC_SCHED_SEED` override once at construction; `0` = off).
    sched_seed: u64,
    /// Running state of the perturbation generator (splitmix64).
    sched_rng: u64,
    /// Per-thread reason for a pending `next_issue` bubble.
    bubble: Vec<StallReason>,
    /// Instructions buffered per thread (finite fetch model).
    ibuf: Vec<usize>,
    fetch_rotate: usize,
    stats: Stats,
    trace: Option<Vec<IssueRecord>>,
    /// Attached observability sink (shared by clones of this machine).
    sink: Option<SinkHandle>,
    /// Attached cycle-attribution profiler (boxed: the row table is large
    /// and the common case is "not attached").
    profiler: Option<Box<Profile>>,
    /// Attached progress sampler (boxed for the same reason; the ring is
    /// pre-sized so the sampling path never allocates).
    progress: Option<Box<ProgressSampler>>,
    /// Completion cycles of in-flight broadcast-tree operations (queue
    /// depth sampling).
    bcast_inflight: VecDeque<u64>,
    /// Completion cycles of in-flight reduction-tree operations.
    red_inflight: VecDeque<u64>,
    /// Fusible-block plan for the loaded program (`None` with fusion
    /// disabled); rebuilt — i.e. the block cache is invalidated — on every
    /// program load.
    pub(crate) fusion_plan: Option<crate::fusion::FusionPlan>,
    /// Dynamic block-fusion counters (static ones live in the plan).
    pub(crate) fusion_dyn: crate::fusion::FusionStats,
    /// Ghost issues remaining per thread: how many upcoming instructions
    /// of this thread already had their effects applied by a fused block.
    pub(crate) fused_remaining: Vec<u32>,
    /// Cycle budget of the current `run()` call; fusion's fuel gate.
    /// Zero outside `run`, so bare `step()` loops never fuse.
    pub(crate) fuse_horizon: u64,
}

impl Machine {
    /// Build a machine from a configuration. Load a program with
    /// [`Machine::load_program`] before running.
    pub fn new(cfg: MachineConfig) -> Machine {
        assert!(cfg.threads >= 1);
        let timing = cfg.timing();
        // An in-flight broadcast spans b cycles and one may start per
        // cycle; a reduction additionally spans b + 1 + r. Pre-sizing the
        // queues keeps the issue path allocation-free.
        let bcast_cap = timing.b as usize + 2;
        let red_cap = (timing.b + 1 + timing.r) as usize + 2;
        Machine {
            timing,
            imem: Vec::new(),
            sregs: RegFile::new(cfg.threads, asc_isa::NUM_GPRS),
            sflags: FlagFile::new(cfg.threads, asc_isa::NUM_FLAGS),
            smem: LocalMemory::new(cfg.smem_words),
            array: PeArray::new(cfg.array()),
            amask: asc_pe::ActiveMask::new(cfg.num_pes),
            net: Network::new(cfg.network()),
            threads: ThreadTable::new(cfg.threads),
            score: Scoreboard::new(cfg.threads),
            mul_scalar: SequentialUnit::new(),
            div_scalar: SequentialUnit::new(),
            mul_parallel: SequentialUnit::new(),
            div_parallel: SequentialUnit::new(),
            cycle: 0,
            halted: false,
            rotate: 0,
            current: 0,
            sched_seed: cfg.effective_sched_seed(),
            sched_rng: cfg.effective_sched_seed(),
            bubble: vec![StallReason::BranchBubble; cfg.threads],
            ibuf: vec![0; cfg.threads],
            fetch_rotate: 0,
            stats: Stats::new(cfg.threads),
            trace: None,
            sink: None,
            profiler: None,
            progress: None,
            bcast_inflight: VecDeque::with_capacity(bcast_cap),
            red_inflight: VecDeque::with_capacity(red_cap),
            fusion_plan: None,
            fusion_dyn: crate::fusion::FusionStats::default(),
            fused_remaining: vec![0; cfg.threads],
            fuse_horizon: 0,
            cfg,
        }
    }

    /// Convenience: build the machine and load an assembled program.
    pub fn with_program(cfg: MachineConfig, program: &Program) -> Result<Machine, RunError> {
        let mut m = Machine::new(cfg);
        m.load_program(program)?;
        Ok(m)
    }

    /// Load an assembled program into instruction memory.
    pub fn load_program(&mut self, program: &Program) -> Result<(), RunError> {
        self.load_words(&program.words())
    }

    /// Load raw machine words into instruction memory. Words are
    /// pre-decoded; a word that fails to decode only raises
    /// [`RunError::IllegalInstruction`] if it is ever executed.
    pub fn load_words(&mut self, words: &[u32]) -> Result<(), RunError> {
        if words.len() > self.cfg.imem_words {
            return Err(RunError::ProgramTooLarge {
                len: words.len(),
                capacity: self.cfg.imem_words,
            });
        }
        self.imem = words.iter().map(|&w| decode(w)).collect();
        // (Re)build the fusible-block plan — the per-(program, entry PC)
        // cache of compiled kernel chains — and drop any state from a
        // previous program.
        self.fusion_plan =
            self.cfg.fusion.then(|| crate::fusion::FusionPlan::build(&self.imem, &self.cfg));
        self.fusion_dyn = crate::fusion::FusionStats::default();
        self.fused_remaining.iter_mut().for_each(|r| *r = 0);
        // re-shape the profiler's row table for the new program (pre-sized
        // here so the record path never allocates)
        if let Some(p) = &mut self.profiler {
            p.reset(self.cfg.threads, self.imem.len());
        }
        Ok(())
    }

    /// Record every issue (for pipeline diagrams). Call before running.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded issue trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[IssueRecord]> {
        self.trace.as_deref()
    }

    /// Attach an observability sink; every subsequent
    /// [`crate::obs::TraceEvent`] is delivered to it. With no sink
    /// attached, instrumentation costs one `Option` check per site.
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = Some(sink);
    }

    /// Detach the sink (returning it), e.g. to stop tracing mid-run.
    pub fn detach_sink(&mut self) -> Option<SinkHandle> {
        self.sink.take()
    }

    /// The attached sink, if any.
    pub fn sink(&self) -> Option<&SinkHandle> {
        self.sink.as_ref()
    }

    /// Attach a cycle-attribution profiler: every subsequent cycle is
    /// charged to a `(thread, pc, stall-reason)` triple (see
    /// [`crate::obs::profile`]). The row table is sized for the loaded
    /// program immediately, so the hot record path never allocates. With
    /// no profiler attached each hook costs one `Option` check.
    pub fn attach_profiler(&mut self) {
        self.profiler = Some(Box::new(Profile::new(self.cfg.threads, self.imem.len())));
    }

    /// The attached profiler's current attribution, if any. Finalized
    /// (drain charged, conservation exact) only after [`Machine::run`]
    /// returns.
    pub fn profile(&self) -> Option<&Profile> {
        self.profiler.as_deref()
    }

    /// Detach and return the profiler.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profiler.take().map(|b| *b)
    }

    /// Attach a progress sampler: the run counters are snapshotted into
    /// the sampler's bounded ring (and streamed to its sink, if any)
    /// every `sampler.every()` cycles, plus once after the pipeline
    /// drains (the *final* sample, whose cycle equals `Stats::cycles`).
    /// With no sampler attached the hook costs one `Option` check per
    /// step; with one attached but no sample due, one extra compare.
    pub fn attach_progress(&mut self, sampler: ProgressSampler) {
        self.progress = Some(Box::new(sampler));
    }

    /// The attached progress sampler, if any.
    pub fn progress(&self) -> Option<&ProgressSampler> {
        self.progress.as_deref()
    }

    /// Detach and return the progress sampler.
    pub fn take_progress(&mut self) -> Option<ProgressSampler> {
        self.progress.take().map(|b| *b)
    }

    /// Snapshot the run counters into the attached sampler (caller
    /// checked attachment). Allocation-free: the sample is `Copy` and the
    /// ring is pre-sized.
    fn sample_progress(&mut self, cycle: u64, final_sample: bool) {
        let sample = ProgressSample {
            cycle,
            issued: self.stats.issued,
            stall_cycles: self.stats.stall_cycles,
            stalls: self.stats.stalls,
            live_threads: self.threads.live_count() as u32,
            every: 0, // stamped by the sampler on push
            final_sample,
        };
        if let Some(p) = &mut self.progress {
            p.push(sample);
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Pipeline timing parameters (b, r, unit latencies).
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Number of `thread`'s registers with an in-flight (not yet produced)
    /// writer at the current cycle.
    pub fn pending_writes(&self, thread: usize) -> usize {
        self.score.pending_writes(thread, self.cycle)
    }

    /// Host access to the PE array.
    pub fn array(&self) -> &PeArray {
        &self.array
    }

    /// Host mutable access to the PE array (data distribution).
    pub fn array_mut(&mut self) -> &mut PeArray {
        &mut self.array
    }

    /// Host read of a scalar register.
    pub fn sreg(&self, thread: usize, reg: usize) -> Word {
        self.sregs.read(thread, reg)
    }

    /// Host write of a scalar register.
    pub fn set_sreg(&mut self, thread: usize, reg: usize, v: Word) {
        self.sregs.write(thread, reg, v);
    }

    /// Host read of a scalar flag.
    pub fn sflag(&self, thread: usize, reg: usize) -> bool {
        self.sflags.read(thread, reg)
    }

    /// Host access to scalar data memory.
    pub fn smem(&self) -> &LocalMemory {
        &self.smem
    }

    /// Host mutable access to scalar data memory.
    pub fn smem_mut(&mut self) -> &mut LocalMemory {
        &mut self.smem
    }

    /// FNV-1a digest of the program-observable architectural state: the
    /// boot context's scalar and parallel registers and flags, plus the
    /// shared memories (scalar memory and every PE's local memory).
    ///
    /// Worker contexts are excluded deliberately: `tspawn` clears a
    /// context's registers at allocation, so residue left behind by an
    /// exited worker is invisible to software — but *which* physical
    /// context a worker landed in is allocation-order- and therefore
    /// schedule-dependent. On this footprint, race-free programs produce
    /// equal digests under every perturbation seed
    /// ([`MachineConfig::with_sched_seed`]); schedule-dependent programs
    /// diverge. Used by `mtasc lint --schedules N` and the
    /// `race_differential` test gate.
    pub fn arch_digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            v.to_le_bytes().iter().fold(h, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for reg in 0..asc_isa::NUM_GPRS {
            h = mix(h, self.sregs.read(0, reg).0 as u64);
        }
        for flag in 0..asc_isa::NUM_FLAGS {
            h = mix(h, self.sflags.read(0, flag) as u64);
        }
        for w in self.smem.as_slice() {
            h = mix(h, w.0 as u64);
        }
        for reg in 0..asc_isa::NUM_GPRS {
            for w in self.array.gpr_plane(0, reg) {
                h = mix(h, w.0 as u64);
            }
        }
        for flag in 0..asc_isa::NUM_FLAGS {
            for w in self.array.flag_plane(0, flag) {
                h = mix(h, *w);
            }
        }
        for pe in 0..self.cfg.num_pes {
            for addr in 0..self.cfg.lmem_words as u32 {
                let w = self.array.lmem_word(pe, addr).expect("in-range lmem address");
                h = mix(h, w.0 as u64);
            }
        }
        h
    }

    /// True once the machine has halted or all threads have exited.
    pub fn finished(&self) -> bool {
        self.halted || !self.threads.any_live()
    }

    /// Allocate a thread context at `target` (used by `tspawn`): clears the
    /// context's registers, flags and scoreboard entries; the new thread
    /// first issues two cycles later (front-end fill).
    pub(crate) fn spawn_thread(&mut self, target: u32) -> Option<usize> {
        let tid = self.threads.alloc(target, self.cycle + 2)?;
        self.ibuf[tid] = 0;
        debug_assert_eq!(self.fused_remaining[tid], 0, "freed threads have no ghost issues");
        self.fused_remaining[tid] = 0;
        self.sregs.clear_thread(tid);
        self.sflags.clear_thread(tid);
        self.array.clear_thread(tid);
        self.score.clear_thread(tid);
        self.bubble[tid] = StallReason::BranchBubble;
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::Thread {
                cycle: self.cycle,
                thread: tid,
                transition: ThreadTransition::Spawned,
            });
        }
        Some(tid)
    }

    /// Fetch and decode the instruction at `pc` for `thread`.
    pub(crate) fn fetch(&self, thread: usize, pc: u32) -> Result<Instr, RunError> {
        if pc as usize >= self.imem.len() {
            return Err(RunError::PcOutOfRange { thread, pc, len: self.imem.len() as u32 });
        }
        match &self.imem[pc as usize] {
            Ok(i) => Ok(*i),
            Err(cause) => Err(RunError::IllegalInstruction { thread, pc, cause: *cause }),
        }
    }

    /// Stop the machine (emulator's `halt` path).
    pub(crate) fn force_halt(&mut self) {
        self.halted = true;
    }

    // ------------------------------------------------------------ stepping

    /// Advance the machine: issue one instruction if any thread is ready,
    /// otherwise consume the (possibly fast-forwarded) stall.
    pub fn step(&mut self) -> Result<Step, RunError> {
        if self.finished() {
            return Ok(Step::Finished);
        }

        if let FetchModel::Finite { buffer_depth } = self.cfg.fetch {
            self.fetch_cycle(buffer_depth);
        }

        let step = match self.cfg.sched {
            SchedPolicy::FineGrain => self.step_fine(),
            SchedPolicy::CoarseGrain { switch_penalty } => self.step_coarse(switch_penalty),
        }?;
        // live telemetry: stall fast-forwarding can jump past the mark, so
        // the sample lands at the first step boundary at-or-after it
        if self.progress.as_ref().is_some_and(|p| p.due(self.cycle)) {
            self.sample_progress(self.cycle, false);
        }
        Ok(step)
    }

    /// One cycle of the shared fetch unit: fill one instruction into the
    /// buffer of the next live thread with space (round-robin).
    fn fetch_cycle(&mut self, depth: usize) {
        let n = self.threads.len();
        let mut pick = None;
        for tid in self.threads.rotation_live(self.fetch_rotate) {
            let row = self.threads.get(tid);
            if self.ibuf[tid] >= depth {
                continue;
            }
            // don't fetch past the end of the program
            if (row.pc as usize + self.ibuf[tid]) >= self.imem.len() {
                continue;
            }
            pick = Some(tid);
            break;
        }
        if let Some(tid) = pick {
            self.ibuf[tid] += 1;
            self.fetch_rotate = (tid + 1) % n;
        }
    }

    /// Advance the schedule-perturbation generator (splitmix64). Callers
    /// guard on a non-zero seed, so seed-0 machines never touch it and
    /// stay bit-identical to builds without the hook.
    fn sched_next(&mut self) -> u64 {
        self.sched_rng = self.sched_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.sched_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rotation offset after an issue by `tid`. The baseline hands
    /// priority to the next context; a non-zero seed jitters the hand-off
    /// point. Only the scan *order* among ready threads changes — the
    /// scheduler still issues the first ready thread it finds — so every
    /// perturbed run is a legal schedule of the same machine.
    fn next_rotate(&mut self, tid: usize) -> usize {
        let n = self.threads.len();
        let base = (tid + 1) % n;
        if self.sched_seed == 0 || n <= 1 {
            return base;
        }
        (base + self.sched_next() as usize % n) % n
    }

    fn step_fine(&mut self) -> Result<Step, RunError> {
        let mut first_block: Option<Blocked> = None;
        let mut min_earliest = u64::MAX;
        // scan only the live contexts: a free slot can never issue, and
        // its NoThread block would contribute neither a first_block nor a
        // finite wake-up time
        let mut scan = self.threads.rotation_live(self.rotate);
        while let Some(tid) = scan.next() {
            match self.thread_ready(tid)? {
                Ok(instr) => {
                    drop(scan);
                    self.issue(tid, instr)?;
                    self.rotate = self.next_rotate(tid);
                    return Ok(Step::Issued { thread: tid });
                }
                Err(b) => {
                    if b.reason != StallReason::NoThread && first_block.is_none() {
                        first_block = Some(b);
                    }
                    min_earliest = min_earliest.min(b.earliest);
                }
            }
        }
        drop(scan);
        self.consume_stall(first_block, min_earliest)
    }

    fn step_coarse(&mut self, penalty: u64) -> Result<Step, RunError> {
        // Coarse-grain MT: run the current thread until it would stall
        // longer than the switch penalty, then flush and switch.
        match self.thread_ready(self.current)? {
            Ok(instr) => {
                let tid = self.current;
                self.issue(tid, instr)?;
                Ok(Step::Issued { thread: tid })
            }
            Err(b) => {
                let wait = b.earliest.saturating_sub(self.cycle);
                let must_switch = matches!(b.reason, StallReason::NoThread | StallReason::WaitJoin)
                    || wait > penalty;
                if must_switch {
                    // Perturbation: jitter where the switch-target search
                    // starts and stretch the penalty by 0..=1 cycles (a
                    // front end refilling from a different buffer state).
                    // Both stay legal coarse-grain schedules.
                    let n = self.threads.len();
                    let mut start = (self.current + 1) % n;
                    let mut stretch = 0u64;
                    if self.sched_seed != 0 && n > 1 {
                        let j = self.sched_next();
                        start = (start + (j as usize >> 8) % n) % n;
                        stretch = j % 2;
                    }
                    // find another live thread to switch to
                    let current = self.current;
                    let next = self.threads.rotation(start).take(n).find(|&t| {
                        t != current && self.threads.get(t).state == ThreadState::Runnable
                    });
                    if let Some(next) = next {
                        self.current = next;
                        self.stats.thread_switches += 1;
                        let row = self.threads.get_mut(next);
                        row.next_issue = row.next_issue.max(self.cycle + penalty + stretch);
                        let next_pc = row.pc;
                        self.bubble[next] = StallReason::SwitchPenalty;
                        self.stats.record_stall(StallReason::SwitchPenalty, 1);
                        if let Some(p) = &mut self.profiler {
                            // the switch cycle is the incoming thread's cost
                            p.record_stall(
                                next,
                                next_pc,
                                StallReason::SwitchPenalty,
                                1,
                                NO_PRODUCER_PC,
                            );
                        }
                        if let Some(sink) = &self.sink {
                            sink.emit(&TraceEvent::Stall {
                                cycle: self.cycle,
                                reason: StallReason::SwitchPenalty,
                                cycles: 1,
                            });
                        }
                        self.cycle += 1;
                        return Ok(Step::Stalled { reason: StallReason::SwitchPenalty, cycles: 1 });
                    }
                }
                // no switch possible (or stall short enough): wait in place
                let block = if b.reason == StallReason::NoThread { None } else { Some(b) };
                self.consume_stall(block, b.earliest)
            }
        }
    }

    /// Burn stall cycles (fast-forwarding long waits) and detect deadlock.
    fn consume_stall(
        &mut self,
        block: Option<Blocked>,
        min_earliest: u64,
    ) -> Result<Step, RunError> {
        if min_earliest == u64::MAX {
            // Nothing will ever wake by time alone.
            if self.threads.any_live() && !self.threads.any_runnable() {
                return Err(RunError::Deadlock { cycle: self.cycle });
            }
            // All threads free — finished (handled by caller next step).
            return Ok(Step::Finished);
        }
        // the finite fetch model changes buffer state every cycle, so no
        // fast-forwarding there
        let delta = if matches!(self.cfg.fetch, FetchModel::Finite { .. }) {
            1
        } else {
            (min_earliest - self.cycle).max(1)
        };
        let reason = block.map(|b| b.reason).unwrap_or(StallReason::NoThread);
        self.stats.record_stall(reason, delta);
        if let Some(p) = &mut self.profiler {
            match block {
                Some(b) => p.record_stall(b.thread, b.pc, reason, delta, b.waiting_on),
                None => p.record_unattributed(reason, delta),
            }
        }
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::Stall { cycle: self.cycle, reason, cycles: delta });
        }
        self.cycle += delta;
        Ok(Step::Stalled { reason, cycles: delta })
    }

    /// Can `tid` issue at the current cycle? Returns the decoded
    /// instruction, or why not.
    fn thread_ready(&self, tid: usize) -> Result<Result<Instr, Blocked>, RunError> {
        let row = *self.threads.get(tid);
        let blocked = |reason, earliest, waiting_on| Blocked {
            reason,
            earliest,
            thread: tid,
            pc: row.pc,
            waiting_on,
        };
        match row.state {
            ThreadState::Free => {
                return Ok(Err(blocked(StallReason::NoThread, u64::MAX, NO_PRODUCER_PC)))
            }
            ThreadState::WaitingJoin(_) => {
                return Ok(Err(blocked(StallReason::WaitJoin, u64::MAX, NO_PRODUCER_PC)))
            }
            ThreadState::Runnable => {}
        }
        if row.next_issue > self.cycle {
            return Ok(Err(blocked(self.bubble[tid], row.next_issue, NO_PRODUCER_PC)));
        }
        if matches!(self.cfg.fetch, FetchModel::Finite { .. }) && self.ibuf[tid] == 0 {
            return Ok(Err(blocked(StallReason::FetchEmpty, self.cycle + 1, NO_PRODUCER_PC)));
        }
        let pc = row.pc;
        let instr = self.fetch(tid, pc)?;

        // Missing functional units are illegal instructions on this
        // machine.
        if instr.uses_multiplier() && self.cfg.multiplier == MultiplierKind::None {
            return Err(RunError::MissingUnit { thread: tid, pc, unit: "multiplier" });
        }
        if instr.uses_divider() && self.cfg.divider == DividerConfig::None {
            return Err(RunError::MissingUnit { thread: tid, pc, unit: "divider" });
        }

        // RAW hazards against the instruction status table.
        let class = instr.class();
        let mut worst: Option<Blocked> = None;
        for op in instr.reads() {
            // the scoreboard stores the first cycle at which a value may
            // be consumed (produce end + 1)
            let consume = self.cycle + self.timing.consume_offset(class, op.class);
            let available = self.score.ready_time(tid, op);
            if available > consume {
                let producer = self.score.producer_class(tid, op);
                let reason = classify_hazard(producer, class, op);
                let earliest = self.cycle + (available - consume);
                let b = blocked(reason, earliest, self.score.producer_pc(tid, op));
                worst = Some(match worst {
                    Some(prev) if prev.earliest >= b.earliest => prev,
                    _ => b,
                });
            }
        }
        if let Some(b) = worst {
            return Ok(Err(b));
        }

        // WAW interlock: an instruction may not issue if an older, slower
        // writer of the same register would complete after it.
        for op in instr.writes() {
            let pending = self.score.ready_time(tid, op);
            let mine = self.cycle + self.timing.produce_offset(&instr) + 1;
            if pending > mine {
                return Ok(Err(blocked(
                    StallReason::DataHazard,
                    self.cycle + (pending - mine),
                    self.score.producer_pc(tid, op),
                )));
            }
        }

        // Structural hazards on the sequential multiplier/divider.
        if let Some(b) = self.structural_block(tid, pc, &instr, class) {
            return Ok(Err(b));
        }

        Ok(Ok(instr))
    }

    fn structural_block(
        &self,
        tid: usize,
        pc: u32,
        instr: &Instr,
        class: InstrClass,
    ) -> Option<Blocked> {
        let ex = self.cycle + self.timing.ex_start(class);
        let unit = self.sequential_unit(instr, class)?;
        if unit.is_free(ex) {
            None
        } else {
            Some(Blocked {
                reason: StallReason::Structural,
                // the unit frees at free_at(); our EX is `ex_start` after
                // issue, so we could issue once free_at - ex_start arrives
                earliest: unit
                    .free_at()
                    .saturating_sub(self.timing.ex_start(class))
                    .max(self.cycle + 1),
                thread: tid,
                pc,
                waiting_on: NO_PRODUCER_PC,
            })
        }
    }

    fn sequential_unit(&self, instr: &Instr, class: InstrClass) -> Option<&SequentialUnit> {
        let scalar = class == InstrClass::Scalar;
        if instr.uses_multiplier() {
            if let MultiplierKind::Sequential { .. } = self.cfg.multiplier {
                return Some(if scalar { &self.mul_scalar } else { &self.mul_parallel });
            }
        }
        if instr.uses_divider() {
            if let DividerConfig::Sequential { .. } = self.cfg.divider {
                return Some(if scalar { &self.div_scalar } else { &self.div_parallel });
            }
        }
        None
    }

    fn claim_sequential_unit(&mut self, tid: usize, instr: &Instr, class: InstrClass) {
        let ex = self.cycle + self.timing.ex_start(class);
        let scalar = class == InstrClass::Scalar;
        if instr.uses_multiplier() {
            if let MultiplierKind::Sequential { cycles } = self.cfg.multiplier {
                let unit = if scalar { &mut self.mul_scalar } else { &mut self.mul_parallel };
                let claimed = unit.try_claim(ex, cycles);
                debug_assert!(claimed.is_some(), "structural check preceded issue");
                if let Some(sink) = &self.sink {
                    let unit = if scalar { SeqUnit::ScalarMul } else { SeqUnit::ParallelMul };
                    sink.emit(&TraceEvent::UnitBusy {
                        cycle: ex,
                        thread: tid,
                        unit,
                        busy_for: cycles,
                    });
                }
            }
        }
        if instr.uses_divider() {
            if let DividerConfig::Sequential { cycles } = self.cfg.divider {
                let unit = if scalar { &mut self.div_scalar } else { &mut self.div_parallel };
                let claimed = unit.try_claim(ex, cycles);
                debug_assert!(claimed.is_some(), "structural check preceded issue");
                if let Some(sink) = &self.sink {
                    let unit = if scalar { SeqUnit::ScalarDiv } else { SeqUnit::ParallelDiv };
                    sink.emit(&TraceEvent::UnitBusy {
                        cycle: ex,
                        thread: tid,
                        unit,
                        busy_for: cycles,
                    });
                }
            }
        }
    }

    /// Issue one instruction from `tid`: execute it functionally, record
    /// its writes in the scoreboard, and update thread/PC state.
    fn issue(&mut self, tid: usize, instr: Instr) -> Result<(), RunError> {
        let pc = self.threads.get(tid).pc;
        let class = instr.class();
        self.claim_sequential_unit(tid, &instr, class);
        if matches!(self.cfg.fetch, FetchModel::Finite { .. }) {
            debug_assert!(self.ibuf[tid] > 0);
            self.ibuf[tid] -= 1;
        }
        self.track_net_depth(class);

        // Block fusion: at the first instruction of a fusible block the
        // whole block's architectural effects are applied tile-by-tile;
        // the block's remaining instructions are "ghost issues" — they
        // still pass through the scheduler, scoreboard, stats and trace
        // one per cycle (timing is untouched), but skip execution. Every
        // fused instruction falls through, so the effect is always Next.
        let effect = if self.fused_remaining[tid] > 0 {
            self.fused_remaining[tid] -= 1;
            Effect::Next
        } else if let Some(len) = self.fusible_block_len(pc) {
            self.execute_block(tid, pc, len)?;
            self.fused_remaining[tid] = len - 1;
            Effect::Next
        } else {
            self.execute_instr(tid, pc, &instr)?
        };

        self.stats.record_issue(tid, class);
        if let Some(p) = &mut self.profiler {
            // ghost issues of fused blocks pass through here too, so fused
            // and unfused runs attribute identically
            p.record_issue(tid, pc);
            if class != InstrClass::Scalar {
                p.record_net(tid, pc);
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(IssueRecord { cycle: self.cycle, thread: tid, pc, instr });
        }

        // store "available from": the cycle after the result is produced
        let available = self.cycle + self.timing.produce_offset(&instr) + 1;
        for op in instr.writes() {
            self.score.record_write(tid, op, available, class, pc);
        }
        let retire = self.cycle + self.timing.retire_offset(&instr);
        self.stats.last_writeback = self.stats.last_writeback.max(retire);

        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::Issue {
                cycle: self.cycle,
                thread: tid,
                pc,
                class,
                word: asc_isa::encode(&instr),
            });
            // retirement is resolved at issue; the event carries the
            // future WB cycle
            sink.emit(&TraceEvent::Retire { cycle: retire, thread: tid, pc, class });
            if class != InstrClass::Scalar {
                sink.emit(&TraceEvent::NetOp {
                    cycle: self.cycle,
                    thread: tid,
                    unit: NetUnit::Broadcast,
                    latency: self.timing.b,
                });
            }
        }

        let row = self.threads.get_mut(tid);
        match effect {
            Effect::Next => {
                row.pc = pc + 1;
                row.next_issue = self.cycle + 1;
            }
            Effect::Branch(target) => {
                row.pc = target;
                // branches resolve at the end of EX; the redirected fetch
                // reaches issue one cycle later than back-to-back
                row.next_issue = self.cycle + 2;
                self.bubble[tid] = StallReason::BranchBubble;
                // the buffered fall-through instructions are wrong-path
                self.ibuf[tid] = 0;
            }
            Effect::Halt => {
                row.pc = pc + 1;
                self.halted = true;
            }
            Effect::Exit => {
                let woken = self.threads.release(tid);
                if let Some(sink) = &self.sink {
                    sink.emit(&TraceEvent::Thread {
                        cycle: self.cycle,
                        thread: tid,
                        transition: ThreadTransition::Exited,
                    });
                    for w in woken {
                        sink.emit(&TraceEvent::Thread {
                            cycle: self.cycle,
                            thread: w,
                            transition: ThreadTransition::Woken,
                        });
                    }
                }
            }
            Effect::JoinWait(target) => {
                let row = self.threads.get_mut(tid);
                row.pc = pc + 1;
                row.state = ThreadState::WaitingJoin(target);
                row.next_issue = self.cycle + 1;
                if let Some(sink) = &self.sink {
                    sink.emit(&TraceEvent::Thread {
                        cycle: self.cycle,
                        thread: tid,
                        transition: ThreadTransition::JoinWait { target },
                    });
                }
            }
        }

        self.cycle += 1;
        Ok(())
    }

    /// Sample broadcast/reduction queue depths: drop completed operations,
    /// record the depth the new operation observes, then enqueue it.
    fn track_net_depth(&mut self, class: InstrClass) {
        if class == InstrClass::Scalar {
            return;
        }
        while self.bcast_inflight.front().is_some_and(|&done| done <= self.cycle) {
            self.bcast_inflight.pop_front();
        }
        self.stats.broadcast_depth.record(self.bcast_inflight.len() as u64);
        // the broadcast tree carries the instruction through B1..Bb
        self.bcast_inflight.push_back(self.cycle + self.timing.b);
        if class == InstrClass::Reduction {
            while self.red_inflight.front().is_some_and(|&done| done <= self.cycle) {
                self.red_inflight.pop_front();
            }
            self.stats.reduction_depth.record(self.red_inflight.len() as u64);
            // the reduction tree is occupied through R1..Rr, which start
            // after broadcast (b) and PE read (1)
            self.red_inflight.push_back(self.cycle + self.timing.b + 1 + self.timing.r);
        }
    }

    /// Emit a reduction-unit network event (called by the executor's
    /// reduction arms, which know which tree the operation uses).
    pub(crate) fn emit_net_reduce(&mut self, thread: usize, pc: u32, unit: NetUnit) {
        if let Some(p) = &mut self.profiler {
            p.record_net(thread, pc);
        }
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::NetOp {
                cycle: self.cycle,
                thread,
                unit,
                latency: self.timing.r,
            });
        }
    }

    /// Run until the program halts, every thread exits, or `max_cycles`
    /// elapse. Returns the final statistics.
    pub fn run(&mut self, max_cycles: u64) -> Result<Stats, RunError> {
        self.fuse_horizon = max_cycles;
        while !self.finished() {
            if self.cycle >= max_cycles {
                return Err(RunError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        // pipeline drain: cycles counted to the last writeback
        self.stats.cycles = self.stats.last_writeback.max(self.cycle) + 1;
        if let Some(p) = &mut self.profiler {
            p.finalize(self.stats.cycles);
        }
        if self.progress.is_some() {
            // the final sample: end-of-run totals, stamped post-drain
            self.sample_progress(self.stats.cycles, true);
            // best-effort flush, like the trace sink below
            let _ = self.progress.as_ref().unwrap().flush();
        }
        if let Some(sink) = &self.sink {
            // best-effort flush; file-backed sinks latch their own errors
            let _ = sink.flush();
        }
        Ok(self.stats.clone())
    }
}

/// Classify a RAW stall by the classes of producer and consumer — the
/// taxonomy of Section 4.2.
fn classify_hazard(producer: InstrClass, consumer: InstrClass, op: Operand) -> StallReason {
    match (producer, consumer) {
        (InstrClass::Reduction, InstrClass::Scalar) => StallReason::ReductionHazard,
        (InstrClass::Reduction, _) => StallReason::BroadcastReductionHazard,
        (InstrClass::Scalar, InstrClass::Parallel | InstrClass::Reduction)
            if matches!(op.class, RegClass::SGpr | RegClass::SFlag) =>
        {
            StallReason::BroadcastHazard
        }
        _ => StallReason::DataHazard,
    }
}
