//! Text renderers for the paper's figures, generated from the live machine
//! configuration (not hard-coded):
//!
//! * [`pipeline_organization`] — Figure 1, the split pipeline;
//! * [`hazard_diagram`] — Figure 2, stage-by-cycle grids of real issue
//!   traces, with stalls shown by repeating the ID stage;
//! * [`control_unit_organization`] — Figure 3, the control unit's
//!   components.

use asc_asm::disassemble;

use crate::config::MachineConfig;
use crate::machine::IssueRecord;
use crate::timing::Timing;

/// Figure 1: the pipeline organization for the given timing (B/R stage
/// counts come from the machine geometry).
pub fn pipeline_organization(t: &Timing) -> String {
    let b: Vec<String> = (1..=t.b).map(|k| format!("B{k}")).collect();
    let r: Vec<String> = (1..=t.r).map(|k| format!("R{k}")).collect();
    let bpath = b.join(" -> ");
    let rpath = r.join(" -> ");
    let mut s = String::new();
    s.push_str("                 +-> EX -> MA -> WB                      (scalar)\n");
    s.push_str("IF -> ID -> SR --+\n");
    s.push_str(&format!("                 +-> {bpath} -> PR --+-> EX -> MA -> WB  (parallel)\n"));
    let pad = " ".repeat(21 + bpath.len() + 9);
    s.push_str(&format!("{pad}+-> {rpath} -> WB  (reduction)\n"));
    s
}

/// Figure 2: a stage-by-cycle diagram of an actual issue trace (rows =
/// instructions in program order, columns = cycles). Instruction fetch is
/// rendered one per cycle in program order; a stalled instruction repeats
/// its ID stage until issue, exactly as the paper draws it.
pub fn hazard_diagram(records: &[IssueRecord], t: &Timing) -> String {
    if records.is_empty() {
        // an empty diagram is confusing downstream (the CLI would print a
        // heading followed by nothing) — say what happened instead
        return "(no issues recorded)\n".to_string();
    }
    // program-order fetch: record k is fetched at first_fetch + k
    let first_issue = records[0].cycle;
    // render origin: two pipeline slots before the first issue
    let origin = first_issue as i64 - 2;

    struct Row {
        label: String,
        /// (cycle, stage) pairs
        cells: Vec<(i64, String)>,
    }

    let mut rows = Vec::new();
    let mut max_cycle = 0i64;
    for (k, rec) in records.iter().enumerate() {
        let fetch = origin + k as i64;
        let issue = rec.cycle as i64;
        let mut cells = vec![(fetch, "IF".to_string())];
        // ID from fetch+1 up to issue-1 (repeats while stalled)
        for c in (fetch + 1)..issue {
            cells.push((c, "ID".to_string()));
        }
        for (off, name) in t.stage_names(rec.instr.class()).into_iter().enumerate() {
            cells.push((issue + off as i64, name));
        }
        max_cycle = max_cycle.max(cells.last().map(|(c, _)| *c).unwrap_or(0));
        rows.push(Row { label: disassemble(&rec.instr), cells });
    }

    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(12);
    let ncols = (max_cycle - origin + 1) as usize;
    let mut out = String::new();
    // header
    out.push_str(&format!("{:label_w$} |", "cycle"));
    for c in 0..ncols {
        out.push_str(&format!(" {:>3}", c + 1));
    }
    out.push('\n');
    out.push_str(&format!("{}-+{}\n", "-".repeat(label_w), "-".repeat(4 * ncols)));
    for row in rows {
        out.push_str(&format!("{:label_w$} |", row.label));
        let mut grid = vec!["   ".to_string(); ncols];
        for (c, name) in row.cells {
            let idx = (c - origin) as usize;
            if idx < ncols {
                grid[idx] = format!("{name:>3}");
            }
        }
        for cell in grid {
            out.push(' ');
            out.push_str(&cell);
        }
        out.push('\n');
    }
    out
}

/// Figure 3: the control unit organization for a configuration.
pub fn control_unit_organization(cfg: &MachineConfig) -> String {
    let t = cfg.threads;
    format!(
        "+--------------------------- control unit ---------------------------+\n\
         |  fetch unit --- instruction cache/memory ({} words)                  \n\
         |    |                                                                 \n\
         |  thread status table ({t} threads: PC, state, instruction buffer)     \n\
         |    |                                                                 \n\
         |  decode units (x{t}, one per hardware thread)                         \n\
         |    |                                                                 \n\
         |  scheduler (rotating priority) --- instruction status table          \n\
         |    |                        \\                                        \n\
         |  scalar datapath            +--> broadcast network ({}-ary, {} stage{})\n\
         |  (EX/MA/WB, branches,       +<-- reduction networks ({} stage{})      \n\
         |   fork/join)                                                         \n\
         +---------------------------------------------------------------------+\n",
        cfg.imem_words,
        cfg.broadcast_arity,
        cfg.timing().b,
        if cfg.timing().b == 1 { "" } else { "s" },
        cfg.timing().r,
        if cfg.timing().r == 1 { "" } else { "s" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_pe::{DividerConfig, MultiplierKind};

    fn t() -> Timing {
        Timing {
            b: 2,
            r: 4,
            multiplier: MultiplierKind::None,
            divider: DividerConfig::None,
            forwarding: true,
        }
    }

    #[test]
    fn empty_trace_yields_placeholder() {
        assert_eq!(hazard_diagram(&[], &t()), "(no issues recorded)\n");
    }

    #[test]
    fn figure1_lists_all_stages() {
        let s = pipeline_organization(&t());
        for stage in ["IF", "ID", "SR", "B1", "B2", "PR", "EX", "MA", "WB", "R1", "R4"] {
            assert!(s.contains(stage), "missing {stage} in:\n{s}");
        }
        assert!(s.contains("(scalar)"));
        assert!(s.contains("(reduction)"));
    }

    #[test]
    fn figure3_mentions_components() {
        let s = control_unit_organization(&crate::config::MachineConfig::prototype());
        for part in [
            "fetch unit",
            "thread status table",
            "decode units (x16",
            "scheduler (rotating priority)",
            "instruction status table",
            "scalar datapath",
        ] {
            assert!(s.contains(part), "missing {part} in:\n{s}");
        }
    }
}
