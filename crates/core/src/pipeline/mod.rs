//! Pipeline visualization: generated reproductions of the paper's Figures
//! 1–3.

pub mod diagram;

pub use diagram::{control_unit_organization, hazard_diagram, pipeline_organization};
