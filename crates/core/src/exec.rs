//! Functional execution of one instruction. The timing core calls
//! [`Machine::execute_instr`] at issue time; because per-thread issue is in
//! program order and the scoreboard delays dependent issues until their
//! producers' results are (logically) available, executing architectural
//! effects at issue preserves exact register/memory semantics while timing
//! is accounted separately.
//!
//! This file holds the instruction-major executor (one full-array sweep
//! per instruction). Fusible basic blocks bypass it entirely: the block
//! compiler (`crate::compile`) lowers them to specialized per-tile
//! kernel chains at program load, and the fusion engine
//! (`crate::fusion`) runs those chains tile-by-tile.

use asc_isa::{Instr, Word};
use asc_pe::Src;

use crate::error::RunError;
use crate::machine::Machine;
use crate::threads::ThreadState;

/// Control effect of an executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Fall through to the next instruction.
    Next,
    /// Jump/branch to an absolute instruction address.
    Branch(u32),
    /// Stop the whole machine.
    Halt,
    /// Release this thread's context.
    Exit,
    /// Block until the given thread's context is released.
    JoinWait(usize),
}

impl Machine {
    /// Execute `i` for `thread` (whose PC is `pc`), updating architectural
    /// state, and return the control effect.
    pub(crate) fn execute_instr(
        &mut self,
        thread: usize,
        pc: u32,
        i: &Instr,
    ) -> Result<Effect, RunError> {
        let w = self.cfg.width;
        use Instr::*;
        match *i {
            Nop => Ok(Effect::Next),
            Halt => Ok(Effect::Halt),

            // ------------------------------------------------- scalar ALU
            SAlu { op, rd, ra, rb } => {
                let a = self.sregs.read(thread, ra.index());
                let b = self.sregs.read(thread, rb.index());
                self.sregs.write(thread, rd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SAluImm { op, rd, ra, imm } => {
                let a = self.sregs.read(thread, ra.index());
                let b = Word::from_i64(imm as i64, w);
                self.sregs.write(thread, rd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SCmp { op, fd, ra, rb } => {
                let a = self.sregs.read(thread, ra.index());
                let b = self.sregs.read(thread, rb.index());
                self.sflags.write(thread, fd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SCmpImm { op, fd, ra, imm } => {
                let a = self.sregs.read(thread, ra.index());
                let b = Word::from_i64(imm as i64, w);
                self.sflags.write(thread, fd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SFlagOp { op, fd, fa, fb } => {
                let a = self.sflags.read(thread, fa.index());
                let b = self.sflags.read(thread, fb.index());
                self.sflags.write(thread, fd.index(), op.apply(a, b));
                Ok(Effect::Next)
            }
            Li { rd, imm } => {
                self.sregs.write(thread, rd.index(), Word::from_i64(imm as i64, w));
                Ok(Effect::Next)
            }
            Lui { rd, imm } => {
                // load the upper half-word: imm shifted by width/2
                let sh = w.bits() / 2;
                self.sregs.write(thread, rd.index(), Word::new((imm as u32) << sh, w));
                Ok(Effect::Next)
            }

            // ------------------------------------------------- scalar memory
            Lw { rd, base, off } => {
                let addr = self.scalar_addr(thread, pc, base, off)?;
                let v = self.smem.read(addr).map_err(|_| RunError::ScalarMemoryFault {
                    thread,
                    pc,
                    addr: addr as i64,
                })?;
                self.sregs.write(thread, rd.index(), v);
                Ok(Effect::Next)
            }
            Sw { rs, base, off } => {
                let addr = self.scalar_addr(thread, pc, base, off)?;
                let v = self.sregs.read(thread, rs.index());
                self.smem.write(addr, v).map_err(|_| RunError::ScalarMemoryFault {
                    thread,
                    pc,
                    addr: addr as i64,
                })?;
                Ok(Effect::Next)
            }

            // ------------------------------------------------- control flow
            Bt { fa, off } => {
                if self.sflags.read(thread, fa.index()) {
                    Ok(Effect::Branch(rel_target(pc, off)))
                } else {
                    Ok(Effect::Next)
                }
            }
            Bf { fa, off } => {
                if !self.sflags.read(thread, fa.index()) {
                    Ok(Effect::Branch(rel_target(pc, off)))
                } else {
                    Ok(Effect::Next)
                }
            }
            J { target } => Ok(Effect::Branch(target)),
            Jal { rd, target } => {
                self.sregs.write(thread, rd.index(), Word::new(pc.wrapping_add(1), w));
                Ok(Effect::Branch(target))
            }
            Jr { ra } => {
                let t = self.sregs.read(thread, ra.index()).to_u32();
                Ok(Effect::Branch(t))
            }

            // ------------------------------------------------- threads
            TSpawn { rd, ra } => {
                let target = self.sregs.read(thread, ra.index()).to_u32();
                match self.spawn_thread(target) {
                    Some(tid) => self.sregs.write(thread, rd.index(), Word::new(tid as u32, w)),
                    None => self.sregs.write(thread, rd.index(), Word(w.mask())),
                }
                Ok(Effect::Next)
            }
            TExit => Ok(Effect::Exit),
            TJoin { ra } => {
                let tid = self.sregs.read(thread, ra.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                if tid_us == thread {
                    return Err(RunError::InvalidThread { thread, pc, tid });
                }
                if self.threads.get(tid_us).state == ThreadState::Free {
                    Ok(Effect::Next)
                } else {
                    Ok(Effect::JoinWait(tid_us))
                }
            }
            TGet { rd, ta, src } => {
                let tid = self.sregs.read(thread, ta.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                let v = self.sregs.read(tid_us, src.index());
                self.sregs.write(thread, rd.index(), v);
                Ok(Effect::Next)
            }
            TPut { ta, dst, rb } => {
                let tid = self.sregs.read(thread, ta.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                let v = self.sregs.read(thread, rb.index());
                self.sregs.write(tid_us, dst.index(), v);
                Ok(Effect::Next)
            }
            TId { rd } => {
                self.sregs.write(thread, rd.index(), Word::new(thread as u32, w));
                Ok(Effect::Next)
            }

            // ------------------------------------------------- parallel
            PAlu { op, pd, pa, pb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.alu(thread, op, pd, pa, Src::Reg(pb), &self.amask);
                Ok(Effect::Next)
            }
            PAluS { op, pd, pa, sb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sb.index());
                self.array.alu(thread, op, pd, pa, Src::Scalar(v), &self.amask);
                Ok(Effect::Next)
            }
            PAluImm { op, pd, pa, imm, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = Word::from_i64(imm as i64, w);
                self.array.alu(thread, op, pd, pa, Src::Imm(v), &self.amask);
                Ok(Effect::Next)
            }
            PCmp { op, fd, pa, pb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.cmp(thread, op, fd, pa, Src::Reg(pb), &self.amask);
                Ok(Effect::Next)
            }
            PCmpS { op, fd, pa, sb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sb.index());
                self.array.cmp(thread, op, fd, pa, Src::Scalar(v), &self.amask);
                Ok(Effect::Next)
            }
            PCmpImm { op, fd, pa, imm, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = Word::from_i64(imm as i64, w);
                self.array.cmp(thread, op, fd, pa, Src::Imm(v), &self.amask);
                Ok(Effect::Next)
            }
            PFlagOp { op, fd, fa, fb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.flag_op(thread, op, fd, fa, fb, &self.amask);
                Ok(Effect::Next)
            }
            Plw { pd, base, off, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array
                    .load(thread, pd, base, off as i32, &self.amask)
                    .map_err(|fault| RunError::PeMemoryFault { thread, pc, fault })?;
                Ok(Effect::Next)
            }
            Psw { ps, base, off, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array
                    .store(thread, ps, base, off as i32, &self.amask)
                    .map_err(|fault| RunError::PeMemoryFault { thread, pc, fault })?;
                Ok(Effect::Next)
            }
            Pidx { pd, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.pidx(thread, pd, &self.amask);
                Ok(Effect::Next)
            }
            PMovS { pd, sa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sa.index());
                self.array.movs(thread, pd, v, &self.amask);
                Ok(Effect::Next)
            }
            PShift { pd, pa, dist, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.shift(thread, pd, pa, dist as i32, &self.amask);
                Ok(Effect::Next)
            }

            // ------------------------------------------------- reductions
            // All reduction arms read the register/flag planes in place —
            // no column snapshots, no allocation.
            Reduce { op, sd, pa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let values = self.array.gpr_plane(thread, pa.index());
                let v = self.net.reduce(op, values, &self.amask, w);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::for_reduce(op));
                Ok(Effect::Next)
            }
            RCount { sd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let flags = self.array.flag_plane(thread, fa.index());
                let v = self.net.count_responders(flags, &self.amask, w);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Counter);
                Ok(Effect::Next)
            }
            RFlag { op, fd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let flags = self.array.flag_plane(thread, fa.index());
                let v = self.net.reduce_flags(op, flags, &self.amask);
                self.sflags.write(thread, fd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Logic);
                Ok(Effect::Next)
            }
            PFirst { fd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let hit = self
                    .net
                    .first_responder(self.array.flag_plane(thread, fa.index()), &self.amask);
                self.array.write_first_responder(thread, fd, hit, &self.amask);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Resolver);
                Ok(Effect::Next)
            }
            RGet { sd, pa, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let hit = self
                    .net
                    .first_responder(self.array.flag_plane(thread, fa.index()), &self.amask);
                let v =
                    hit.map(|i| self.array.gpr_plane(thread, pa.index())[i]).unwrap_or(Word::ZERO);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Resolver);
                Ok(Effect::Next)
            }
        }
    }

    fn scalar_addr(
        &self,
        thread: usize,
        pc: u32,
        base: asc_isa::SReg,
        off: i16,
    ) -> Result<u32, RunError> {
        let b = self.sregs.read(thread, base.index()).to_u32() as i64;
        let addr = b + off as i64;
        if addr < 0 || addr >= self.smem.capacity() as i64 {
            Err(RunError::ScalarMemoryFault { thread, pc, addr })
        } else {
            Ok(addr as u32)
        }
    }

    fn check_tid(&self, thread: usize, pc: u32, tid: u32) -> Result<usize, RunError> {
        if (tid as usize) < self.threads.len() {
            Ok(tid as usize)
        } else {
            Err(RunError::InvalidThread { thread, pc, tid })
        }
    }
}

/// Branch target: relative to the instruction after the branch.
fn rel_target(pc: u32, off: i16) -> u32 {
    (pc as i64 + 1 + off as i64) as u32
}
