//! Functional execution of one instruction. The timing core calls
//! [`Machine::execute_instr`] at issue time; because per-thread issue is in
//! program order and the scoreboard delays dependent issues until their
//! producers' results are (logically) available, executing architectural
//! effects at issue preserves exact register/memory semantics while timing
//! is accounted separately.
//!
//! Two executors share this file: the instruction-major arms of
//! [`Machine::execute_instr`] (one full-array sweep per instruction), and
//! the *per-tile kernels* at the bottom, which apply one fusible
//! instruction to one 64-PE [`TileWindow`] — the inner loop of the
//! block-fusion engine (`crate::fusion`), which runs a whole basic block
//! over one tile before advancing to the next.

use asc_isa::{Instr, Mask, Word};
use asc_pe::{ActiveMask, PeFault, Src, TileWindow, TILE_LANES};

use crate::error::RunError;
use crate::machine::Machine;
use crate::threads::ThreadState;

/// Control effect of an executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Fall through to the next instruction.
    Next,
    /// Jump/branch to an absolute instruction address.
    Branch(u32),
    /// Stop the whole machine.
    Halt,
    /// Release this thread's context.
    Exit,
    /// Block until the given thread's context is released.
    JoinWait(usize),
}

impl Machine {
    /// Execute `i` for `thread` (whose PC is `pc`), updating architectural
    /// state, and return the control effect.
    pub(crate) fn execute_instr(
        &mut self,
        thread: usize,
        pc: u32,
        i: &Instr,
    ) -> Result<Effect, RunError> {
        let w = self.cfg.width;
        use Instr::*;
        match *i {
            Nop => Ok(Effect::Next),
            Halt => Ok(Effect::Halt),

            // ------------------------------------------------- scalar ALU
            SAlu { op, rd, ra, rb } => {
                let a = self.sregs.read(thread, ra.index());
                let b = self.sregs.read(thread, rb.index());
                self.sregs.write(thread, rd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SAluImm { op, rd, ra, imm } => {
                let a = self.sregs.read(thread, ra.index());
                let b = Word::from_i64(imm as i64, w);
                self.sregs.write(thread, rd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SCmp { op, fd, ra, rb } => {
                let a = self.sregs.read(thread, ra.index());
                let b = self.sregs.read(thread, rb.index());
                self.sflags.write(thread, fd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SCmpImm { op, fd, ra, imm } => {
                let a = self.sregs.read(thread, ra.index());
                let b = Word::from_i64(imm as i64, w);
                self.sflags.write(thread, fd.index(), op.apply(a, b, w));
                Ok(Effect::Next)
            }
            SFlagOp { op, fd, fa, fb } => {
                let a = self.sflags.read(thread, fa.index());
                let b = self.sflags.read(thread, fb.index());
                self.sflags.write(thread, fd.index(), op.apply(a, b));
                Ok(Effect::Next)
            }
            Li { rd, imm } => {
                self.sregs.write(thread, rd.index(), Word::from_i64(imm as i64, w));
                Ok(Effect::Next)
            }
            Lui { rd, imm } => {
                // load the upper half-word: imm shifted by width/2
                let sh = w.bits() / 2;
                self.sregs.write(thread, rd.index(), Word::new((imm as u32) << sh, w));
                Ok(Effect::Next)
            }

            // ------------------------------------------------- scalar memory
            Lw { rd, base, off } => {
                let addr = self.scalar_addr(thread, pc, base, off)?;
                let v = self.smem.read(addr).map_err(|_| RunError::ScalarMemoryFault {
                    thread,
                    pc,
                    addr: addr as i64,
                })?;
                self.sregs.write(thread, rd.index(), v);
                Ok(Effect::Next)
            }
            Sw { rs, base, off } => {
                let addr = self.scalar_addr(thread, pc, base, off)?;
                let v = self.sregs.read(thread, rs.index());
                self.smem.write(addr, v).map_err(|_| RunError::ScalarMemoryFault {
                    thread,
                    pc,
                    addr: addr as i64,
                })?;
                Ok(Effect::Next)
            }

            // ------------------------------------------------- control flow
            Bt { fa, off } => {
                if self.sflags.read(thread, fa.index()) {
                    Ok(Effect::Branch(rel_target(pc, off)))
                } else {
                    Ok(Effect::Next)
                }
            }
            Bf { fa, off } => {
                if !self.sflags.read(thread, fa.index()) {
                    Ok(Effect::Branch(rel_target(pc, off)))
                } else {
                    Ok(Effect::Next)
                }
            }
            J { target } => Ok(Effect::Branch(target)),
            Jal { rd, target } => {
                self.sregs.write(thread, rd.index(), Word::new(pc.wrapping_add(1), w));
                Ok(Effect::Branch(target))
            }
            Jr { ra } => {
                let t = self.sregs.read(thread, ra.index()).to_u32();
                Ok(Effect::Branch(t))
            }

            // ------------------------------------------------- threads
            TSpawn { rd, ra } => {
                let target = self.sregs.read(thread, ra.index()).to_u32();
                match self.spawn_thread(target) {
                    Some(tid) => self.sregs.write(thread, rd.index(), Word::new(tid as u32, w)),
                    None => self.sregs.write(thread, rd.index(), Word(w.mask())),
                }
                Ok(Effect::Next)
            }
            TExit => Ok(Effect::Exit),
            TJoin { ra } => {
                let tid = self.sregs.read(thread, ra.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                if tid_us == thread {
                    return Err(RunError::InvalidThread { thread, pc, tid });
                }
                if self.threads.get(tid_us).state == ThreadState::Free {
                    Ok(Effect::Next)
                } else {
                    Ok(Effect::JoinWait(tid_us))
                }
            }
            TGet { rd, ta, src } => {
                let tid = self.sregs.read(thread, ta.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                let v = self.sregs.read(tid_us, src.index());
                self.sregs.write(thread, rd.index(), v);
                Ok(Effect::Next)
            }
            TPut { ta, dst, rb } => {
                let tid = self.sregs.read(thread, ta.index()).to_u32();
                let tid_us = self.check_tid(thread, pc, tid)?;
                let v = self.sregs.read(thread, rb.index());
                self.sregs.write(tid_us, dst.index(), v);
                Ok(Effect::Next)
            }
            TId { rd } => {
                self.sregs.write(thread, rd.index(), Word::new(thread as u32, w));
                Ok(Effect::Next)
            }

            // ------------------------------------------------- parallel
            PAlu { op, pd, pa, pb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.alu(thread, op, pd, pa, Src::Reg(pb), &self.amask);
                Ok(Effect::Next)
            }
            PAluS { op, pd, pa, sb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sb.index());
                self.array.alu(thread, op, pd, pa, Src::Scalar(v), &self.amask);
                Ok(Effect::Next)
            }
            PAluImm { op, pd, pa, imm, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = Word::from_i64(imm as i64, w);
                self.array.alu(thread, op, pd, pa, Src::Imm(v), &self.amask);
                Ok(Effect::Next)
            }
            PCmp { op, fd, pa, pb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.cmp(thread, op, fd, pa, Src::Reg(pb), &self.amask);
                Ok(Effect::Next)
            }
            PCmpS { op, fd, pa, sb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sb.index());
                self.array.cmp(thread, op, fd, pa, Src::Scalar(v), &self.amask);
                Ok(Effect::Next)
            }
            PCmpImm { op, fd, pa, imm, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = Word::from_i64(imm as i64, w);
                self.array.cmp(thread, op, fd, pa, Src::Imm(v), &self.amask);
                Ok(Effect::Next)
            }
            PFlagOp { op, fd, fa, fb, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.flag_op(thread, op, fd, fa, fb, &self.amask);
                Ok(Effect::Next)
            }
            Plw { pd, base, off, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array
                    .load(thread, pd, base, off as i32, &self.amask)
                    .map_err(|fault| RunError::PeMemoryFault { thread, pc, fault })?;
                Ok(Effect::Next)
            }
            Psw { ps, base, off, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array
                    .store(thread, ps, base, off as i32, &self.amask)
                    .map_err(|fault| RunError::PeMemoryFault { thread, pc, fault })?;
                Ok(Effect::Next)
            }
            Pidx { pd, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.pidx(thread, pd, &self.amask);
                Ok(Effect::Next)
            }
            PMovS { pd, sa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let v = self.sregs.read(thread, sa.index());
                self.array.movs(thread, pd, v, &self.amask);
                Ok(Effect::Next)
            }
            PShift { pd, pa, dist, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                self.array.shift(thread, pd, pa, dist as i32, &self.amask);
                Ok(Effect::Next)
            }

            // ------------------------------------------------- reductions
            // All reduction arms read the register/flag planes in place —
            // no column snapshots, no allocation.
            Reduce { op, sd, pa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let values = self.array.gpr_plane(thread, pa.index());
                let v = self.net.reduce(op, values, &self.amask, w);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::for_reduce(op));
                Ok(Effect::Next)
            }
            RCount { sd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let flags = self.array.flag_plane(thread, fa.index());
                let v = self.net.count_responders(flags, &self.amask, w);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Counter);
                Ok(Effect::Next)
            }
            RFlag { op, fd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let flags = self.array.flag_plane(thread, fa.index());
                let v = self.net.reduce_flags(op, flags, &self.amask);
                self.sflags.write(thread, fd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Logic);
                Ok(Effect::Next)
            }
            PFirst { fd, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let hit = self
                    .net
                    .first_responder(self.array.flag_plane(thread, fa.index()), &self.amask);
                self.array.write_first_responder(thread, fd, hit, &self.amask);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Resolver);
                Ok(Effect::Next)
            }
            RGet { sd, pa, fa, mask } => {
                self.array.fill_active(thread, mask, &mut self.amask);
                let hit = self
                    .net
                    .first_responder(self.array.flag_plane(thread, fa.index()), &self.amask);
                let v =
                    hit.map(|i| self.array.gpr_plane(thread, pa.index())[i]).unwrap_or(Word::ZERO);
                self.sregs.write(thread, sd.index(), v);
                self.emit_net_reduce(thread, pc, asc_network::NetUnit::Resolver);
                Ok(Effect::Next)
            }
        }
    }

    fn scalar_addr(
        &self,
        thread: usize,
        pc: u32,
        base: asc_isa::SReg,
        off: i16,
    ) -> Result<u32, RunError> {
        let b = self.sregs.read(thread, base.index()).to_u32() as i64;
        let addr = b + off as i64;
        if addr < 0 || addr >= self.smem.capacity() as i64 {
            Err(RunError::ScalarMemoryFault { thread, pc, addr })
        } else {
            Ok(addr as u32)
        }
    }

    fn check_tid(&self, thread: usize, pc: u32, tid: u32) -> Result<usize, RunError> {
        if (tid as usize) < self.threads.len() {
            Ok(tid as usize)
        } else {
            Err(RunError::InvalidThread { thread, pc, tid })
        }
    }
}

/// Branch target: relative to the instruction after the branch.
fn rel_target(pc: u32, off: i16) -> u32 {
    (pc as i64 + 1 + off as i64) as u32
}

// ===================================================================
// Per-tile kernels (the block-fusion inner loop)
// ===================================================================

/// The mask word governing `i` on this tile.
///
/// Latched *before* the instruction's writes are applied — an instruction
/// that overwrites its own mask flag must see the pre-write mask, exactly
/// as the instruction-major executor's `fill_active` plane copy does.
/// `Mask::All` reads the machine's all-active [`ActiveMask`] (filled once
/// per block) through its tile-scoped word view.
#[inline]
fn tile_mask_word(mask: Mask, win: &TileWindow<'_>, all: &ActiveMask) -> u64 {
    match mask {
        Mask::All => all.tile_word(win.tile()),
        Mask::Flag(f) => win.flag_word(f.index()),
    }
}

/// Write `f(lane)` to every masked lane of `dst`. The dense fast path
/// mirrors the array executor's `mw == u64::MAX` loop; the sparse path
/// walks set bits.
#[inline]
fn apply_masked(mw: u64, dst: &mut [Word], mut f: impl FnMut(usize) -> Word) {
    if mw == u64::MAX {
        for (j, d) in dst.iter_mut().enumerate() {
            *d = f(j);
        }
    } else {
        let mut m = mw;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            dst[j] = f(j);
            m &= m - 1;
        }
    }
}

/// Visit every masked lane in ascending order.
#[inline]
fn for_each_masked(mw: u64, mut f: impl FnMut(usize)) {
    let mut m = mw;
    while m != 0 {
        f(m.trailing_zeros() as usize);
        m &= m - 1;
    }
}

/// Apply one fusible instruction to one tile.
///
/// Semantically identical to the matching [`Machine::execute_instr`] arm
/// restricted to the window's lanes: sources are latched before the
/// destination is written (so `pd` may alias `pa`/`pb`, and a compare may
/// target its own mask flag), writes to GPR 0 are skipped, and flag
/// writes preserve the bitplane tail invariant via
/// [`TileWindow::set_flag_word`].
///
/// Memory faults do not stop the sweep: non-faulting lanes still apply,
/// and the *lowest-lane* fault of this (instruction, tile) is returned so
/// the fusion engine can attribute the run's error to the same (pc, PE)
/// as the unfused executor would (see `crate::fusion` for the policy).
pub(crate) fn exec_instr_tile(
    i: &Instr,
    win: &mut TileWindow<'_>,
    all: &ActiveMask,
) -> Option<PeFault> {
    let w = win.width();
    use Instr::*;
    match *i {
        PAlu { op, pd, pa, pb, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 && pd.index() != 0 {
                let (mut a, mut b) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
                win.copy_gprs(pa.index(), &mut a);
                win.copy_gprs(pb.index(), &mut b);
                apply_masked(mw, win.gpr_mut(pd.index()), |j| op.apply(a[j], b[j], w));
            }
            None
        }
        PAluImm { op, pd, pa, imm, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 && pd.index() != 0 {
                let mut a = [Word::ZERO; TILE_LANES];
                win.copy_gprs(pa.index(), &mut a);
                let b = Word::from_i64(imm as i64, w);
                apply_masked(mw, win.gpr_mut(pd.index()), |j| op.apply(a[j], b, w));
            }
            None
        }
        PCmp { op, fd, pa, pb, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 {
                let (mut a, mut b) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
                win.copy_gprs(pa.index(), &mut a);
                win.copy_gprs(pb.index(), &mut b);
                let mut res = 0u64;
                for_each_masked(mw, |j| res |= u64::from(op.apply(a[j], b[j], w)) << j);
                let old = win.flag_word(fd.index());
                win.set_flag_word(fd.index(), (old & !mw) | res);
            }
            None
        }
        PCmpImm { op, fd, pa, imm, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 {
                let mut a = [Word::ZERO; TILE_LANES];
                win.copy_gprs(pa.index(), &mut a);
                let b = Word::from_i64(imm as i64, w);
                let mut res = 0u64;
                for_each_masked(mw, |j| res |= u64::from(op.apply(a[j], b, w)) << j);
                let old = win.flag_word(fd.index());
                win.set_flag_word(fd.index(), (old & !mw) | res);
            }
            None
        }
        PFlagOp { op, fd, fa, fb, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 {
                let a = win.flag_word(fa.index());
                let b = win.flag_word(fb.index());
                let old = win.flag_word(fd.index());
                win.set_flag_word(fd.index(), (old & !mw) | (op.apply_word(a, b) & mw));
            }
            None
        }
        Plw { pd, base, off, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw == 0 {
                return None;
            }
            let mut bb = [Word::ZERO; TILE_LANES];
            win.copy_gprs(base.index(), &mut bb);
            // Load into a lane-indexed latch first: faulting lanes never
            // write the destination, and the destination plane may alias
            // the base register.
            let mut vals = [Word::ZERO; TILE_LANES];
            let mut ok = 0u64;
            let mut fault: Option<PeFault> = None;
            for_each_masked(mw, |j| match win.lmem_checked_read(bb[j], off as i32, j) {
                Ok(v) => {
                    vals[j] = v;
                    ok |= 1 << j;
                }
                Err(f) => {
                    if fault.is_none() {
                        fault = Some(PeFault { pe: win.base() + j, fault: f });
                    }
                }
            });
            if pd.index() != 0 {
                apply_masked(ok, win.gpr_mut(pd.index()), |j| vals[j]);
            }
            fault
        }
        Psw { ps, base, off, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw == 0 {
                return None;
            }
            let (mut pv, mut bb) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
            win.copy_gprs(ps.index(), &mut pv);
            win.copy_gprs(base.index(), &mut bb);
            let mut fault: Option<PeFault> = None;
            let mut m = mw;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                m &= m - 1;
                if let Err(f) = win.lmem_checked_write(bb[j], off as i32, j, pv[j]) {
                    if fault.is_none() {
                        fault = Some(PeFault { pe: win.base() + j, fault: f });
                    }
                }
            }
            fault
        }
        Pidx { pd, mask } => {
            let mw = tile_mask_word(mask, win, all);
            if mw != 0 && pd.index() != 0 {
                let base = win.base();
                apply_masked(mw, win.gpr_mut(pd.index()), |j| Word::new((base + j) as u32, w));
            }
            None
        }
        _ => unreachable!("non-fusible instruction reached the tile executor: {i:?}"),
    }
}
